"""The repo-specific invariant rules.

Each rule encodes one convention this codebase has already violated and
re-fixed by hand at least once; see the class docstrings for the
incident that motivated each.  Scoping is by package prefix (a dtype
rule has no business in the experiment scripts) and deliberate
exceptions are suppressed inline with ``# repro: allow[rule-id]``.
"""

from __future__ import annotations

import ast
import re

from .core import Rule, register

__all__ = [
    "AtomicWriteRule",
    "DtypeHygieneRule",
    "FailClosedRule",
    "LockDisciplineRule",
    "ThreadLifecycleRule",
    "WallClockRule",
]

#: ``# guarded-by: _lock`` (or ``_lock, _wake`` — any listed lock
#: satisfies the access) on an attribute assignment line.
_GUARDED_RE = re.compile(r"#[#:\s]*guarded-by:\s*([A-Za-z0-9_.,\s]+)")

#: ``# requires-lock: _lock`` on a method: the caller holds the lock
#: (the intra-procedural analysis assumes it held for the whole body).
_REQUIRES_RE = re.compile(r"#[#:\s]*requires-lock:\s*([A-Za-z0-9_.,\s]+)")


def _self_attr(node) -> str | None:
    """``self.x`` → ``"x"`` (None for anything else)."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _dotted_self(node) -> str | None:
    """``self.a.b`` → ``"a.b"`` (None unless rooted at ``self``)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and parts:
        return ".".join(reversed(parts))
    return None


def _parse_names(text: str) -> frozenset:
    return frozenset(name.strip() for name in text.split(",")
                     if name.strip())


def _const_str(node) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


@register
class LockDisciplineRule(Rule):
    """Annotated shared state must be accessed under its lock.

    A class declares which lock guards which attribute either with a
    ``# guarded-by: _lock`` comment on the attribute's assignment line
    (or the line above it), or with a class-level literal map::

        GUARDED_BY = {"_pending": "_lock", "_queue_depth": ("_lock", "_wake")}

    Multiple lock names mean any one of them satisfies the access —
    the idiom for a ``threading.Condition`` wrapping the same lock.
    Every ``self.<attr>`` read or write of a guarded attribute inside a
    method must then sit inside ``with self.<lock>:``.  ``__init__`` is
    exempt (construction is single-threaded by convention), and a
    method whose callers hold the lock declares it with a
    ``# requires-lock: _lock`` comment on its ``def`` line.

    Motivated by the unlocked ``ServiceStats`` reads PR 7 had to fix
    with a consistent ``snapshot()``.
    """

    id = "lock-discipline"
    severity = "error"
    description = ("# guarded-by: annotated attributes must only be "
                   "touched inside `with self.<lock>:`")

    def check(self, module):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    # ------------------------------------------------------------------
    # declaration gathering
    # ------------------------------------------------------------------
    def _guarded_map(self, module, cls) -> dict:
        guarded: dict[str, frozenset] = {}
        # Class-level literal map: GUARDED_BY = {"attr": "lock", ...}
        for stmt in cls.body:
            if (isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "GUARDED_BY"
                    and isinstance(stmt.value, ast.Dict)):
                for key, value in zip(stmt.value.keys, stmt.value.values):
                    attr = _const_str(key)
                    if attr is None:
                        continue
                    if isinstance(value, (ast.Tuple, ast.List)):
                        locks = frozenset(
                            name for name in map(_const_str, value.elts)
                            if name)
                    else:
                        name = _const_str(value)
                        locks = frozenset((name,)) if name else frozenset()
                    if locks:
                        guarded[attr] = locks
        # Comment-annotated assignments anywhere in the class body
        # (normally __init__): the comment sits on the assignment line
        # or the line above it.
        for node in ast.walk(cls):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                attrs = [a for a in map(_self_attr, targets) if a]
                if not attrs:
                    continue
                for line in (node.lineno, node.lineno - 1):
                    if line != node.lineno and not module.comment_only(line):
                        continue
                    match = _GUARDED_RE.search(module.comment(line))
                    if match:
                        locks = _parse_names(match.group(1))
                        for attr in attrs:
                            guarded[attr] = guarded.get(
                                attr, frozenset()) | locks
                        break
        return guarded

    def _assumed_locks(self, module, method) -> frozenset:
        for line in (method.lineno, method.lineno - 1):
            if line != method.lineno and not module.comment_only(line):
                continue
            match = _REQUIRES_RE.search(module.comment(line))
            if match:
                return _parse_names(match.group(1))
        return frozenset()

    # ------------------------------------------------------------------
    # per-method walk
    # ------------------------------------------------------------------
    def _check_class(self, module, cls):
        guarded = self._guarded_map(module, cls)
        if not guarded:
            return
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in ("__init__", "__new__"):
                continue
            held = self._assumed_locks(module, stmt)
            for child in stmt.body:
                yield from self._walk(module, child, guarded, held)

    def _walk(self, module, node, guarded, held):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set()
            for item in node.items:
                # The lock expression itself is an unguarded read.
                yield from self._walk(module, item.context_expr,
                                      guarded, held)
                name = _dotted_self(item.context_expr)
                if name:
                    acquired.add(name)
            inner = held | acquired
            for child in node.body:
                yield from self._walk(module, child, guarded, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # A nested function runs later, possibly without the lock:
            # analyze its body as if nothing were held.
            body = node.body if isinstance(node.body, list) else [node.body]
            for child in body:
                yield from self._walk(module, child, guarded, frozenset())
            return
        attr = _self_attr(node)
        if attr is not None and attr in guarded:
            locks = guarded[attr]
            if not (locks & held):
                hint = sorted(locks)[0]
                yield self.finding(
                    module, node,
                    f"'{attr}' is guarded by {'/'.join(sorted(locks))} but "
                    f"accessed without holding it; wrap the access in "
                    f"`with self.{hint}:` or mark the method "
                    f"`# requires-lock: {hint}`")
            return  # self.<attr>: nothing guarded deeper down
        for child in ast.iter_child_nodes(node):
            yield from self._walk(module, child, guarded, held)


@register
class AtomicWriteRule(Rule):
    """Durable writes must go through :mod:`repro.persist`.

    Raw ``open(path, "w"/"wb")``, ``np.save*`` and ``Path.write_*``
    publish torn files on a crash; every artifact/snapshot/usage write
    learned this the hard way and now stages through
    ``persist.atomic_replace``.  Append-mode (``"a"``) and in-place
    (``"r+b"``) handles are not flagged — the WAL and the fault
    injectors need them and an atomic rename cannot express either.
    Genuinely non-durable output (debug dumps, fixture scaffolding) is
    suppressible.
    """

    id = "atomic-write"
    severity = "error"
    description = ("file writes must use repro.persist atomic helpers, "
                   "not raw open(..., 'w')/np.save*/Path.write_*")
    exempt = ("repro/persist.py",)

    _NP_WRITERS = ("save", "savez", "savez_compressed", "savetxt")

    def check(self, module):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = self._open_mode(node)
                if mode is not None and ("w" in mode or "x" in mode):
                    yield self.finding(
                        module, node,
                        f"open(..., {mode!r}) bypasses atomic "
                        f"publication — a crash mid-write leaves a torn "
                        f"file; use repro.persist.atomic_replace / "
                        f"atomic_write_bytes / atomic_write_json")
            elif isinstance(func, ast.Attribute):
                if (func.attr in self._NP_WRITERS
                        and isinstance(func.value, ast.Name)
                        and func.value.id in ("np", "numpy")):
                    yield self.finding(
                        module, node,
                        f"np.{func.attr} writes non-atomically; stage "
                        f"through repro.persist.atomic_replace (np.save "
                        f"accepts the handle) or atomic_save_arrays")
                elif func.attr in ("write_text", "write_bytes"):
                    yield self.finding(
                        module, node,
                        f".{func.attr}() writes non-atomically; use "
                        f"repro.persist.atomic_write_bytes/_write_json")

    @staticmethod
    def _open_mode(call) -> str | None:
        """The literal mode of an ``open`` call ("r" when omitted,
        None when dynamic — a dynamic mode is not flaggable)."""
        for keyword in call.keywords:
            if keyword.arg == "mode":
                return _const_str(keyword.value)
        if len(call.args) >= 2:
            return _const_str(call.args[1])
        return "r"


@register
class DtypeHygieneRule(Rule):
    """Float32 discipline inside the compiled hot path.

    ``np.array``/``np.zeros``/``np.empty``/``np.ones``/``np.full``
    default to float64: an implicit-dtype allocation inside
    ``repro/infer`` or ``repro/nn`` silently doubles memory and breaks
    the bitwise module-vs-compiled parity contract.  Explicit float64
    (``dtype=np.float64``, ``astype(np.float64)``, ``astype(float)``)
    is equally an error — the sanctioned high-precision accumulators
    (mixed-precision statistics, the grad-norm fix from PR 4) carry
    ``# repro: allow[dtype-hygiene]`` suppressions with justifications.
    """

    id = "dtype-hygiene"
    severity = "error"
    description = ("hot-path numpy allocations need an explicit dtype "
                   "and float64 is forbidden (repro/infer, repro/nn)")
    packages = ("repro/infer", "repro/nn")

    #: constructor → positional index of its dtype argument
    _CONSTRUCTORS = {"array": 1, "zeros": 1, "empty": 1, "ones": 1,
                     "full": 2}

    def check(self, module):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            dtype = self._keyword(node, "dtype")
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in ("np", "numpy")
                    and func.attr in self._CONSTRUCTORS):
                position = self._CONSTRUCTORS[func.attr]
                if dtype is None and len(node.args) > position:
                    dtype = node.args[position]
                if dtype is None:
                    yield self.finding(
                        module, node,
                        f"np.{func.attr} without an explicit dtype "
                        f"allocates float64 on the hot path; pass "
                        f"dtype=np.float32 (or the intended dtype)")
                    continue
            if (isinstance(func, ast.Attribute) and func.attr == "astype"
                    and dtype is None and node.args):
                dtype = node.args[0]
            if dtype is not None and self._is_float64(dtype):
                yield self.finding(
                    module, node,
                    "explicit float64 breaks the hot path's float32 "
                    "discipline; use np.float32, or suppress with a "
                    "justification for deliberate high-precision "
                    "accumulation")

    @staticmethod
    def _keyword(call, name):
        for keyword in call.keywords:
            if keyword.arg == name:
                return keyword.value
        return None

    @staticmethod
    def _is_float64(node) -> bool:
        if isinstance(node, ast.Attribute):
            return (isinstance(node.value, ast.Name)
                    and node.value.id in ("np", "numpy")
                    and node.attr in ("float64", "double"))
        if isinstance(node, ast.Name):
            return node.id == "float"  # builtin float == float64
        text = _const_str(node)
        return text in ("float64", "f8", "d", "double")


@register
class FailClosedRule(Rule):
    """The durability layer must never swallow an error silently.

    A bare ``except:`` or an ``except Exception: pass`` inside
    ``repro/durable`` can turn a corrupt snapshot into a silent partial
    restore — the exact failure mode the staged recoverer exists to
    prevent.  Broad catches are fine when they *do* something (record a
    ``failure_reason``, clear state, re-raise); catches of narrow types
    (``OSError`` around best-effort pruning) are fine too.
    """

    id = "fail-closed"
    severity = "error"
    description = ("no bare except / swallowed broad except inside "
                   "repro/durable — recovery fails closed")
    packages = ("repro/durable",)

    def check(self, module):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module, node,
                    "bare except swallows everything (including "
                    "KeyboardInterrupt) — catch specific exceptions and "
                    "surface a failure_reason")
            elif self._catches_broad(node.type) and self._swallows(node):
                yield self.finding(
                    module, node,
                    "except Exception with a no-op body silently "
                    "discards a durability failure; handle it (record, "
                    "clear, re-raise) or catch a narrow type")

    @staticmethod
    def _catches_broad(node) -> bool:
        names = node.elts if isinstance(node, ast.Tuple) else [node]
        return any(isinstance(n, ast.Name)
                   and n.id in ("Exception", "BaseException")
                   for n in names)

    @staticmethod
    def _swallows(handler) -> bool:
        return all(isinstance(stmt, ast.Pass)
                   or (isinstance(stmt, ast.Expr)
                       and isinstance(stmt.value, ast.Constant))
                   for stmt in handler.body)


@register
class WallClockRule(Rule):
    """Rate limiting, metering and cadence must use the monotonic clock.

    ``time.time()`` jumps under NTP steps and DST bookkeeping; a
    backwards jump refills token buckets and reorders cadence
    decisions.  Everything inside ``repro/gateway`` and ``repro/stream``
    measures *intervals*, so ``time.monotonic()`` (or
    ``time.perf_counter()`` for benchmarks) is always the right call.
    """

    id = "wall-clock"
    severity = "error"
    description = ("time.time() is forbidden in rate-limit/metering/"
                   "cadence code (repro/gateway, repro/stream); use "
                   "time.monotonic()")
    packages = ("repro/gateway", "repro/stream")

    def check(self, module):
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "time"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "time"):
                yield self.finding(
                    module, node,
                    "time.time() is wall-clock and can jump backwards; "
                    "use time.monotonic() for intervals")
            elif (isinstance(node, ast.ImportFrom)
                    and node.module == "time"
                    and any(alias.name == "time" for alias in node.names)):
                yield self.finding(
                    module, node,
                    "importing time.time invites wall-clock intervals; "
                    "import monotonic instead")


@register
class ThreadLifecycleRule(Rule):
    """Every spawned thread needs an explicit lifecycle decision.

    A ``threading.Thread(...)`` that neither sets ``daemon=`` nor is
    ever ``.join()``-ed blocks interpreter exit forever if its target
    loops — the serve drain and the gateway HTTP thread both decide
    this explicitly.  The join search is module-wide by target name, so
    a thread stored on ``self._worker`` and joined in ``close()``
    passes.  Heuristic (hence a warning, promoted by ``--strict``).
    """

    id = "thread-lifecycle"
    severity = "warning"
    description = ("threading.Thread needs an explicit daemon= or a "
                   "reachable .join()")

    def check(self, module):
        joined = self._joined_names(module.tree)
        assigned: dict[int, set] = {}
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Assign)
                    and self._is_thread_call(node.value)):
                assigned[id(node.value)] = self._target_names(node)
        for node in ast.walk(module.tree):
            if not self._is_thread_call(node):
                continue
            if any(kw.arg == "daemon" for kw in node.keywords):
                continue
            if assigned.get(id(node), set()) & joined:
                continue
            yield self.finding(
                module, node,
                "Thread without an explicit daemon= or a reachable "
                ".join(): an abandoned non-daemon thread blocks "
                "interpreter exit; decide its lifecycle explicitly")

    @staticmethod
    def _is_thread_call(node) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Attribute):
            return (func.attr == "Thread"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "threading")
        return isinstance(func, ast.Name) and func.id == "Thread"

    @staticmethod
    def _target_names(node) -> set:
        """Names an ``Assign`` lands its Thread in (``x`` / ``self.x``)."""
        names = set()
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            else:
                attr = _self_attr(target)
                if attr:
                    names.add(attr)
        return names

    @staticmethod
    def _joined_names(tree) -> set:
        """Every name ``X`` with an ``X.join()`` / ``*.X.join()`` call."""
        joined = set()
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"):
                owner = node.func.value
                if isinstance(owner, ast.Name):
                    joined.add(owner.id)
                elif isinstance(owner, ast.Attribute):
                    joined.add(owner.attr)
        return joined
