"""Static analysis of the repo's own invariants (``repro lint``).

``repro.analyze`` machine-checks the conventions the runtime leans on:
lock discipline on annotated shared state, atomic publication of every
durable write, float32 hygiene on the compiled hot path, fail-closed
recovery, monotonic clocks in rate/cadence code, and explicit thread
lifecycles.  See :mod:`repro.analyze.core` for the framework (rules,
findings, inline suppressions) and :mod:`repro.analyze.rules` for the
individual checks.

Stdlib-only by design: linting parses source, it never imports it.
"""

from .core import (
    Finding,
    ModuleContext,
    Rule,
    all_rules,
    analyze_file,
    analyze_paths,
    analyze_source,
    findings_payload,
    get_rules,
    has_failures,
    iter_python_files,
    register,
    render_text,
)
from . import rules as _rules  # noqa: F401 — importing registers the rules

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "findings_payload",
    "get_rules",
    "has_failures",
    "iter_python_files",
    "register",
    "render_text",
]
