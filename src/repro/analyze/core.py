"""Rule framework for the repo's static invariant checks.

The repo's correctness story leans on conventions — shared state behind
``threading.Lock``, every durable write routed through
:mod:`repro.persist`, float32 discipline on the compiled hot path,
fail-closed recovery — that nothing used to enforce.  This package
machine-checks them: each convention is a :class:`Rule` that walks a
module's AST and yields :class:`Finding` records, and ``repro lint``
(plus the tier-1 ``tests/test_analyze.py`` gate) runs the full registry
over ``src/``.

Deliberate exceptions are suppressed inline::

    buf = views.prediction.astype(np.float64)  # repro: allow[dtype-hygiene] error-budget reference

A suppression comment matches findings on its own line or the line
directly below it (comment-above style for long lines), and
``allow[*]`` silences every rule for that line.  Suppressions name the
rule they silence, so a grep for ``repro: allow`` is the complete audit
trail of sanctioned violations.

Everything here is stdlib-only (``ast`` + ``tokenize``) so linting never
imports the code under analysis.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "findings_payload",
    "get_rules",
    "has_failures",
    "iter_python_files",
    "register",
    "render_text",
]

SEVERITIES = ("warning", "error")

#: ``# repro: allow[rule-id]`` (optionally ``allow[a,b]`` or ``allow[*]``),
#: anything after the closing bracket is a free-form justification.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\s-]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation, pinned to a file position."""

    file: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    def as_dict(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        return (f"{self.file}:{self.line}:{self.col}: {self.severity}: "
                f"{self.message} [{self.rule}]")


class Rule:
    """One invariant check.  Subclass, set the class attributes, register.

    ``packages`` scopes the rule to path prefixes under the package root
    (e.g. ``("repro/infer", "repro/nn")``); empty means the whole tree.
    ``exempt`` lists exact relative paths the rule never visits — e.g.
    ``repro/persist.py`` is exempt from atomic-write because it *is* the
    blessed implementation.
    """

    id: str = ""
    severity: str = "error"
    description: str = ""
    packages: tuple = ()
    exempt: tuple = ()

    def applies_to(self, rel: str) -> bool:
        if rel in self.exempt:
            return False
        if not self.packages:
            return True
        return any(rel == p or rel.startswith(p.rstrip("/") + "/")
                   for p in self.packages)

    def check(self, module: "ModuleContext"):
        raise NotImplementedError

    def finding(self, module: "ModuleContext", node: ast.AST,
                message: str) -> Finding:
        return Finding(module.path, node.lineno, node.col_offset,
                       self.id, self.severity, message)


_REGISTRY: dict[str, Rule] = {}


def register(cls):
    """Class decorator adding one instance of ``cls`` to the registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.severity not in SEVERITIES:
        raise ValueError(f"rule {rule.id}: bad severity {rule.severity!r}")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> list:
    """Every registered rule, sorted by id."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_rules(ids=None) -> list:
    """Rules for ``ids`` (all when ``None``); unknown ids raise KeyError."""
    if not ids:
        return all_rules()
    unknown = sorted(set(ids) - set(_REGISTRY))
    if unknown:
        raise KeyError(
            f"unknown rule id(s) {unknown}; available: {sorted(_REGISTRY)}")
    return [_REGISTRY[name] for name in sorted(set(ids))]


def _relativize(path: str) -> str:
    """Posix path from the package root: ``.../src/repro/x/y.py`` →
    ``repro/x/y.py``.  Paths outside a ``repro`` tree (test fixtures,
    ad-hoc files) keep their basename, so only unscoped rules apply."""
    parts = os.path.abspath(path).replace(os.sep, "/").split("/")
    if "repro" in parts:
        return "/".join(parts[parts.index("repro"):])
    return parts[-1]


class ModuleContext:
    """One parsed module: source, AST, per-line comments, suppressions."""

    def __init__(self, source: str, path: str = "<string>",
                 rel: str | None = None):
        self.source = source
        self.path = path
        self.rel = rel if rel is not None else _relativize(path)
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        self.comments: dict[int, str] = {}
        self._allowed: dict[int, set] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    self.comments[token.start[0]] = token.string
        except tokenize.TokenError:
            pass  # ast.parse succeeded; trailing-token oddities are moot
        for line, text in self.comments.items():
            match = _ALLOW_RE.search(text)
            if match:
                names = {n.strip() for n in match.group(1).split(",")}
                self._allowed[line] = {n for n in names if n}

    def comment(self, line: int) -> str:
        """Comment text on ``line`` ("" when none)."""
        return self.comments.get(line, "")

    def comment_only(self, line: int) -> bool:
        """Does ``line`` hold nothing but a comment?  Line-above
        annotation matching requires this — a *trailing* comment on the
        previous statement must not bleed into the next line."""
        if line not in self.comments:
            return False
        text = self.lines[line - 1] if 0 < line <= len(self.lines) else ""
        return text.lstrip().startswith("#")

    def suppressed(self, line: int, rule_id: str) -> bool:
        """Is a finding of ``rule_id`` at ``line`` inline-suppressed?

        Matches an ``allow`` comment on the finding's own line, or on a
        comment-only line directly above it.
        """
        for candidate in (line, line - 1):
            if candidate != line and not self.comment_only(candidate):
                continue
            allowed = self._allowed.get(candidate)
            if allowed and (rule_id in allowed or "*" in allowed):
                return True
        return False


def analyze_source(source: str, path: str = "<string>",
                   rel: str | None = None, rules=None) -> list:
    """Run ``rules`` (default: all) over one module's source text."""
    module = ModuleContext(source, path=path, rel=rel)
    findings = []
    for rule in (rules if rules is not None else all_rules()):
        if not rule.applies_to(module.rel):
            continue
        for found in rule.check(module):
            if not module.suppressed(found.line, found.rule):
                findings.append(found)
    findings.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
    return findings


def analyze_file(path: str, rules=None) -> list:
    """Analyze one file; an unparsable file is itself a finding."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        return analyze_source(source, path=path, rules=rules)
    except SyntaxError as error:
        return [Finding(path, error.lineno or 1, (error.offset or 1) - 1,
                        "parse-error", "error",
                        f"cannot parse: {error.msg}")]


def iter_python_files(paths) -> list:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d != "__pycache__")
                found.extend(os.path.join(root, n)
                             for n in sorted(names) if n.endswith(".py"))
        elif os.path.isfile(path):
            found.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path!r}")
    return found


def analyze_paths(paths, rules=None) -> list:
    """Analyze every ``.py`` file under ``paths``."""
    findings = []
    for path in iter_python_files(paths):
        findings.extend(analyze_file(path, rules=rules))
    return findings


def findings_payload(findings, rules=None) -> dict:
    """JSON-serializable report: findings + per-rule/severity summary."""
    rules = rules if rules is not None else all_rules()
    by_rule: dict[str, int] = {rule.id: 0 for rule in rules}
    by_severity = {name: 0 for name in SEVERITIES}
    for found in findings:
        by_rule[found.rule] = by_rule.get(found.rule, 0) + 1
        by_severity[found.severity] = by_severity.get(found.severity, 0) + 1
    return {
        "version": 1,
        "rules": [{"id": rule.id, "severity": rule.severity,
                   "description": rule.description} for rule in rules],
        "findings": [found.as_dict() for found in findings],
        "summary": {
            "total": len(findings),
            "by_severity": by_severity,
            "by_rule": by_rule,
        },
    }


def render_text(findings) -> str:
    """Human-readable report (one line per finding + a summary line)."""
    lines = [found.render() for found in findings]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    lines.append(f"{len(findings)} finding(s): {errors} error(s), "
                 f"{warnings} warning(s)")
    return "\n".join(lines)


def has_failures(findings, strict: bool = False) -> bool:
    """Exit-code contract: errors always fail; warnings only under
    ``strict``."""
    if strict:
        return bool(findings)
    return any(found.severity == "error" for found in findings)
