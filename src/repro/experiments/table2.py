"""Table II — short-term forecasting on PEMS traffic data.

Paper protocol: input 96, horizon 12, PEMS04 and PEMS08, all models.
The inverted-embedding models (TimeKD, TimeCMA, iTransformer) should win
because they model cross-sensor dependencies (paper Section V-B2).
"""

from __future__ import annotations

from ..eval import format_table, save_csv
from .common import (
    PAPER_MODELS,
    ExperimentScale,
    get_scale,
    prepare_data,
    results_dir,
    run_model,
    strip_private,
)

__all__ = ["run", "main"]

DATASETS = ["PEMS04", "PEMS08"]
HORIZON = 12


def run(
    scale: ExperimentScale | None = None,
    datasets: list[str] | None = None,
    models: list[str] | None = None,
) -> list[dict]:
    """Regenerate Table II rows: one per (dataset, model)."""
    scale = scale or get_scale()
    datasets = datasets or DATASETS
    models = models or PAPER_MODELS

    rows: list[dict] = []
    for dataset in datasets:
        data = prepare_data(dataset, HORIZON, scale)
        for model in models:
            result = strip_private(run_model(model, data, scale))
            result.update(dataset=dataset, horizon=HORIZON)
            rows.append(result)
    return rows


def main() -> list[dict]:
    rows = run()
    print(format_table(rows, title="Table II — short-term forecasting (PEMS)"))
    save_csv(rows, f"{results_dir()}/table2.csv")
    return rows


if __name__ == "__main__":
    main()
