"""Shared infrastructure for the per-table/figure experiment modules.

Every experiment runs at one of two scales:

* **quick** (default) — small data slices, tiny models, capped batches;
  finishes in seconds per cell so the whole suite regenerates every
  artefact on one CPU core.  This is what the ``benchmarks/`` harness
  executes.
* **full** — closer to paper settings (set ``REPRO_FULL=1``); hours on
  this substrate.

Both scales exercise the identical code paths; only sizes change.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from ..baselines import BaselineConfig, build_baseline
from ..core import TimeKDConfig, TimeKDForecaster
from ..data import load_dataset, make_forecasting_data
from ..data.windows import ForecastingData
from ..eval import TrainSettings, evaluate_forecast_model, train_forecast_model
from ..llm import CalibratedLanguageModel, Vocabulary, get_pretrained
from ..nn import init as nn_init

__all__ = [
    "ExperimentScale",
    "QUICK",
    "FULL",
    "get_scale",
    "prepare_data",
    "run_timekd",
    "run_baseline",
    "run_model",
    "shared_backbone",
    "results_dir",
    "cache_disabled",
    "embedding_cache_dir",
    "PAPER_MODELS",
]

#: Column order of the paper's comparison tables.
PAPER_MODELS = ["TimeKD", "TimeCMA", "Time-LLM", "UniTime", "OFA",
                "iTransformer", "PatchTST"]


@dataclass(frozen=True)
class ExperimentScale:
    """Size knobs decoupling experiment structure from runtime cost."""

    data_length: int = 700
    history_length: int = 96
    d_model: int = 32
    num_heads: int = 2
    num_layers: int = 1
    ffn_dim: int = 64
    epochs: int = 10
    teacher_epochs: int = 5
    batch_size: int = 16
    max_batches: int | None = 8
    llm_pretrain_steps: int = 60
    prompt_value_stride: int = 8
    seed: int = 0

    def with_updates(self, **changes) -> "ExperimentScale":
        return replace(self, **changes)


QUICK = ExperimentScale()
FULL = ExperimentScale(
    data_length=2400, d_model=64, num_heads=4, num_layers=2, ffn_dim=128,
    epochs=10, teacher_epochs=5, max_batches=None, llm_pretrain_steps=200,
    prompt_value_stride=4,
)


def get_scale() -> ExperimentScale:
    """QUICK unless the environment requests the full protocol."""
    return FULL if os.environ.get("REPRO_FULL") else QUICK


def results_dir() -> str:
    root = os.environ.get("REPRO_CACHE", os.path.join(os.getcwd(), "artifacts"))
    path = os.path.join(root, "results")
    os.makedirs(path, exist_ok=True)
    return path


def cache_disabled(value: str) -> bool:
    """Whether a cache-location string explicitly disables persistence.

    One convention shared by the ``--embedding-cache`` CLI flags and the
    ``REPRO_EMBED_CACHE`` environment variable.
    """
    return value.strip().lower() in ("", "0", "off", "none", "false")


def embedding_cache_dir() -> str | None:
    """Shared fingerprinted CLM-embedding cache for the experiment grid.

    Every experiment cell over the same dataset/prompt/CLM configuration
    hits the same ``.npz`` store, so the ~14 tables and figures encode
    each split once.  ``REPRO_EMBED_CACHE`` overrides the location; set
    it to ``off`` (or ``0``/``none``) to disable persistence.
    """
    override = os.environ.get("REPRO_EMBED_CACHE")
    if override is not None:
        if cache_disabled(override):
            return None
        path = override
    else:
        root = os.environ.get(
            "REPRO_CACHE", os.path.join(os.getcwd(), "artifacts"))
        path = os.path.join(root, "embeddings")
    os.makedirs(path, exist_ok=True)
    return path


def prepare_data(
    dataset: str,
    horizon: int,
    scale: ExperimentScale,
    train_fraction: float = 1.0,
    length: int | None = None,
) -> ForecastingData:
    """Load a named dataset and window it for the experiment."""
    series = load_dataset(dataset, length=length or scale.data_length)
    return make_forecasting_data(
        series,
        history_length=scale.history_length,
        horizon=horizon,
        train_fraction=train_fraction,
    )


_BACKBONE_CACHE: dict[tuple[str, int], object] = {}
_VOCAB = Vocabulary()


def shared_backbone(name: str, steps: int):
    """Process-wide pretrained-backbone cache (frozen, shareable)."""
    key = (name, steps)
    if key not in _BACKBONE_CACHE:
        _BACKBONE_CACHE[key] = get_pretrained(name, vocab=_VOCAB, steps=steps)
    return _BACKBONE_CACHE[key]


def timekd_config(data: ForecastingData, scale: ExperimentScale,
                  **overrides) -> TimeKDConfig:
    """TimeKD configuration matching the experiment scale."""
    base = TimeKDConfig(
        history_length=scale.history_length,
        horizon=data.train.horizon,
        num_variables=data.num_variables,
        frequency_minutes=data.frequency_minutes,
        d_model=scale.d_model,
        num_heads=scale.num_heads,
        num_layers=scale.num_layers,
        ffn_dim=scale.ffn_dim,
        llm_pretrain_steps=scale.llm_pretrain_steps,
        prompt_value_stride=scale.prompt_value_stride,
        teacher_epochs=scale.teacher_epochs,
        student_epochs=scale.epochs,
        batch_size=scale.batch_size,
        max_batches_per_epoch=scale.max_batches,
        seed=scale.seed,
    )
    if "embedding_cache_dir" not in overrides:
        # Resolved lazily so an explicit override (including None) never
        # creates the default cache directory as a side effect.
        base = base.with_updates(embedding_cache_dir=embedding_cache_dir())
    return base.with_updates(**overrides) if overrides else base


def run_timekd(
    data: ForecastingData, scale: ExperimentScale, **config_overrides
) -> dict:
    """Fit TimeKD on ``data``; return the standard result row."""
    config = timekd_config(data, scale, **config_overrides)
    nn_init.seed_everything(config.seed)
    clm = None
    if config.use_clm:
        backbone = shared_backbone(config.llm_name, scale.llm_pretrain_steps)
        clm = CalibratedLanguageModel(backbone, delta=config.calibration_delta)
    model = TimeKDForecaster(config, clm=clm).fit(data)
    metrics = model.evaluate(data.test)
    return {"model": "TimeKD", "mse": metrics["mse"], "mae": metrics["mae"],
            "_forecaster": model}


def run_baseline(
    name: str, data: ForecastingData, scale: ExperimentScale
) -> dict:
    """Train/evaluate one baseline under the shared protocol."""
    nn_init.seed_everything(scale.seed)
    config = BaselineConfig(
        history_length=scale.history_length,
        horizon=data.train.horizon,
        num_variables=data.num_variables,
        d_model=scale.d_model,
        num_heads=scale.num_heads,
        num_layers=scale.num_layers,
        ffn_dim=scale.ffn_dim,
    )
    backbone = None
    canonical = name.lower().replace("-", "").replace("_", "")
    if canonical in ("timecma", "timellm", "ofa"):
        backbone = shared_backbone(config.llm_name, scale.llm_pretrain_steps)
    model = build_baseline(
        name, config, backbone=backbone, vocab=_VOCAB,
        frequency_minutes=data.frequency_minutes)
    settings = TrainSettings(
        epochs=scale.epochs,
        batch_size=scale.batch_size,
        max_batches_per_epoch=scale.max_batches,
        seed=scale.seed,
    )
    train_forecast_model(model, data, settings)
    metrics = evaluate_forecast_model(model, data.test)
    return {"model": name, "mse": metrics["mse"], "mae": metrics["mae"],
            "_model": model}


def run_model(name: str, data: ForecastingData,
              scale: ExperimentScale, **timekd_overrides) -> dict:
    """Dispatch to TimeKD or a baseline by paper model name.

    ``timekd_overrides`` are :class:`TimeKDConfig` field overrides (for
    example ``embedding_cache_dir``) applied only to TimeKD runs.
    """
    if name == "TimeKD":
        return run_timekd(data, scale, **timekd_overrides)
    return run_baseline(name, data, scale)


def strip_private(row: dict) -> dict:
    """Drop underscore-prefixed bookkeeping keys before display/CSV."""
    return {k: v for k, v in row.items() if not k.startswith("_")}


def run_model_seeds(name: str, data: ForecastingData,
                    scale: ExperimentScale,
                    seeds: tuple[int, ...] = (0, 1, 2)) -> dict:
    """Seed-averaged run, matching the paper's three-seed protocol.

    Returns the mean MSE/MAE over ``seeds`` plus their standard
    deviations (``mse_std`` / ``mae_std``).
    """
    import numpy as np

    mses, maes = [], []
    for seed in seeds:
        row = run_model(name, data, scale.with_updates(seed=seed))
        mses.append(row["mse"])
        maes.append(row["mae"])
    return {
        "model": name,
        "mse": float(np.mean(mses)),
        "mae": float(np.mean(maes)),
        "mse_std": float(np.std(mses)),
        "mae_std": float(np.std(maes)),
    }
