"""Figure 7 — scalability: accuracy vs available training data.

Paper protocol: train TimeKD on 20/40/60/80/100% of the training
windows (horizon 96) on ETTm1, Weather, ETTh2 and Exchange; MSE and MAE
should decrease monotonically (modulo noise) as data grows.
"""

from __future__ import annotations

from ..eval import format_table, save_csv
from .common import (
    ExperimentScale,
    get_scale,
    prepare_data,
    results_dir,
    run_timekd,
    strip_private,
)

__all__ = ["run", "main", "FRACTIONS"]

FRACTIONS = [0.2, 0.4, 0.6, 0.8, 1.0]
FULL_DATASETS = ["ETTm1", "Weather", "ETTh2", "Exchange"]
QUICK_DATASETS = ["ETTm1"]
HORIZON = 96


def run(
    scale: ExperimentScale | None = None,
    datasets: list[str] | None = None,
    fractions: list[float] | None = None,
) -> list[dict]:
    """Regenerate Figure 7 data: one row per (dataset, fraction)."""
    import os

    scale = scale or get_scale()
    full = bool(os.environ.get("REPRO_FULL"))
    datasets = datasets or (FULL_DATASETS if full else QUICK_DATASETS)
    fractions = fractions or FRACTIONS

    rows: list[dict] = []
    for dataset in datasets:
        for fraction in fractions:
            data = prepare_data(dataset, HORIZON, scale,
                                train_fraction=fraction,
                                length=max(scale.data_length, 1600))
            result = strip_private(run_timekd(data, scale))
            result.update(dataset=dataset, horizon=HORIZON,
                          train_fraction=fraction,
                          train_windows=len(data.train))
            rows.append(result)
    return rows


def main() -> list[dict]:
    rows = run()
    print(format_table(rows, title="Figure 7 — scalability vs data fraction"))
    save_csv(rows, f"{results_dir()}/figure7.csv")
    return rows


if __name__ == "__main__":
    main()
