"""Figure 9 — feature self-relation matrices on ETTm1.

For both Transformers, the encoder output features ``F`` (one token per
variable) are multiplied with their transpose, ``F F^T``, producing the
pairwise variable-interaction matrices of the paper: comprehensive and
balanced for the privileged (teacher) features, sparser and more local
for the time-series (student) features.
"""

from __future__ import annotations

import os

import numpy as np

from ..data import ETT_COLUMNS
from ..eval import save_csv
from ..persist import atomic_save_array
from .common import (
    ExperimentScale,
    get_scale,
    prepare_data,
    results_dir,
    run_timekd,
)
from .figure8 import render_heatmap

__all__ = ["run", "main"]

DATASET = "ETTm1"
HORIZON = 96


def run(scale: ExperimentScale | None = None) -> dict[str, np.ndarray]:
    """Fit TimeKD on ETTm1 and compute both ``F F^T`` matrices."""
    scale = scale or get_scale()
    data = prepare_data(DATASET, HORIZON, scale,
                        length=max(scale.data_length, 1600))
    result = run_timekd(data, scale)
    forecaster = result["_forecaster"]
    history, future = data.test[0]
    return forecaster.feature_maps(history, future)


def main() -> dict[str, np.ndarray]:
    maps = run()
    labels = ETT_COLUMNS
    out_dir = results_dir()
    for key, matrix in maps.items():
        atomic_save_array(
            os.path.join(out_dir, f"figure9_{key}.npy"), matrix)
        print(f"\nFigure 9 — {key} feature self-relations (ETTm1):")
        print(render_heatmap(matrix, labels))
    rows = []
    for key, matrix in maps.items():
        for i, qlabel in enumerate(labels):
            row = {"map": key, "variable": qlabel}
            row.update({k: float(matrix[i, j])
                        for j, k in enumerate(labels)})
            rows.append(row)
    save_csv(rows, os.path.join(out_dir, "figure9.csv"))
    return maps


if __name__ == "__main__":
    main()
