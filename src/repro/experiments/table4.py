"""Table IV — resource efficiency on ETTm1, horizon 96.

For every model: trainable parameters (M), training time of one epoch
(s), peak training-step memory (MiB) and inference speed (s/iter at
batch size 1).  TimeKD should post the lowest memory and the fastest
inference — only its small student runs at test time, whereas TimeCMA
and the other LLM-based baselines keep their language model in the
inference path.
"""

from __future__ import annotations

import numpy as np

from ..baselines import BaselineConfig, build_baseline
from ..core import TimeKDForecaster
from ..eval import TrainSettings, format_table, measure_efficiency, save_csv
from ..eval.protocol import train_forecast_model
from ..llm import CalibratedLanguageModel
from ..nn import init as nn_init
from .common import (
    PAPER_MODELS,
    ExperimentScale,
    get_scale,
    prepare_data,
    results_dir,
    shared_backbone,
    timekd_config,
)

__all__ = ["run", "main"]

DATASET = "ETTm1"
HORIZON = 96


def _timekd_report(data, scale: ExperimentScale):
    from ..core.trainer import TimeKDTrainer

    config = timekd_config(data, scale).with_updates(
        teacher_epochs=1, student_epochs=1)
    nn_init.seed_everything(config.seed)
    backbone = shared_backbone(config.llm_name, scale.llm_pretrain_steps)
    clm = CalibratedLanguageModel(backbone, delta=config.calibration_delta)
    trainer = TimeKDTrainer(config, data, clm=clm)

    def train_epoch():
        trainer.train_teacher()
        trainer.train_student()

    history, _ = data.test[0]
    window = history.astype(np.float32)[None]

    def infer_once():
        trainer.student.predict(window)

    trainable = (trainer.teacher.num_parameters(trainable_only=True)
                 + trainer.student.num_parameters(trainable_only=True))
    return measure_efficiency("TimeKD", trainable, train_epoch, infer_once)


def _baseline_report(name: str, data, scale: ExperimentScale):
    nn_init.seed_everything(scale.seed)
    config = BaselineConfig(
        history_length=scale.history_length,
        horizon=HORIZON,
        num_variables=data.num_variables,
        d_model=scale.d_model,
        num_heads=scale.num_heads,
        num_layers=scale.num_layers,
        ffn_dim=scale.ffn_dim,
    )
    backbone = None
    canonical = name.lower().replace("-", "").replace("_", "")
    if canonical in ("timecma", "timellm", "ofa"):
        backbone = shared_backbone(config.llm_name, scale.llm_pretrain_steps)
    model = build_baseline(name, config, backbone=backbone,
                           frequency_minutes=data.frequency_minutes)
    settings = TrainSettings(epochs=1, batch_size=scale.batch_size,
                             max_batches_per_epoch=scale.max_batches,
                             seed=scale.seed)

    def train_epoch():
        train_forecast_model(model, data, settings)

    history, _ = data.test[0]
    rng = np.random.default_rng(0)

    def infer_once():
        # jitter the window so prompt-caching models (TimeCMA) cannot
        # skip their LM pass — matches real streaming inference
        window = (history + rng.normal(scale=1e-3, size=history.shape))
        model.predict(window.astype(np.float32)[None])

    trainable = model.num_parameters(trainable_only=True)
    return measure_efficiency(name, trainable, train_epoch, infer_once)


def run(scale: ExperimentScale | None = None,
        models: list[str] | None = None) -> list[dict]:
    """Regenerate Table IV rows: one per model."""
    scale = scale or get_scale()
    models = models or PAPER_MODELS
    # horizon 96 needs a longer series for valid val/test splits
    data = prepare_data(DATASET, HORIZON, scale,
                        length=max(scale.data_length, 1600))
    rows: list[dict] = []
    for name in models:
        if name == "TimeKD":
            report = _timekd_report(data, scale)
        else:
            report = _baseline_report(name, data, scale)
        row = report.as_row()
        row.update(dataset=DATASET, horizon=HORIZON)
        rows.append(row)
    return rows


def main() -> list[dict]:
    rows = run()
    print(format_table(rows, title="Table IV — resource efficiency (ETTm1)"))
    save_csv(rows, f"{results_dir()}/table4.csv")
    return rows


if __name__ == "__main__":
    main()
