"""Table III — ablation over LLM backbones within TimeKD.

Paper protocol: Exchange, horizon 24, comparing BERT, GPT-2 and
LLaMA-3.2 backbones; larger backbones should improve accuracy at a
higher parameter cost (ordering bert < gpt2 < llama is preserved by the
tiny stand-ins; see DESIGN.md).
"""

from __future__ import annotations

from ..eval import format_table, save_csv
from ..llm import BACKBONE_CONFIGS, build_backbone
from .common import (
    ExperimentScale,
    get_scale,
    prepare_data,
    results_dir,
    run_timekd,
    strip_private,
)

__all__ = ["run", "main", "BACKBONES"]

BACKBONES = ["bert-tiny", "gpt2-tiny", "llama-tiny"]
DATASET = "Exchange"
HORIZON = 24


def _model_size_m(name: str) -> float:
    """Parameter count of a backbone, in millions."""
    return build_backbone(name).num_parameters() / 1e6


def run(scale: ExperimentScale | None = None,
        backbones: list[str] | None = None) -> list[dict]:
    """Regenerate Table III rows: one per backbone."""
    scale = scale or get_scale()
    backbones = backbones or BACKBONES
    rows: list[dict] = []
    for name in backbones:
        data = prepare_data(DATASET, HORIZON, scale)
        result = strip_private(run_timekd(data, scale, llm_name=name))
        result.update(
            llm=name,
            model_size_M=round(_model_size_m(name), 4),
            dataset=DATASET,
            horizon=HORIZON,
        )
        rows.append(result)
    return rows


def main() -> list[dict]:
    rows = run()
    print(format_table(rows, title="Table III — LLM backbone ablation"))
    save_csv(rows, f"{results_dir()}/table3.csv")
    return rows


if __name__ == "__main__":
    main()
