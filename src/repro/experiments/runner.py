"""Command-line entry point for regenerating paper artefacts.

Usage::

    python -m repro.experiments.runner table1 table4 figure6
    python -m repro.experiments.runner all
    REPRO_FULL=1 python -m repro.experiments.runner table1   # full grid
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from . import (
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)

__all__ = ["EXPERIMENTS", "main"]

EXPERIMENTS = {
    "table1": table1.main,
    "table2": table2.main,
    "table3": table3.main,
    "table4": table4.main,
    "table5": table5.main,
    "table6": table6.main,
    "figure6": figure6.main,
    "figure7": figure7.main,
    "figure8": figure8.main,
    "figure9": figure9.main,
    "figure10": figure10.main,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate TimeKD paper tables and figures")
    parser.add_argument("experiments", nargs="+",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="artefact ids to regenerate")
    parser.add_argument(
        "--embedding-cache", default=None, metavar="DIR",
        help="directory for the shared fingerprinted CLM-embedding "
             "store (default: <REPRO_CACHE|artifacts>/embeddings; "
             "'off' disables persistence)")
    args = parser.parse_args(argv)

    previous_cache = os.environ.get("REPRO_EMBED_CACHE")
    if args.embedding_cache is not None:
        # The experiment modules resolve the store location through
        # repro.experiments.common.embedding_cache_dir().
        os.environ["REPRO_EMBED_CACHE"] = args.embedding_cache

    try:
        names = sorted(EXPERIMENTS) if "all" in args.experiments \
            else args.experiments
        for name in names:
            start = time.perf_counter()
            print(f"\n=== {name} ===")
            EXPERIMENTS[name]()
            print(f"[{name} done in {time.perf_counter() - start:.1f}s]")
    finally:
        if args.embedding_cache is not None:
            if previous_cache is None:
                os.environ.pop("REPRO_EMBED_CACHE", None)
            else:
                os.environ["REPRO_EMBED_CACHE"] = previous_cache
    return 0


if __name__ == "__main__":
    sys.exit(main())
