"""Command-line entry point for regenerating paper artefacts.

Usage::

    python -m repro.experiments.runner table1 table4 figure6
    python -m repro.experiments.runner all
    REPRO_FULL=1 python -m repro.experiments.runner table1   # full grid
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)

__all__ = ["EXPERIMENTS", "main"]

EXPERIMENTS = {
    "table1": table1.main,
    "table2": table2.main,
    "table3": table3.main,
    "table4": table4.main,
    "table5": table5.main,
    "table6": table6.main,
    "figure6": figure6.main,
    "figure7": figure7.main,
    "figure8": figure8.main,
    "figure9": figure9.main,
    "figure10": figure10.main,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate TimeKD paper tables and figures")
    parser.add_argument("experiments", nargs="+",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="artefact ids to regenerate")
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if "all" in args.experiments \
        else args.experiments
    for name in names:
        start = time.perf_counter()
        print(f"\n=== {name} ===")
        EXPERIMENTS[name]()
        print(f"[{name} done in {time.perf_counter() - start:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
