"""Table I — long-term forecasting comparison.

Paper protocol: input 96, horizons {24, 36, 48, 96, 192}, six datasets
(ETTm1/m2/h1/h2, Weather, Exchange), seven models, MSE/MAE.  Quick scale
trims datasets/horizons; ``REPRO_FULL=1`` restores the full grid.
"""

from __future__ import annotations

import os

from ..eval import format_table, save_csv
from .common import (
    PAPER_MODELS,
    ExperimentScale,
    get_scale,
    prepare_data,
    results_dir,
    run_model,
    strip_private,
)

__all__ = ["run", "main", "FULL_DATASETS", "FULL_HORIZONS"]

FULL_DATASETS = ["ETTm1", "ETTm2", "ETTh1", "ETTh2", "Weather", "Exchange"]
FULL_HORIZONS = [24, 36, 48, 96, 192]
QUICK_DATASETS = ["ETTm1", "Exchange"]
QUICK_HORIZONS = [24, 48]


def run(
    scale: ExperimentScale | None = None,
    datasets: list[str] | None = None,
    horizons: list[int] | None = None,
    models: list[str] | None = None,
) -> list[dict]:
    """Regenerate Table I rows: one per (dataset, horizon, model)."""
    scale = scale or get_scale()
    full = bool(os.environ.get("REPRO_FULL"))
    datasets = datasets or (FULL_DATASETS if full else QUICK_DATASETS)
    horizons = horizons or (FULL_HORIZONS if full else QUICK_HORIZONS)
    models = models or PAPER_MODELS

    rows: list[dict] = []
    for dataset in datasets:
        for horizon in horizons:
            data = prepare_data(dataset, horizon, scale)
            for model in models:
                result = strip_private(run_model(model, data, scale))
                result.update(dataset=dataset, horizon=horizon)
                rows.append(result)
    return rows


def main() -> list[dict]:
    rows = run()
    print(format_table(rows, title="Table I — long-term forecasting"))
    save_csv(rows, f"{results_dir()}/table1.csv")
    return rows


if __name__ == "__main__":
    main()
