"""Table V — few-shot forecasting on 10% of the training data.

Paper protocol: first 10% of training windows, input 96, horizon 96, the
four ETT datasets.  TimeKD's distillation from a pretrained CLM should
degrade the least under data scarcity.
"""

from __future__ import annotations

from ..eval import format_table, save_csv
from .common import (
    PAPER_MODELS,
    ExperimentScale,
    get_scale,
    prepare_data,
    results_dir,
    run_model,
    strip_private,
)

__all__ = ["run", "main"]

FULL_DATASETS = ["ETTm1", "ETTm2", "ETTh1", "ETTh2"]
QUICK_DATASETS = ["ETTm1", "ETTh2"]
HORIZON = 96
TRAIN_FRACTION = 0.1


def run(
    scale: ExperimentScale | None = None,
    datasets: list[str] | None = None,
    models: list[str] | None = None,
) -> list[dict]:
    """Regenerate Table V rows: one per (dataset, model)."""
    import os

    scale = scale or get_scale()
    full = bool(os.environ.get("REPRO_FULL"))
    datasets = datasets or (FULL_DATASETS if full else QUICK_DATASETS)
    models = models or PAPER_MODELS

    rows: list[dict] = []
    for dataset in datasets:
        # the 10% subset must still contain enough windows: enlarge the
        # raw series rather than weaken the few-shot constraint
        data = prepare_data(dataset, HORIZON, scale,
                            train_fraction=TRAIN_FRACTION,
                            length=max(scale.data_length, 2200))
        for model in models:
            result = strip_private(run_model(model, data, scale))
            result.update(dataset=dataset, horizon=HORIZON,
                          train_fraction=TRAIN_FRACTION)
            rows.append(result)
    return rows


def main() -> list[dict]:
    rows = run()
    print(format_table(rows, title="Table V — few-shot (10% train data)"))
    save_csv(rows, f"{results_dir()}/table5.csv")
    return rows


if __name__ == "__main__":
    main()
