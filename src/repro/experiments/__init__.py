"""``repro.experiments`` — one module per paper table/figure.

See DESIGN.md section 4 for the experiment index.  Each module exposes
``run()`` (returns structured rows) and ``main()`` (prints a paper-style
table and saves a CSV under ``artifacts/results``).
"""

from . import (  # noqa: F401
    common,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)

__all__ = [
    "common",
    "table1", "table2", "table3", "table4", "table5", "table6",
    "figure6", "figure7", "figure8", "figure9", "figure10",
]
