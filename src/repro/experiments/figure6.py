"""Figure 6 — component ablations of TimeKD.

Variants (paper Section V-B3): ``w/o PI`` (no privileged ground-truth
prompts), ``w/o CA`` (vanilla attention mask), ``w/o CLM`` (no language
model in the teacher), ``w/o SCA`` (plain subtraction), ``w/o CD`` (no
correlation distillation), ``w/o FD`` (no feature distillation).
Every variant should underperform full TimeKD; ``w/o CLM`` worst.
"""

from __future__ import annotations

from ..eval import format_table, save_csv
from .common import (
    ExperimentScale,
    get_scale,
    prepare_data,
    results_dir,
    run_timekd,
    strip_private,
    timekd_config,
)

__all__ = ["run", "main", "VARIANTS"]

VARIANTS = ["TimeKD", "w/o PI", "w/o CA", "w/o CLM", "w/o SCA",
            "w/o CD", "w/o FD"]
FULL_DATASETS = ["ETTm1", "Weather", "ETTh2", "Exchange"]
QUICK_DATASETS = ["Weather", "ETTm1"]
HORIZON = 24


def run(
    scale: ExperimentScale | None = None,
    datasets: list[str] | None = None,
    variants: list[str] | None = None,
) -> list[dict]:
    """Regenerate Figure 6 data: one row per (dataset, variant)."""
    import os

    scale = scale or get_scale()
    full = bool(os.environ.get("REPRO_FULL"))
    datasets = datasets or (FULL_DATASETS if full else QUICK_DATASETS)
    variants = variants or VARIANTS

    rows: list[dict] = []
    for dataset in datasets:
        data = prepare_data(dataset, HORIZON, scale)
        base_config = timekd_config(data, scale)
        for variant in variants:
            if variant == "TimeKD":
                overrides = {}
            else:
                ablated = base_config.ablation(variant)
                overrides = {
                    field: getattr(ablated, field)
                    for field in (
                        "use_privileged_info", "calibration_delta",
                        "use_clm", "use_sca",
                        "use_correlation_distillation",
                        "use_feature_distillation",
                    )
                }
            result = strip_private(run_timekd(data, scale, **overrides))
            result.update(model=variant, dataset=dataset, horizon=HORIZON)
            rows.append(result)
    return rows


def main() -> list[dict]:
    rows = run()
    print(format_table(rows, title="Figure 6 — TimeKD component ablations"))
    save_csv(rows, f"{results_dir()}/figure6.csv")
    return rows


if __name__ == "__main__":
    main()
