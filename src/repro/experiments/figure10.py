"""Figure 10 — ground truth vs prediction on ETTh1.

Rolls the fitted student across the test split and stitches ~200 steps
of forecasts for the four variables the paper plots (HUFL, MUFL, LUFL,
OT).  Series are saved as CSV; per-variable Pearson correlation between
prediction and ground truth quantifies the visual alignment.
"""

from __future__ import annotations

import os

import numpy as np

from ..eval import save_csv
from .common import (
    ExperimentScale,
    get_scale,
    prepare_data,
    results_dir,
    run_timekd,
)

__all__ = ["run", "main", "VARIABLES"]

DATASET = "ETTh1"
HORIZON = 24
VARIABLES = ["HUFL", "MUFL", "LUFL", "OT"]
PLOT_STEPS = 192


def run(scale: ExperimentScale | None = None) -> dict:
    """Fit TimeKD on ETTh1 and collect stitched forecast series."""
    scale = scale or get_scale()
    data = prepare_data(DATASET, HORIZON, scale)
    result = run_timekd(data, scale)
    forecaster = result["_forecaster"]

    columns = ["HUFL", "HULL", "MUFL", "MULL", "LUFL", "LULL", "OT"]
    indices = [columns.index(v) for v in VARIABLES]

    predictions, truths = [], []
    step = 0
    while step + 1 <= len(data.test) and len(predictions) * HORIZON < PLOT_STEPS:
        history, future = data.test[step]
        prediction = forecaster.predict(history)
        predictions.append(prediction[:, indices])
        truths.append(future[:, indices])
        step += HORIZON  # non-overlapping windows stitch cleanly
    prediction_series = np.concatenate(predictions)[:PLOT_STEPS]
    truth_series = np.concatenate(truths)[:PLOT_STEPS]

    correlations = {}
    for i, name in enumerate(VARIABLES):
        p, t = prediction_series[:, i], truth_series[:, i]
        denom = p.std() * t.std()
        correlations[name] = float(
            ((p - p.mean()) * (t - t.mean())).mean() / denom) if denom else 0.0
    return {
        "prediction": prediction_series,
        "ground_truth": truth_series,
        "correlations": correlations,
    }


def main() -> dict:
    output = run()
    rows = []
    for t in range(len(output["prediction"])):
        row = {"step": t}
        for i, name in enumerate(VARIABLES):
            row[f"{name}_true"] = float(output["ground_truth"][t, i])
            row[f"{name}_pred"] = float(output["prediction"][t, i])
        rows.append(row)
    path = os.path.join(results_dir(), "figure10.csv")
    save_csv(rows, path)
    print("Figure 10 — prediction vs ground truth correlations (ETTh1):")
    for name, corr in output["correlations"].items():
        print(f"  {name}: r = {corr:.3f}")
    print(f"series saved to {path}")
    return output


if __name__ == "__main__":
    main()
