"""Figure 8 — attention maps of the two Transformers on ETTm1.

Visualizes the head-averaged last-layer attention of the privileged
Transformer (teacher, global/universal pattern) and of the time-series
Transformer (student, local/variable-specific pattern), horizon 96.
Matrices are saved as ``.npy`` and rendered as text heatmaps.
"""

from __future__ import annotations

import os

import numpy as np

from ..data import ETT_COLUMNS
from ..eval import save_csv
from ..persist import atomic_save_array
from .common import (
    ExperimentScale,
    get_scale,
    prepare_data,
    results_dir,
    run_timekd,
)

__all__ = ["run", "main", "render_heatmap"]

DATASET = "ETTm1"
HORIZON = 96
_SHADES = " .:-=+*#%@"


def render_heatmap(matrix: np.ndarray, labels: list[str]) -> str:
    """Render a small matrix as an ASCII heatmap (rows = queries)."""
    lo, hi = matrix.min(), matrix.max()
    span = (hi - lo) or 1.0
    lines = []
    width = max(len(l) for l in labels)
    for label, row in zip(labels, matrix):
        cells = "".join(
            _SHADES[int((v - lo) / span * (len(_SHADES) - 1))] * 2
            for v in row)
        lines.append(f"{label:>{width}} |{cells}|")
    return "\n".join(lines)


def run(scale: ExperimentScale | None = None) -> dict[str, np.ndarray]:
    """Fit TimeKD on ETTm1 and extract both attention maps."""
    scale = scale or get_scale()
    data = prepare_data(DATASET, HORIZON, scale,
                        length=max(scale.data_length, 1600))
    result = run_timekd(data, scale)
    forecaster = result["_forecaster"]
    history, future = data.test[0]
    return forecaster.attention_maps(history, future)


def main() -> dict[str, np.ndarray]:
    maps = run()
    labels = ETT_COLUMNS
    out_dir = results_dir()
    for key, matrix in maps.items():
        atomic_save_array(
            os.path.join(out_dir, f"figure8_{key}.npy"), matrix)
        print(f"\nFigure 8 — {key} Transformer attention (ETTm1):")
        print(render_heatmap(matrix, labels))
    rows = []
    for key, matrix in maps.items():
        for i, qlabel in enumerate(labels):
            row = {"map": key, "variable": qlabel}
            row.update({k: float(matrix[i, j])
                        for j, k in enumerate(labels)})
            rows.append(row)
    save_csv(rows, os.path.join(out_dir, "figure8.csv"))
    return maps


if __name__ == "__main__":
    main()
