"""Table VI — zero-shot transfer across ETT datasets.

Paper protocol: train on one ETT dataset, evaluate unchanged on another
(ETTm1→ETTm2, ETTm2→ETTm1, ETTh1→ETTh2, ETTh2→ETTh1), horizon 96.
TimeKD's privileged distillation should transfer temporal structure best.
"""

from __future__ import annotations

from ..eval import evaluate_forecast_model, format_table, save_csv
from .common import (
    PAPER_MODELS,
    ExperimentScale,
    get_scale,
    prepare_data,
    results_dir,
    run_model,
)

__all__ = ["run", "main", "TRANSFERS"]

TRANSFERS = [
    ("ETTm1", "ETTm2"),
    ("ETTm2", "ETTm1"),
    ("ETTh1", "ETTh2"),
    ("ETTh2", "ETTh1"),
]
QUICK_TRANSFERS = [("ETTm1", "ETTm2"), ("ETTh1", "ETTh2")]
HORIZON = 96


def run(
    scale: ExperimentScale | None = None,
    transfers: list[tuple[str, str]] | None = None,
    models: list[str] | None = None,
) -> list[dict]:
    """Regenerate Table VI rows: one per (transfer, model)."""
    import os

    scale = scale or get_scale()
    full = bool(os.environ.get("REPRO_FULL"))
    transfers = transfers or (TRANSFERS if full else QUICK_TRANSFERS)
    models = models or PAPER_MODELS

    rows: list[dict] = []
    for source, target in transfers:
        length = max(scale.data_length, 1600)  # horizon-96 split minimum
        source_data = prepare_data(source, HORIZON, scale, length=length)
        target_data = prepare_data(target, HORIZON, scale, length=length)
        for name in models:
            result = run_model(name, source_data, scale)
            if "_forecaster" in result:  # TimeKD
                metrics = result["_forecaster"].evaluate(target_data.test)
            else:
                metrics = evaluate_forecast_model(
                    result["_model"], target_data.test)
            rows.append({
                "transfer": f"{source}->{target}",
                "model": name,
                "mse": metrics["mse"],
                "mae": metrics["mae"],
            })
    return rows


def main() -> list[dict]:
    rows = run()
    print(format_table(rows, title="Table VI — zero-shot transfer (ETT)"))
    save_csv(rows, f"{results_dir()}/table6.csv")
    return rows


if __name__ == "__main__":
    main()
