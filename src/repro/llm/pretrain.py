"""Pretraining loop and cached checkpoint access for LM backbones.

``get_pretrained(name)`` is the offline analogue of
``AutoModel.from_pretrained``: the first call pretrains the tiny backbone
on the synthetic narration corpus and caches the weights under
``artifacts/llm``; later calls load from disk.
"""

from __future__ import annotations

import os

import numpy as np

from ..nn import Adam, clip_grad_norm, load_module, save_module
from ..nn.functional import cross_entropy
from .backbones import TransformerLM
from .corpus import CorpusConfig, NarrationCorpus
from .registry import build_backbone
from .vocab import Vocabulary

__all__ = ["pretrain_backbone", "get_pretrained", "default_cache_dir"]


def default_cache_dir() -> str:
    """Directory for cached backbone checkpoints."""
    root = os.environ.get("REPRO_CACHE", os.path.join(os.getcwd(), "artifacts"))
    return os.path.join(root, "llm")


def pretrain_backbone(
    model: TransformerLM,
    vocab: Vocabulary | None = None,
    steps: int = 120,
    batch_size: int = 8,
    lr: float = 3e-3,
    seed: int = 1234,
    corpus_config: CorpusConfig | None = None,
) -> list[float]:
    """Next-token pretraining on the synthetic narration corpus.

    Returns the per-step loss curve (useful for convergence assertions in
    tests).  The model is trained in place.
    """
    vocab = vocab or Vocabulary()
    corpus_config = corpus_config or CorpusConfig(seed=seed)
    corpus = NarrationCorpus(vocab=vocab, config=corpus_config)
    optimizer = Adam(model.parameters(), lr=lr)
    losses: list[float] = []
    model.train()
    for _ in range(steps):
        inputs, targets = corpus.batch(batch_size)
        logits = model.logits(inputs)
        loss = cross_entropy(logits, targets)
        optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(optimizer.parameters, 1.0)
        optimizer.step()
        losses.append(loss.item())
    model.eval()
    return losses


def get_pretrained(
    name: str,
    vocab: Vocabulary | None = None,
    steps: int = 120,
    cache_dir: str | None = None,
    force_retrain: bool = False,
) -> TransformerLM:
    """Return a pretrained backbone, training and caching it if needed."""
    vocab = vocab or Vocabulary()
    model = build_backbone(name, vocab=vocab)
    cache_dir = cache_dir or default_cache_dir()
    path = os.path.join(cache_dir, f"{name}-s{steps}.npz")
    if not force_retrain and os.path.exists(path):
        load_module(model, path)
        model.eval()
        return model
    pretrain_backbone(model, vocab=vocab, steps=steps)
    save_module(model, path)
    return model


def perplexity(model: TransformerLM, vocab: Vocabulary, batches: int = 4,
               batch_size: int = 8, seed: int = 999) -> float:
    """Held-out perplexity of a backbone on fresh narration samples."""
    corpus = NarrationCorpus(vocab=vocab, config=CorpusConfig(seed=seed))
    total = 0.0
    for _ in range(batches):
        inputs, targets = corpus.batch(batch_size)
        logits = model.logits(inputs)
        total += cross_entropy(logits, targets).item()
    return float(np.exp(total / batches))
