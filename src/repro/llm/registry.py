"""Backbone registry — the three LLM families of paper Table III.

Sizes scale down (110M/117M/3B → tens of thousands of parameters) but the
relative ordering and the architectural signatures are preserved:

========== ============ ======== ===========================
name        paper model  causal   signature
========== ============ ======== ===========================
bert-tiny   BERT-base    no       LayerNorm + GELU, learned pos
gpt2-tiny   GPT-2        yes      LayerNorm + GELU, learned pos
llama-tiny  LLaMA-3.2    yes      RMSNorm + SwiGLU + RoPE
========== ============ ======== ===========================
"""

from __future__ import annotations

from .backbones import LMConfig, TransformerLM
from .vocab import Vocabulary

__all__ = ["BACKBONE_CONFIGS", "build_backbone", "backbone_names"]

_DEFAULT_VOCAB = Vocabulary()

BACKBONE_CONFIGS: dict[str, LMConfig] = {
    "bert-tiny": LMConfig(
        name="bert-tiny",
        vocab_size=len(_DEFAULT_VOCAB),
        dim=32,
        num_layers=2,
        num_heads=2,
        ffn_dim=64,
        causal=False,
        norm="layer",
        activation="gelu",
        positions="learned",
    ),
    "gpt2-tiny": LMConfig(
        name="gpt2-tiny",
        vocab_size=len(_DEFAULT_VOCAB),
        dim=48,
        num_layers=2,
        num_heads=4,
        ffn_dim=96,
        causal=True,
        norm="layer",
        activation="gelu",
        positions="learned",
    ),
    "llama-tiny": LMConfig(
        name="llama-tiny",
        vocab_size=len(_DEFAULT_VOCAB),
        dim=64,
        num_layers=3,
        num_heads=4,
        ffn_dim=128,
        causal=True,
        norm="rms",
        activation="swiglu",
        positions="rope",
    ),
}


def backbone_names() -> list[str]:
    """Registered backbone names, smallest first."""
    return list(BACKBONE_CONFIGS)


def build_backbone(name: str, vocab: Vocabulary | None = None) -> TransformerLM:
    """Instantiate an (untrained) backbone by registry name."""
    if name not in BACKBONE_CONFIGS:
        raise KeyError(
            f"unknown backbone {name!r}; available: {backbone_names()}")
    config = BACKBONE_CONFIGS[name]
    if vocab is not None and len(vocab) != config.vocab_size:
        config = LMConfig(**{**config.__dict__, "vocab_size": len(vocab)})
    return TransformerLM(config)
