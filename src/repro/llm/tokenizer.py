"""Prompt construction and tokenization with modality tags.

Implements the two prompt templates of paper Figure 2:

* **historical prompt** ``P_HD`` — "From <t-H+1> to <t>, values were
  <h_1 ... h_H> every <f> minutes. Forecast the next <M> minutes";
* **ground-truth prompt** ``P_GT`` — the same, followed by
  ": <g_1 ... g_M>" (the privileged future values).

Each token carries a modality tag (:data:`TEXT_MODALITY` or
:data:`NUMERIC_MODALITY`) which the calibrated attention mask consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .vocab import NUMERIC_MODALITY, TEXT_MODALITY, Vocabulary

__all__ = ["TokenizedPrompt", "PromptTokenizer"]


@dataclass
class TokenizedPrompt:
    """A tokenized prompt: ids, modality tags and the source text."""

    token_ids: np.ndarray
    modality: np.ndarray
    text: str = ""

    def __post_init__(self):
        self.token_ids = np.asarray(self.token_ids, dtype=np.int64)
        self.modality = np.asarray(self.modality, dtype=np.int64)
        if self.token_ids.shape != self.modality.shape:
            raise ValueError("token_ids and modality must have equal shape")

    def __len__(self) -> int:
        return len(self.token_ids)


@dataclass
class PromptTokenizer:
    """Render and tokenize the Figure-2 prompt templates.

    Parameters
    ----------
    vocab:
        Shared vocabulary.
    frequency_minutes:
        Sampling interval announced in the template.
    value_stride:
        Include every ``value_stride``-th *historical* observation in
        the prompt.  The paper uses every value; a stride > 1 shortens
        sequences so the frozen CLM fits the 1-CPU budget while
        preserving the template structure.
    future_stride:
        Stride for the privileged future values of ``P_GT``.  Kept at 1
        by default: the ground-truth continuation is the privileged
        signal, so it is never decimated.
    """

    vocab: Vocabulary = field(default_factory=Vocabulary)
    frequency_minutes: int = 15
    value_stride: int = 1
    future_stride: int = 1

    def _prefix_ids(self, num_values: int) -> tuple[list[int], list[int], list[str]]:
        words = ["from", "to", "values", "were"]
        ids = [self.vocab.bos_id] + [self.vocab.word_id(w) for w in words]
        modality = [TEXT_MODALITY] * len(ids)
        return ids, modality, words

    def _suffix_words(self, horizon: int) -> list[str]:
        return ["every", "minutes", "forecast", "the", "next", "minutes"]

    def historical_prompt(self, history: np.ndarray, horizon: int) -> TokenizedPrompt:
        """Tokenize the historical prompt ``P_HD`` for one variable.

        Parameters
        ----------
        history:
            1-D array of (standardized) historical values ``X_H[:, n]``.
        horizon:
            Forecast horizon ``M`` announced in the instruction.
        """
        history = np.asarray(history, dtype=np.float64).ravel()
        values = history[:: self.value_stride]
        ids, modality, words = self._prefix_ids(len(values))

        value_ids = self.vocab.value_ids(values)
        ids.extend(int(v) for v in value_ids)
        modality.extend([NUMERIC_MODALITY] * len(value_ids))

        suffix = self._suffix_words(horizon)
        ids.extend(self.vocab.word_id(w) for w in suffix)
        modality.extend([TEXT_MODALITY] * len(suffix))
        ids.append(self.vocab.eos_id)
        modality.append(TEXT_MODALITY)

        text = "from t-H+1 to t, values were " + " ".join(
            f"{v:.2f}" for v in values
        ) + f" every {self.frequency_minutes} minutes. forecast the next {horizon} minutes"
        return TokenizedPrompt(np.array(ids), np.array(modality), text)

    def ground_truth_prompt(
        self, history: np.ndarray, future: np.ndarray
    ) -> TokenizedPrompt:
        """Tokenize the privileged prompt ``P_GT`` for one variable.

        The ground-truth continuation is appended after a separator, so
        ``P_GT`` strictly extends ``P_HD`` — future data is *privileged
        information* only available at training time (paper Figure 1).
        """
        history = np.asarray(history, dtype=np.float64).ravel()
        future = np.asarray(future, dtype=np.float64).ravel()
        base = self.historical_prompt(history, horizon=len(future))

        ids = list(base.token_ids[:-1])  # drop eos, continue the sequence
        modality = list(base.modality[:-1])
        ids.append(self.vocab.sep_id)
        modality.append(TEXT_MODALITY)

        future_values = future[:: self.future_stride]
        value_ids = self.vocab.value_ids(future_values)
        ids.extend(int(v) for v in value_ids)
        modality.extend([NUMERIC_MODALITY] * len(value_ids))
        ids.append(self.vocab.eos_id)
        modality.append(TEXT_MODALITY)

        text = base.text + ": " + " ".join(f"{v:.2f}" for v in future_values)
        return TokenizedPrompt(np.array(ids), np.array(modality), text)

    # ------------------------------------------------------------------
    # batched multivariate helpers
    # ------------------------------------------------------------------
    def batch_historical(self, history: np.ndarray, horizon: int) -> TokenizedPrompt:
        """Tokenize ``P_HD`` for every variable of an ``(H, N)`` window.

        All variables share one template, so sequences align and stack
        into ``(N, S)`` arrays.
        """
        history = np.asarray(history)
        prompts = [
            self.historical_prompt(history[:, n], horizon)
            for n in range(history.shape[1])
        ]
        return _stack_prompts(prompts)

    def batch_ground_truth(
        self, history: np.ndarray, future: np.ndarray
    ) -> TokenizedPrompt:
        """Tokenize ``P_GT`` for every variable of aligned windows."""
        history = np.asarray(history)
        future = np.asarray(future)
        if history.shape[1] != future.shape[1]:
            raise ValueError("history and future must share the variable axis")
        prompts = [
            self.ground_truth_prompt(history[:, n], future[:, n])
            for n in range(history.shape[1])
        ]
        return _stack_prompts(prompts)


def _stack_prompts(prompts: list[TokenizedPrompt]) -> TokenizedPrompt:
    lengths = {len(p) for p in prompts}
    if len(lengths) != 1:
        raise ValueError(f"prompts have inconsistent lengths: {sorted(lengths)}")
    return TokenizedPrompt(
        np.stack([p.token_ids for p in prompts]),
        np.stack([p.modality for p in prompts]),
        prompts[0].text if prompts else "",
    )
