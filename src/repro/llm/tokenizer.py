"""Prompt construction and tokenization with modality tags.

Implements the two prompt templates of paper Figure 2:

* **historical prompt** ``P_HD`` — "From <t-H+1> to <t>, values were
  <h_1 ... h_H> every <f> minutes. Forecast the next <M> minutes";
* **ground-truth prompt** ``P_GT`` — the same, followed by
  ": <g_1 ... g_M>" (the privileged future values).

Each token carries a modality tag (:data:`TEXT_MODALITY` or
:data:`NUMERIC_MODALITY`) which the calibrated attention mask consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .vocab import NUMERIC_MODALITY, TEXT_MODALITY, Vocabulary

__all__ = ["TokenizedPrompt", "PromptTokenizer"]


@dataclass
class TokenizedPrompt:
    """A tokenized prompt: ids, modality tags and the source text."""

    token_ids: np.ndarray
    modality: np.ndarray
    text: str = ""

    def __post_init__(self):
        self.token_ids = np.asarray(self.token_ids, dtype=np.int64)
        self.modality = np.asarray(self.modality, dtype=np.int64)
        if self.token_ids.shape != self.modality.shape:
            raise ValueError("token_ids and modality must have equal shape")

    def __len__(self) -> int:
        return len(self.token_ids)


@dataclass
class PromptTokenizer:
    """Render and tokenize the Figure-2 prompt templates.

    Parameters
    ----------
    vocab:
        Shared vocabulary.
    frequency_minutes:
        Sampling interval announced in the template.
    value_stride:
        Include every ``value_stride``-th *historical* observation in
        the prompt.  The paper uses every value; a stride > 1 shortens
        sequences so the frozen CLM fits the 1-CPU budget while
        preserving the template structure.
    future_stride:
        Stride for the privileged future values of ``P_GT``.  Kept at 1
        by default: the ground-truth continuation is the privileged
        signal, so it is never decimated.
    """

    vocab: Vocabulary = field(default_factory=Vocabulary)
    frequency_minutes: int = 15
    value_stride: int = 1
    future_stride: int = 1

    def __post_init__(self):
        # The template around the values is constant, so its token ids
        # are resolved once instead of per prompt per variable.
        self._prefix_arr = np.array(
            [self.vocab.bos_id]
            + [self.vocab.word_id(w) for w in ("from", "to", "values", "were")],
            dtype=np.int64)
        self._suffix_arr = np.array(
            [self.vocab.word_id(w) for w in self._suffix_words(0)]
            + [self.vocab.eos_id],
            dtype=np.int64)

    def _prefix_ids(self, num_values: int) -> tuple[list[int], list[int], list[str]]:
        words = ["from", "to", "values", "were"]
        ids = list(map(int, self._prefix_arr))
        modality = [TEXT_MODALITY] * len(ids)
        return ids, modality, words

    def _suffix_words(self, horizon: int) -> list[str]:
        return ["every", "minutes", "forecast", "the", "next", "minutes"]

    def historical_prompt(self, history: np.ndarray, horizon: int) -> TokenizedPrompt:
        """Tokenize the historical prompt ``P_HD`` for one variable.

        Parameters
        ----------
        history:
            1-D array of (standardized) historical values ``X_H[:, n]``.
        horizon:
            Forecast horizon ``M`` announced in the instruction.
        """
        history = np.asarray(history, dtype=np.float64).ravel()
        values = history[:: self.value_stride]
        ids, modality, words = self._prefix_ids(len(values))

        value_ids = self.vocab.value_ids(values)
        ids.extend(int(v) for v in value_ids)
        modality.extend([NUMERIC_MODALITY] * len(value_ids))

        suffix = self._suffix_words(horizon)
        ids.extend(self.vocab.word_id(w) for w in suffix)
        modality.extend([TEXT_MODALITY] * len(suffix))
        ids.append(self.vocab.eos_id)
        modality.append(TEXT_MODALITY)

        text = "from t-H+1 to t, values were " + " ".join(
            f"{v:.2f}" for v in values
        ) + f" every {self.frequency_minutes} minutes. forecast the next {horizon} minutes"
        return TokenizedPrompt(np.array(ids), np.array(modality), text)

    def ground_truth_prompt(
        self, history: np.ndarray, future: np.ndarray
    ) -> TokenizedPrompt:
        """Tokenize the privileged prompt ``P_GT`` for one variable.

        The ground-truth continuation is appended after a separator, so
        ``P_GT`` strictly extends ``P_HD`` — future data is *privileged
        information* only available at training time (paper Figure 1).
        """
        history = np.asarray(history, dtype=np.float64).ravel()
        future = np.asarray(future, dtype=np.float64).ravel()
        base = self.historical_prompt(history, horizon=len(future))

        ids = list(base.token_ids[:-1])  # drop eos, continue the sequence
        modality = list(base.modality[:-1])
        ids.append(self.vocab.sep_id)
        modality.append(TEXT_MODALITY)

        future_values = future[:: self.future_stride]
        value_ids = self.vocab.value_ids(future_values)
        ids.extend(int(v) for v in value_ids)
        modality.extend([NUMERIC_MODALITY] * len(value_ids))
        ids.append(self.vocab.eos_id)
        modality.append(TEXT_MODALITY)

        text = base.text + ": " + " ".join(f"{v:.2f}" for v in future_values)
        return TokenizedPrompt(np.array(ids), np.array(modality), text)

    # ------------------------------------------------------------------
    # batched multivariate helpers (vectorized over variables)
    # ------------------------------------------------------------------
    def _assemble(self, segments: list[tuple[np.ndarray, int]],
                  text: str) -> TokenizedPrompt:
        """Stack ``(ids, modality_tag)`` segments into an ``(N, S)`` batch.

        Each segment's ids are either shared 1-D template ids (broadcast
        over variables) or a per-variable ``(N, K)`` matrix of value ids.
        """
        num_vars = next(ids.shape[0] for ids, _ in segments if ids.ndim == 2)
        width = sum(ids.shape[-1] for ids, _ in segments)
        token_ids = np.empty((num_vars, width), dtype=np.int64)
        modality = np.empty((num_vars, width), dtype=np.int64)
        offset = 0
        for ids, tag in segments:
            stop = offset + ids.shape[-1]
            token_ids[:, offset:stop] = ids
            modality[:, offset:stop] = tag
            offset = stop
        return TokenizedPrompt(token_ids, modality, text)

    def batch_historical(self, history: np.ndarray, horizon: int) -> TokenizedPrompt:
        """Tokenize ``P_HD`` for every variable of an ``(H, N)`` window.

        All variables share one template, so sequences align and stack
        into ``(N, S)`` arrays; the value ids for every variable are
        quantized in one vectorized pass.
        """
        history = np.asarray(history, dtype=np.float64)
        values = history[:: self.value_stride]               # (V, N)
        value_ids = self.vocab.value_ids(values.T)           # (N, V)
        text = (
            "from t-H+1 to t, values were "
            + " ".join(f"{v:.2f}" for v in values[:, 0])
            + f" every {self.frequency_minutes} minutes."
            + f" forecast the next {horizon} minutes"
        )
        return self._assemble(
            [(self._prefix_arr, TEXT_MODALITY),
             (value_ids, NUMERIC_MODALITY),
             (self._suffix_arr, TEXT_MODALITY)],
            text,
        )

    def batch_ground_truth(
        self, history: np.ndarray, future: np.ndarray
    ) -> TokenizedPrompt:
        """Tokenize ``P_GT`` for every variable of aligned windows."""
        history = np.asarray(history, dtype=np.float64)
        future = np.asarray(future, dtype=np.float64)
        if history.shape[1] != future.shape[1]:
            raise ValueError("history and future must share the variable axis")
        hist_values = history[:: self.value_stride]          # (V, N)
        future_values = future[:: self.future_stride]        # (F, N)
        hist_ids = self.vocab.value_ids(hist_values.T)       # (N, V)
        future_ids = self.vocab.value_ids(future_values.T)   # (N, F)
        sep = np.array([self.vocab.sep_id], dtype=np.int64)
        eos = np.array([self.vocab.eos_id], dtype=np.int64)
        text = (
            "from t-H+1 to t, values were "
            + " ".join(f"{v:.2f}" for v in hist_values[:, 0])
            + f" every {self.frequency_minutes} minutes."
            + f" forecast the next {len(future)} minutes"
            + ": " + " ".join(f"{v:.2f}" for v in future_values[:, 0])
        )
        return self._assemble(
            [(self._prefix_arr, TEXT_MODALITY),
             (hist_ids, NUMERIC_MODALITY),
             (self._suffix_arr[:-1], TEXT_MODALITY),  # template sans eos
             (sep, TEXT_MODALITY),
             (future_ids, NUMERIC_MODALITY),
             (eos, TEXT_MODALITY)],
            text,
        )


