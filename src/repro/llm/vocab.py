"""Vocabulary for the prompt language models.

The prompt templates (paper Figure 2) mix a small closed set of English
words with numeric value tokens.  Numeric values are quantized into
``num_value_bins`` buckets over a fixed z-score range, which gives the
language model a discrete, learnable "numeric sub-language" — the same
role byte-pair numeric chunks play for GPT-2.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Vocabulary", "TEXT_MODALITY", "NUMERIC_MODALITY"]

#: Modality tag for natural-language template tokens.
TEXT_MODALITY = 0
#: Modality tag for quantized time-series value tokens.
NUMERIC_MODALITY = 1

_TEMPLATE_WORDS = [
    "from", "to", "the", "values", "were", "every", "minutes", "hours",
    "days", "forecast", "next", "steps", "value", "was", "and", "for",
    "dataset", "variable", "of", "series", "time", "predict", "is",
    "trend", "up", "down", "flat",
]

_SPECIAL = ["<pad>", "<bos>", "<eos>", "<unk>", "<sep>"]


class Vocabulary:
    """Closed vocabulary of special tokens, template words and value bins.

    Parameters
    ----------
    num_value_bins:
        Number of quantization buckets for numeric values.
    value_range:
        Symmetric clipping range for (standardized) values before
        bucketing.
    """

    def __init__(self, num_value_bins: int = 64, value_range: float = 5.0):
        self.num_value_bins = num_value_bins
        self.value_range = value_range
        self._tokens = list(_SPECIAL) + list(_TEMPLATE_WORDS)
        self._value_offset = len(self._tokens)
        self._tokens += [f"<v{i}>" for i in range(num_value_bins)]
        self._index = {token: i for i, token in enumerate(self._tokens)}
        self.pad_id = self._index["<pad>"]
        self.bos_id = self._index["<bos>"]
        self.eos_id = self._index["<eos>"]
        self.unk_id = self._index["<unk>"]
        self.sep_id = self._index["<sep>"]

    def __len__(self) -> int:
        return len(self._tokens)

    # ------------------------------------------------------------------
    # words
    # ------------------------------------------------------------------
    def word_id(self, word: str) -> int:
        """Id of a template word (``<unk>`` for out-of-vocabulary)."""
        return self._index.get(word.lower(), self.unk_id)

    def id_to_token(self, token_id: int) -> str:
        return self._tokens[token_id]

    def is_value_token(self, token_id: int) -> bool:
        return token_id >= self._value_offset

    # ------------------------------------------------------------------
    # numeric values
    # ------------------------------------------------------------------
    def value_id(self, value: float) -> int:
        """Quantize ``value`` into its bucket token id."""
        return self._value_offset + self.value_bin(value)

    def value_bin(self, value: float) -> int:
        clipped = float(np.clip(value, -self.value_range, self.value_range))
        unit = (clipped + self.value_range) / (2.0 * self.value_range)
        bin_index = int(unit * (self.num_value_bins - 1) + 0.5)
        return min(bin_index, self.num_value_bins - 1)

    def value_ids(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`value_id` over an array."""
        clipped = np.clip(values, -self.value_range, self.value_range)
        unit = (clipped + self.value_range) / (2.0 * self.value_range)
        bins = np.minimum(
            (unit * (self.num_value_bins - 1) + 0.5).astype(np.int64),
            self.num_value_bins - 1,
        )
        return bins + self._value_offset

    def bin_center(self, token_id: int) -> float:
        """Representative value of a value-bin token (for decoding)."""
        if not self.is_value_token(token_id):
            raise ValueError(f"token {token_id} is not a value token")
        bin_index = token_id - self._value_offset
        unit = bin_index / (self.num_value_bins - 1)
        return unit * 2.0 * self.value_range - self.value_range
