"""Calibrated Language Models (CLMs) — paper Section IV-B1.

A CLM is a *frozen* pretrained backbone whose attention scores are
calibrated by modality: cross-modality token pairs (text ↔ numeric value)
receive an additive ``-Delta`` penalty (Eq. 5), suppressing inter-modality
fusion while keeping intra-modality correlations intact.  The wrapper
extracts last-token embeddings, the unit of knowledge the teacher
distills from.
"""

from __future__ import annotations

import numpy as np

from ..nn import Module, Tensor, no_grad
from .backbones import TransformerLM
from .tokenizer import TokenizedPrompt

__all__ = ["build_calibrated_bias", "CalibratedLanguageModel"]


def build_calibrated_bias(modality: np.ndarray, delta: float) -> np.ndarray:
    """Additive attention bias from modality tags (paper Eq. 5).

    Parameters
    ----------
    modality:
        Integer tags, shape ``(S,)`` or ``(B, S)``.
    delta:
        Cross-modality penalty ``Delta >= 0``; 0 recovers the vanilla
        mask (the ``w/o CA`` ablation).

    Returns
    -------
    Bias of shape ``(S, S)`` or ``(B, 1, S, S)`` with ``-delta`` where
    tokens ``i`` and ``j`` differ in modality and 0 elsewhere.
    """
    modality = np.asarray(modality)
    if delta < 0:
        raise ValueError("delta must be non-negative")
    if modality.ndim == 1:
        cross = modality[:, None] != modality[None, :]
        return np.where(cross, -float(delta), 0.0).astype(np.float32)
    if modality.ndim == 2:
        cross = modality[:, :, None] != modality[:, None, :]
        bias = np.where(cross, -float(delta), 0.0).astype(np.float32)
        return bias[:, None, :, :]
    raise ValueError(f"modality must be 1-D or 2-D, got shape {modality.shape}")


class CalibratedLanguageModel(Module):
    """Frozen backbone + calibrated attention + last-token extraction.

    Parameters
    ----------
    backbone:
        A (pretrained) :class:`TransformerLM`.  It is frozen on
        construction: the CLM is only ever used as a feature extractor
        (paper Figure 3 marks it with the snowflake).
    delta:
        Calibration penalty applied to cross-modality attention scores.
    pooling:
        ``"last"`` (paper: last-token extractor) or ``"mean"`` (ablation:
        average over all token states).

    Calling the model with a batched :class:`TokenizedPrompt` of shape
    ``(N, S)`` returns pooled embeddings ``(N, D)``.

    The prompt templates produce only a handful of distinct modality
    patterns, so the calibrated bias is cached per pattern instead of
    being rebuilt as a ``(B, 1, S, S)`` block on every call, and rows
    with identical ``(token_ids, modality)`` are encoded once per batch
    and scattered back (the backbone is row-independent, so the result
    is bitwise identical to the duplicated forward).
    """

    #: Bound on the per-instance bias cache; templates yield few
    #: patterns, so this is only a safety valve against degenerate input.
    _BIAS_CACHE_LIMIT = 128

    def __init__(self, backbone: TransformerLM, delta: float = 1.0,
                 pooling: str = "last"):
        super().__init__()
        if pooling not in ("last", "mean"):
            raise ValueError(f"unknown pooling {pooling!r}")
        self.backbone = backbone
        self.backbone.freeze()
        self.delta = float(delta)
        self.pooling = pooling
        #: Number of :meth:`forward` invocations (profiling / tests).
        self.num_forwards = 0
        #: Number of sequences actually run through the backbone after
        #: in-batch deduplication.
        self.num_sequences = 0
        self._bias_cache: dict[tuple[bytes, float], np.ndarray] = {}

    @property
    def dim(self) -> int:
        return self.backbone.config.dim

    # ------------------------------------------------------------------
    # calibrated bias, cached by modality pattern
    # ------------------------------------------------------------------
    def _pattern_bias(self, pattern: np.ndarray) -> np.ndarray:
        """(S, S) bias for one modality row, cached by its bytes."""
        key = (pattern.tobytes(), self.delta)
        bias = self._bias_cache.get(key)
        if bias is None:
            if len(self._bias_cache) >= self._BIAS_CACHE_LIMIT:
                self._bias_cache.clear()
            bias = build_calibrated_bias(pattern, self.delta)
            bias.setflags(write=False)
            self._bias_cache[key] = bias
        return bias

    def _batched_bias(self, modality: np.ndarray) -> np.ndarray | None:
        """Additive bias for a ``(B, S)`` modality batch.

        With one distinct pattern (the common case: every prompt follows
        the same template) this is a shared ``(S, S)`` array that
        broadcasts across batch and heads; only genuinely heterogeneous
        batches pay for a ``(B, 1, S, S)`` gather.
        """
        if self.delta <= 0.0:
            return None
        patterns, inverse = np.unique(modality, axis=0, return_inverse=True)
        if len(patterns) == 1:
            return self._pattern_bias(patterns[0])
        stacked = np.stack([self._pattern_bias(p) for p in patterns])
        return stacked[inverse][:, None, :, :]

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def _encode_hidden(self, token_ids: np.ndarray,
                       modality: np.ndarray) -> Tensor:
        bias = self._batched_bias(modality)
        self.num_sequences += len(token_ids)
        with no_grad():
            return self.backbone(token_ids, extra_bias=bias)

    def forward(self, prompt: TokenizedPrompt) -> Tensor:
        """Encode a batched prompt into last-token embeddings ``(N, D)``.

        Runs under ``no_grad``: the backbone is frozen and its outputs
        are stored as constants for distillation, exactly as the paper's
        embedding storage prescribes.
        """
        self.num_forwards += 1
        token_ids = np.atleast_2d(prompt.token_ids)
        modality = np.atleast_2d(prompt.modality)

        # Deduplicate identical prompts before the backbone forward.
        seq_len = token_ids.shape[1]
        combined = np.concatenate([token_ids, modality], axis=1)
        unique, inverse = np.unique(combined, axis=0, return_inverse=True)
        if len(unique) < len(combined):
            token_ids = np.ascontiguousarray(unique[:, :seq_len])
            modality = np.ascontiguousarray(unique[:, seq_len:])
        else:
            inverse = None

        hidden = self._encode_hidden(token_ids, modality)
        if self.pooling == "mean":
            pooled = hidden.data.mean(axis=1)
        else:
            pooled = hidden.data[:, -1, :]
        if inverse is not None:
            pooled = pooled[inverse]
        return Tensor(pooled)

    def hidden_states(self, prompt: TokenizedPrompt) -> Tensor:
        """Full ``(N, S, D)`` hidden states (used in tests/analysis)."""
        token_ids = np.atleast_2d(prompt.token_ids)
        modality = np.atleast_2d(prompt.modality)
        return self._encode_hidden(token_ids, modality).detach()
