"""Calibrated Language Models (CLMs) — paper Section IV-B1.

A CLM is a *frozen* pretrained backbone whose attention scores are
calibrated by modality: cross-modality token pairs (text ↔ numeric value)
receive an additive ``-Delta`` penalty (Eq. 5), suppressing inter-modality
fusion while keeping intra-modality correlations intact.  The wrapper
extracts last-token embeddings, the unit of knowledge the teacher
distills from.
"""

from __future__ import annotations

import numpy as np

from ..nn import Module, Tensor, no_grad
from .backbones import TransformerLM
from .tokenizer import TokenizedPrompt

__all__ = ["build_calibrated_bias", "CalibratedLanguageModel"]


def build_calibrated_bias(modality: np.ndarray, delta: float) -> np.ndarray:
    """Additive attention bias from modality tags (paper Eq. 5).

    Parameters
    ----------
    modality:
        Integer tags, shape ``(S,)`` or ``(B, S)``.
    delta:
        Cross-modality penalty ``Delta >= 0``; 0 recovers the vanilla
        mask (the ``w/o CA`` ablation).

    Returns
    -------
    Bias of shape ``(S, S)`` or ``(B, 1, S, S)`` with ``-delta`` where
    tokens ``i`` and ``j`` differ in modality and 0 elsewhere.
    """
    modality = np.asarray(modality)
    if delta < 0:
        raise ValueError("delta must be non-negative")
    if modality.ndim == 1:
        cross = modality[:, None] != modality[None, :]
        return np.where(cross, -float(delta), 0.0).astype(np.float32)
    if modality.ndim == 2:
        cross = modality[:, :, None] != modality[:, None, :]
        bias = np.where(cross, -float(delta), 0.0).astype(np.float32)
        return bias[:, None, :, :]
    raise ValueError(f"modality must be 1-D or 2-D, got shape {modality.shape}")


class CalibratedLanguageModel(Module):
    """Frozen backbone + calibrated attention + last-token extraction.

    Parameters
    ----------
    backbone:
        A (pretrained) :class:`TransformerLM`.  It is frozen on
        construction: the CLM is only ever used as a feature extractor
        (paper Figure 3 marks it with the snowflake).
    delta:
        Calibration penalty applied to cross-modality attention scores.
    pooling:
        ``"last"`` (paper: last-token extractor) or ``"mean"`` (ablation:
        average over all token states).

    Calling the model with a batched :class:`TokenizedPrompt` of shape
    ``(N, S)`` returns pooled embeddings ``(N, D)``.
    """

    def __init__(self, backbone: TransformerLM, delta: float = 1.0,
                 pooling: str = "last"):
        super().__init__()
        if pooling not in ("last", "mean"):
            raise ValueError(f"unknown pooling {pooling!r}")
        self.backbone = backbone
        self.backbone.freeze()
        self.delta = float(delta)
        self.pooling = pooling

    @property
    def dim(self) -> int:
        return self.backbone.config.dim

    def forward(self, prompt: TokenizedPrompt) -> Tensor:
        """Encode a batched prompt into last-token embeddings ``(N, D)``.

        Runs under ``no_grad``: the backbone is frozen and its outputs
        are stored as constants for distillation, exactly as the paper's
        embedding storage prescribes.
        """
        token_ids = np.atleast_2d(prompt.token_ids)
        modality = np.atleast_2d(prompt.modality)
        bias = (
            build_calibrated_bias(modality, self.delta)
            if self.delta > 0.0
            else None
        )
        with no_grad():
            hidden = self.backbone(token_ids, extra_bias=bias)
            if self.pooling == "mean":
                pooled = hidden.mean(axis=1)
            else:
                pooled = hidden[:, -1, :]
        return pooled.detach()

    def hidden_states(self, prompt: TokenizedPrompt) -> Tensor:
        """Full ``(N, S, D)`` hidden states (used in tests/analysis)."""
        token_ids = np.atleast_2d(prompt.token_ids)
        modality = np.atleast_2d(prompt.modality)
        bias = (
            build_calibrated_bias(modality, self.delta)
            if self.delta > 0.0
            else None
        )
        with no_grad():
            hidden = self.backbone(token_ids, extra_bias=bias)
        return hidden.detach()
