"""From-scratch language-model backbones.

Three families stand in for the paper's HF checkpoints (Table III):

* ``bert-tiny``  — bidirectional, LayerNorm + GELU, learned positions;
* ``gpt2-tiny``  — causal, LayerNorm + GELU, learned positions;
* ``llama-tiny`` — causal, RMSNorm + SwiGLU + rotary positions.

They share :class:`TransformerLM`, which exposes hidden states for the
calibrated-language-model wrapper and tied-embedding logits for
pretraining.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..nn import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    PositionalEncoding,
    RMSNorm,
    Tensor,
)
from ..nn.attention import causal_mask
from ..nn.functional import gelu, silu
from ..nn import stack as tensor_stack

__all__ = ["LMConfig", "TransformerLM", "RotaryMultiHeadAttention"]


@dataclass(frozen=True)
class LMConfig:
    """Hyperparameters of a :class:`TransformerLM` backbone."""

    name: str
    vocab_size: int
    dim: int
    num_layers: int
    num_heads: int
    ffn_dim: int
    max_length: int = 512
    causal: bool = True
    norm: str = "layer"  # "layer" | "rms"
    activation: str = "gelu"  # "gelu" | "swiglu"
    positions: str = "learned"  # "learned" | "rope"
    dropout: float = 0.0


def _make_norm(kind: str, dim: int) -> Module:
    if kind == "layer":
        return LayerNorm(dim)
    if kind == "rms":
        return RMSNorm(dim)
    raise ValueError(f"unknown norm kind {kind!r}")


class RotaryMultiHeadAttention(Module):
    """Multi-head attention with rotary position embeddings (RoPE).

    Equivalent to :class:`repro.nn.MultiHeadAttention` but rotates the
    query/key head vectors by position-dependent angles, as in LLaMA.
    """

    def __init__(self, dim: int, num_heads: int, max_length: int = 512):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError("dim must divide num_heads")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        if self.head_dim % 2 != 0:
            raise ValueError("head_dim must be even for RoPE")
        self.q_proj = Linear(dim, dim)
        self.k_proj = Linear(dim, dim)
        self.v_proj = Linear(dim, dim)
        self.out_proj = Linear(dim, dim)
        self.store_attention = False
        self.last_attention: np.ndarray | None = None
        self._cos, self._sin = _rope_tables(max_length, self.head_dim)

    def _split(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _rotate(self, x: Tensor) -> Tensor:
        """Apply RoPE over the last axis of ``(B, H, S, Dh)``."""
        seq = x.shape[2]
        cos = Tensor(self._cos[:seq])
        sin = Tensor(self._sin[:seq])
        even = x[..., 0::2]
        odd = x[..., 1::2]
        rotated_even = even * cos - odd * sin
        rotated_odd = even * sin + odd * cos
        merged = tensor_stack([rotated_even, rotated_odd], axis=-1)
        batch, heads, seq, half, _ = merged.shape
        return merged.reshape(batch, heads, seq, half * 2)

    def forward(self, x: Tensor, attn_bias: np.ndarray | None = None) -> Tensor:
        q = self._rotate(self._split(self.q_proj(x)))
        k = self._rotate(self._split(self.k_proj(x)))
        v = self._split(self.v_proj(x))
        scores = q.matmul(k.swapaxes(-1, -2)) * (1.0 / math.sqrt(self.head_dim))
        if attn_bias is not None:
            scores = scores + Tensor(np.asarray(attn_bias, dtype=np.float32))
        weights = scores.softmax(axis=-1)
        if self.store_attention:
            self.last_attention = weights.data.mean(axis=1)
        context = weights.matmul(v).transpose(0, 2, 1, 3)
        batch, seq, heads, head_dim = context.shape
        context = context.reshape(batch, seq, heads * head_dim)
        return self.out_proj(context)


def _rope_tables(max_length: int, head_dim: int) -> tuple[np.ndarray, np.ndarray]:
    half = head_dim // 2
    freqs = 1.0 / (10000.0 ** (np.arange(half) / half))
    angles = np.outer(np.arange(max_length), freqs)
    return (
        np.cos(angles).astype(np.float32),
        np.sin(angles).astype(np.float32),
    )


class _SwiGLU(Module):
    """LLaMA-style gated feed-forward: ``W2(silu(W1 x) * W3 x)``."""

    def __init__(self, dim: int, hidden: int):
        super().__init__()
        self.gate = Linear(dim, hidden, bias=False)
        self.up = Linear(dim, hidden, bias=False)
        self.down = Linear(hidden, dim, bias=False)

    def forward(self, x: Tensor) -> Tensor:
        return self.down(silu(self.gate(x)) * self.up(x))


class _GELUFFN(Module):
    """GPT-2 / BERT feed-forward."""

    def __init__(self, dim: int, hidden: int):
        super().__init__()
        self.fc1 = Linear(dim, hidden)
        self.fc2 = Linear(hidden, dim)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(gelu(self.fc1(x)))


class _LMBlock(Module):
    """One pre-norm transformer block of a backbone."""

    def __init__(self, config: LMConfig):
        super().__init__()
        from ..nn.attention import MultiHeadAttention  # local to avoid cycle

        self.norm1 = _make_norm(config.norm, config.dim)
        if config.positions == "rope":
            self.attention = RotaryMultiHeadAttention(
                config.dim, config.num_heads, max_length=config.max_length)
        else:
            self.attention = MultiHeadAttention(config.dim, config.num_heads)
        self.norm2 = _make_norm(config.norm, config.dim)
        if config.activation == "swiglu":
            self.ffn = _SwiGLU(config.dim, config.ffn_dim)
        else:
            self.ffn = _GELUFFN(config.dim, config.ffn_dim)
        self.dropout = Dropout(config.dropout)

    def forward(self, x: Tensor, attn_bias: np.ndarray | None = None) -> Tensor:
        x = x + self.dropout(self.attention(self.norm1(x), attn_bias=attn_bias))
        x = x + self.dropout(self.ffn(self.norm2(x)))
        return x


class TransformerLM(Module):
    """A small decoder(-or-encoder) language model.

    Parameters
    ----------
    config:
        Architecture description; see :class:`LMConfig`.

    The model exposes:

    * :meth:`forward` — contextual hidden states ``(B, S, D)`` with an
      optional *extra* additive attention bias (the calibrated-attention
      hook, paper Eq. 3-5);
    * :meth:`logits` — tied-embedding next-token scores for pretraining.
    """

    def __init__(self, config: LMConfig):
        super().__init__()
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.dim)
        if config.positions == "learned":
            self.positional = PositionalEncoding(config.max_length, config.dim)
        else:
            self.positional = None
        self.blocks = ModuleList([_LMBlock(config) for _ in range(config.num_layers)])
        self.final_norm = _make_norm(config.norm, config.dim)

    def _attention_bias(
        self, seq_len: int, extra_bias: np.ndarray | None
    ) -> np.ndarray | None:
        bias = None
        if self.config.causal:
            bias = causal_mask(seq_len)
        if extra_bias is not None:
            extra = np.asarray(extra_bias, dtype=np.float32)
            bias = extra if bias is None else bias + extra
        return bias

    def forward(
        self, token_ids: np.ndarray, extra_bias: np.ndarray | None = None
    ) -> Tensor:
        """Encode ``(B, S)`` token ids into ``(B, S, D)`` hidden states.

        ``extra_bias`` is added to the pre-softmax attention scores of
        every layer and must broadcast to ``(B, heads, S, S)``; TimeKD
        passes the calibrated modality mask here.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        x = self.token_embedding(token_ids)
        if self.positional is not None:
            x = self.positional(x)
        bias = self._attention_bias(token_ids.shape[1], extra_bias)
        for block in self.blocks:
            x = block(x, attn_bias=bias)
        return self.final_norm(x)

    def logits(
        self, token_ids: np.ndarray, extra_bias: np.ndarray | None = None
    ) -> Tensor:
        """Next-token logits with weights tied to the input embedding."""
        hidden = self.forward(token_ids, extra_bias=extra_bias)
        return hidden.matmul(self.token_embedding.weight.T)

    def last_token_state(
        self, token_ids: np.ndarray, extra_bias: np.ndarray | None = None
    ) -> Tensor:
        """Hidden state of the final position of each sequence, ``(B, D)``.

        The paper's last-token extractor: under causal masking the final
        token summarizes the whole prompt.
        """
        hidden = self.forward(token_ids, extra_bias=extra_bias)
        return hidden[:, -1, :]
