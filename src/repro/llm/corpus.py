"""Synthetic pretraining corpus for the backbone language models.

The paper relies on LLM checkpoints pretrained on web text.  Offline, we
pretrain the tiny backbones on a *numeric-narration corpus*: millions of
tokens of the same prompt template family the teacher will consume, with
values drawn from seasonal autoregressive processes.  This gives the
backbone genuine next-token structure over both the English template and
the quantized value sub-language (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .tokenizer import PromptTokenizer
from .vocab import Vocabulary

__all__ = ["CorpusConfig", "NarrationCorpus"]


@dataclass(frozen=True)
class CorpusConfig:
    """Sampling parameters for :class:`NarrationCorpus`."""

    history_length: int = 24
    horizon: int = 12
    ar_coefficient: float = 0.8
    season_period: int = 12
    noise_scale: float = 0.3
    seed: int = 1234


@dataclass
class NarrationCorpus:
    """Stream of tokenized ground-truth prompts over synthetic series."""

    vocab: Vocabulary = field(default_factory=Vocabulary)
    config: CorpusConfig = field(default_factory=CorpusConfig)

    def __post_init__(self):
        self._rng = np.random.default_rng(self.config.seed)
        self._tokenizer = PromptTokenizer(vocab=self.vocab)

    def _sample_series(self, length: int) -> np.ndarray:
        """One standardized seasonal AR(1) path of ``length`` steps."""
        cfg = self.config
        phase = self._rng.uniform(0, 2 * np.pi)
        amplitude = self._rng.uniform(0.5, 2.0)
        t = np.arange(length)
        seasonal = amplitude * np.sin(2 * np.pi * t / cfg.season_period + phase)
        noise = self._rng.normal(scale=cfg.noise_scale, size=length)
        ar = np.zeros(length)
        for i in range(1, length):
            ar[i] = cfg.ar_coefficient * ar[i - 1] + noise[i]
        series = seasonal + ar
        std = series.std() or 1.0
        return (series - series.mean()) / std

    def sample_sequence(self) -> np.ndarray:
        """One tokenized prompt (ids) for next-token pretraining."""
        cfg = self.config
        series = self._sample_series(cfg.history_length + cfg.horizon)
        history = series[: cfg.history_length]
        future = series[cfg.history_length:]
        prompt = self._tokenizer.ground_truth_prompt(history, future)
        return prompt.token_ids

    def batch(self, batch_size: int) -> tuple[np.ndarray, np.ndarray]:
        """A padded ``(inputs, targets)`` next-token batch.

        Targets are inputs shifted left by one; padding positions carry
        ``-1`` and are ignored by the cross-entropy loss.
        """
        sequences = [self.sample_sequence() for _ in range(batch_size)]
        max_len = max(len(s) for s in sequences)
        inputs = np.full((batch_size, max_len), self.vocab.pad_id, dtype=np.int64)
        targets = np.full((batch_size, max_len), -1, dtype=np.int64)
        for i, seq in enumerate(sequences):
            inputs[i, : len(seq)] = seq
            targets[i, : len(seq) - 1] = seq[1:]
        return inputs, targets
