"""``repro.llm`` — the language-model substrate.

Offline stand-in for the paper's HF checkpoints: a modality-tagged prompt
tokenizer, three tiny backbone families (BERT/GPT-2/LLaMA-like), a
synthetic pretraining corpus, and the Calibrated Language Model wrapper
(frozen backbone + cross-modality attention penalty + last-token
extraction).
"""

from .backbones import LMConfig, RotaryMultiHeadAttention, TransformerLM
from .calibrated import CalibratedLanguageModel, build_calibrated_bias
from .corpus import CorpusConfig, NarrationCorpus
from .pretrain import default_cache_dir, get_pretrained, perplexity, pretrain_backbone
from .registry import BACKBONE_CONFIGS, backbone_names, build_backbone
from .tokenizer import PromptTokenizer, TokenizedPrompt
from .vocab import NUMERIC_MODALITY, TEXT_MODALITY, Vocabulary

__all__ = [
    "LMConfig",
    "TransformerLM",
    "RotaryMultiHeadAttention",
    "CalibratedLanguageModel",
    "build_calibrated_bias",
    "CorpusConfig",
    "NarrationCorpus",
    "pretrain_backbone",
    "get_pretrained",
    "perplexity",
    "default_cache_dir",
    "BACKBONE_CONFIGS",
    "build_backbone",
    "backbone_names",
    "PromptTokenizer",
    "TokenizedPrompt",
    "Vocabulary",
    "TEXT_MODALITY",
    "NUMERIC_MODALITY",
]
