"""File-backed API-key registry with atomic writes and hot reload.

The key file is plain JSON so operators can manage it with anything::

    {
      "version": 1,
      "keys": {
        "acme-key-1": {"tenant": "acme", "units": 10000,
                       "rate": 50.0, "burst": 100}
      }
    }

``units`` is the tenant's issued request-unit pool (see
:mod:`repro.gateway.meter`), ``rate``/``burst`` its token-bucket shape;
all three fall back to the registry's defaults when omitted.  Several
keys may share one tenant (key rotation): they authenticate into the
same account and the same bucket.

Writes go through :func:`write_keys_file` → ``repro.persist`` atomic
replacement, so the gateway can never observe a torn key file.  Reads
hot-reload: every :meth:`ApiKeyRegistry.authenticate` stats the file
and re-parses when the mtime moved, which is how operators add keys or
raise quotas on a live gateway.  A file that momentarily fails to parse
keeps the previous key set — a bad edit must not lock every tenant out.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass

from ..persist import atomic_write_json

__all__ = [
    "KEYS_FORMAT_VERSION",
    "ApiKeyRegistry",
    "KeyFileError",
    "TenantKey",
    "write_keys_file",
]

KEYS_FORMAT_VERSION = 1

#: Registry-level fallbacks for per-key knobs left unset in the file.
DEFAULT_UNITS = 10_000
DEFAULT_RATE = 100.0
DEFAULT_BURST = 200.0


class KeyFileError(ValueError):
    """The key file is missing, malformed, or structurally invalid."""


@dataclass(frozen=True)
class TenantKey:
    """One resolved API key: who it is and what it may consume."""

    key: str
    tenant: str
    units: int
    rate: float
    burst: float


def _parse_keys(payload: dict, path: str, *, default_units: int,
                default_rate: float, default_burst: float) -> dict:
    if not isinstance(payload, dict):
        raise KeyFileError(f"{path!r} must hold a JSON object")
    version = payload.get("version")
    if version != KEYS_FORMAT_VERSION:
        raise KeyFileError(
            f"{path!r} has key-file version {version!r}, this build "
            f"reads version {KEYS_FORMAT_VERSION}")
    entries = payload.get("keys")
    if not isinstance(entries, dict):
        raise KeyFileError(f"{path!r} is missing its 'keys' object")
    keys: dict[str, TenantKey] = {}
    for key, entry in entries.items():
        if not isinstance(entry, dict) or "tenant" not in entry:
            raise KeyFileError(
                f"key {key!r} in {path!r} must map to an object with "
                f"at least a 'tenant' field")
        tenant = str(entry["tenant"])
        units = int(entry.get("units", default_units))
        rate = float(entry.get("rate", default_rate))
        burst = float(entry.get("burst", default_burst))
        if units < 0:
            raise KeyFileError(f"key {key!r}: units must be >= 0")
        if rate <= 0 or burst <= 0:
            raise KeyFileError(f"key {key!r}: rate/burst must be > 0")
        keys[str(key)] = TenantKey(str(key), tenant, units, rate, burst)
    return keys


def write_keys_file(path: str, keys: dict[str, dict]) -> None:
    """Atomically publish a key file mapping ``api key -> entry dict``.

    Each entry needs ``tenant`` and may carry ``units``/``rate``/
    ``burst``.  Validates by round-tripping through the parser first,
    so a typo fails here instead of on a live gateway.
    """
    payload = {"version": KEYS_FORMAT_VERSION, "keys": keys}
    _parse_keys(payload, path, default_units=DEFAULT_UNITS,
                default_rate=DEFAULT_RATE, default_burst=DEFAULT_BURST)
    atomic_write_json(path, payload)


class ApiKeyRegistry:
    """Hot-reloadable ``api key -> TenantKey`` lookups over one file.

    Parameters
    ----------
    path:
        The JSON key file; must exist and parse at construction (a
        gateway with zero valid keys is a misconfiguration, not a
        service).
    default_units / default_rate / default_burst:
        Fallbacks for per-key knobs the file omits — the CLI's
        ``--quota`` flag lands in ``default_units``.
    """

    def __init__(self, path: str, *, default_units: int = DEFAULT_UNITS,
                 default_rate: float = DEFAULT_RATE,
                 default_burst: float = DEFAULT_BURST):
        self.path = path
        self.default_units = int(default_units)
        self.default_rate = float(default_rate)
        self.default_burst = float(default_burst)
        self._lock = threading.Lock()
        self._keys: dict[str, TenantKey] = {}  # guarded-by: _lock
        self._mtime_ns: int | None = None  # guarded-by: _lock
        self._load(initial=True)

    # (the __init__ call precedes publication — no other thread yet)
    def _load(self, initial: bool = False) -> None:  # requires-lock: _lock
        try:
            stat = os.stat(self.path)
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            keys = _parse_keys(
                payload, self.path, default_units=self.default_units,
                default_rate=self.default_rate,
                default_burst=self.default_burst)
        except (OSError, ValueError) as error:
            if initial:
                raise KeyFileError(
                    f"cannot read key file {self.path!r}: {error}"
                ) from error
            return  # keep serving the previous key set
        self._keys = keys
        self._mtime_ns = stat.st_mtime_ns

    def maybe_reload(self) -> bool:
        """Re-parse the file when its mtime moved; True on a reload."""
        with self._lock:
            try:
                mtime_ns = os.stat(self.path).st_mtime_ns
            except OSError:
                return False  # deleted out from under us: keep keys
            if mtime_ns == self._mtime_ns:
                return False
            self._load()
            return True

    def authenticate(self, key: str | None) -> TenantKey | None:
        """Resolve an API key to its tenant (``None`` = unauthorized)."""
        if not key:
            return None
        self.maybe_reload()
        with self._lock:
            return self._keys.get(key)

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._keys)

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted({entry.tenant for entry in self._keys.values()})
