"""Saturation-aware admission control over the micro-batch queue.

The serving layers behind the gateway are pull-based: requests queue in
:class:`~repro.serve.service.ForecastService` until the drain loop
batches them.  Nothing in that design bounds the queue — a client fleet
faster than the drain would grow it without limit, trading memory and
tail latency for nothing.  :class:`AdmissionController` closes that
hole at the front door: before any work is enqueued it reads the
service's live ``(queue_depth, in_flight)`` gauges (one consistent
``pressure()`` sample) and sheds the request with ``503 Retry-After``
when the committed load plus the request's own cost would exceed the
configured bound.  Shedding happens *before* quota is spent and before
the queue is touched, so a saturated gateway degrades into fast, cheap
rejections instead of unbounded queue growth.
"""

from __future__ import annotations

__all__ = ["AdmissionController", "SaturationError"]


class SaturationError(Exception):
    """The serving queue cannot absorb this request right now."""

    def __init__(self, load: int, limit: int, retry_after: float):
        self.load = int(load)
        self.limit = int(limit)
        self.retry_after = float(retry_after)
        super().__init__(
            f"serving queue saturated: {load} request(s) committed "
            f"against a bound of {limit}")


class AdmissionController:
    """Admit or shed requests based on live service pressure.

    Parameters
    ----------
    service:
        Anything exposing ``pressure() -> (queue_depth, in_flight)`` —
        a :class:`~repro.serve.service.ForecastService` or a
        :class:`~repro.shard.router.ShardRouter`.
    max_pending:
        Bound on ``queue_depth + in_flight + cost``.  This is the
        gateway's memory/latency budget: with a drain that coalesces up
        to ``max_batch`` windows per forward, ``max_pending`` caps the
        worst-case wait at roughly ``max_pending / max_batch`` forwards.
    retry_after:
        Hint returned to shed clients.  A constant is honest here — the
        drain rate is workload-dependent and a precise estimate would
        synchronize retries into a thundering herd; jittering around a
        small constant is the client's job.

    The controller itself is stateless apart from counters: admission
    is a pure read of the service gauges, so concurrent handlers can
    call :meth:`admit` without extra locking (the worst case is a
    transiently over-admitted request the bound absorbs).
    """

    def __init__(self, service, max_pending: int = 256,
                 retry_after: float = 1.0):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if retry_after <= 0:
            raise ValueError("retry_after must be positive seconds")
        self.service = service
        self.max_pending = int(max_pending)
        self.retry_after = float(retry_after)

    def load(self) -> int:
        """Current committed load (queued + in-flight requests)."""
        depth, flight = self.service.pressure()
        return depth + flight

    def admit(self, cost: int = 1) -> None:
        """Raise :class:`SaturationError` unless ``cost`` more requests
        fit under the bound.  Touches no state on either outcome."""
        load = self.load()
        if load + int(cost) > self.max_pending:
            raise SaturationError(load, self.max_pending, self.retry_after)

    def headroom(self) -> int:
        """Requests that could be admitted right now (>= 0)."""
        return max(0, self.max_pending - self.load())
