"""Multi-tenant HTTP serving layer: metering, quotas, admission control.

The gateway is the outermost ring of the serving stack::

    HTTP (server) -> policy (app) -> micro-batch queue (repro.serve)
                                  -> streaming ingest  (repro.stream)
                                  -> shards            (repro.shard)

It adds the *operational* contract the inner layers deliberately do
not: who may call (:mod:`~repro.gateway.auth`), how much they may
spend (:mod:`~repro.gateway.meter`), and when the service refuses work
to protect itself (:mod:`~repro.gateway.admission`).  Forecasts
returned over HTTP are bitwise identical to in-process
``ForecastService.predict`` — the gateway routes and accounts, it
never computes.

Everything is stdlib + the existing stack; there is no web framework
to install, which keeps the reproduction runnable anywhere the paper
code runs.
"""

from .admission import AdmissionController, SaturationError
from .app import Gateway, GatewayStats, Response
from .auth import (
    KEYS_FORMAT_VERSION,
    ApiKeyRegistry,
    KeyFileError,
    TenantKey,
    write_keys_file,
)
from .meter import (
    INGEST_UNITS,
    PREDICT_UNITS,
    Meter,
    QuotaError,
    TenantAccount,
    TokenBucket,
    UnitReservation,
)
from .server import MAX_BODY_BYTES, GatewayServer

__all__ = [
    "INGEST_UNITS",
    "KEYS_FORMAT_VERSION",
    "MAX_BODY_BYTES",
    "PREDICT_UNITS",
    "AdmissionController",
    "ApiKeyRegistry",
    "Gateway",
    "GatewayServer",
    "GatewayStats",
    "KeyFileError",
    "Meter",
    "QuotaError",
    "Response",
    "SaturationError",
    "TenantAccount",
    "TokenBucket",
    "UnitReservation",
    "write_keys_file",
]
