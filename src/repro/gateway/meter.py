"""Per-tenant request-unit accounting and token-bucket rate limiting.

The metering model follows the pass-group spending discipline of
ZKAPAuthorizer's ``spending.py``: a tenant is *issued* a pool of
request units, and every priced operation first carves a
:class:`UnitReservation` out of the pool (units move from *remaining*
to *reserved*), then either **commits** it (units become *spent*,
irrevocably) or **releases** it (units return to *remaining*, as if
never touched).  Reservations can be **split** — bulk ingest commits
exactly the ticks that were accepted and releases the rest — and pools
can be **expanded** when an operator raises a tenant's quota in the key
file (hot reload picks it up).

The invariant the whole gateway leans on, checked by the hypothesis
stateful suite::

    issued == spent + reserved + remaining        (always)

and, because a rejected request only ever reserves-then-releases, a
``429``/``503`` response can never move a unit into ``spent`` — shed
load is free for the tenant.

Prices are deliberately coarse: a forecast costs
:data:`PREDICT_UNITS` (it runs a student forward), an ingested tick
costs :data:`INGEST_UNITS` (it touches a ring buffer; cadence-triggered
re-forecasts ride on the ingest price, matching how the streaming layer
amortizes them through the micro-batch queue).
"""

from __future__ import annotations

import threading
import time

__all__ = [
    "INGEST_UNITS",
    "PREDICT_UNITS",
    "Meter",
    "QuotaError",
    "TenantAccount",
    "TokenBucket",
    "UnitReservation",
]

#: Units one forecast (``POST /v1/predict``) costs.
PREDICT_UNITS = 4

#: Units one ingested tick (``POST /v1/ingest``, per row) costs.
INGEST_UNITS = 1


class QuotaError(Exception):
    """A reservation would overdraw the tenant's unit pool."""

    def __init__(self, tenant: str, requested: int, remaining: int):
        self.tenant = tenant
        self.requested = int(requested)
        self.remaining = int(remaining)
        super().__init__(
            f"tenant {tenant!r} requested {requested} unit(s) with only "
            f"{remaining} remaining")


class UnitReservation:
    """Units carved out of a tenant pool, pending commit or release.

    A reservation is single-shot: after :meth:`commit` or
    :meth:`release` it is empty and further calls are no-ops, so the
    request handlers' ``finally`` blocks can release unconditionally.
    """

    __slots__ = ("account", "units", "kind")

    def __init__(self, account: "TenantAccount", units: int, kind: str):
        self.account = account
        self.units = int(units)
        self.kind = kind

    def split(self, units: int) -> tuple["UnitReservation", "UnitReservation"]:
        """Divide into ``(first, rest)`` reservations of ``units`` and
        the remainder — the pass-group ``split`` idiom, used by bulk
        ingest to commit accepted ticks and release the rejected tail.
        """
        units = int(units)
        if not 0 <= units <= self.units:
            raise ValueError(
                f"cannot split {units} unit(s) out of a reservation "
                f"holding {self.units}")
        rest = UnitReservation(self.account, self.units - units, self.kind)
        self.units = units
        return self, rest

    def commit(self) -> None:
        """Mark the reserved units spent (the work happened)."""
        self.account._settle(self, spend=True)

    def release(self) -> None:
        """Return the reserved units untouched (the work was shed)."""
        self.account._settle(self, spend=False)


class TenantAccount:
    """One tenant's unit pool: issued / spent / reserved (+ breakdown).

    All mutation goes through the owning :class:`Meter`'s lock, so the
    conservation invariant holds under concurrent HTTP handlers.
    """

    def __init__(self, tenant: str, issued: int, lock: threading.Lock):
        if issued < 0:
            raise ValueError("issued units must be >= 0")
        self.tenant = tenant
        self.issued = int(issued)  # guarded-by: _lock
        self.spent = 0  # guarded-by: _lock
        self.reserved = 0  # guarded-by: _lock
        #: Spent units broken down by operation kind (predict/ingest).
        self.spent_by: dict[str, int] = {}  # guarded-by: _lock
        #: Committed operation counts by kind.
        self.ops_by: dict[str, int] = {}  # guarded-by: _lock
        self._lock = lock

    @property
    def remaining(self) -> int:  # requires-lock: _lock
        return self.issued - self.spent - self.reserved

    def reserve(self, units: int, kind: str = "predict") -> UnitReservation:
        """Move ``units`` from remaining to reserved, atomically.

        Raises :class:`QuotaError` (and changes nothing) when the pool
        cannot cover the request — the 429 path is read-only.
        """
        units = int(units)
        if units < 0:
            raise ValueError("cannot reserve a negative unit count")
        with self._lock:
            if units > self.remaining:
                raise QuotaError(self.tenant, units, self.remaining)
            self.reserved += units
            return UnitReservation(self, units, kind)

    def expand(self, issued: int) -> None:
        """Grow the pool to ``issued`` units (never shrinks).

        Called when a hot-reloaded key file raises a tenant's quota;
        lowering a live pool below what is already spent would break
        conservation, so shrinks are ignored.
        """
        with self._lock:
            if int(issued) > self.issued:
                self.issued = int(issued)

    def _settle(self, reservation: UnitReservation, spend: bool) -> None:
        with self._lock:
            units, reservation.units = reservation.units, 0
            if units == 0:
                return
            self.reserved -= units
            if spend:
                self.spent += units
                kind = reservation.kind
                self.spent_by[kind] = self.spent_by.get(kind, 0) + units
                self.ops_by[kind] = self.ops_by.get(kind, 0) + 1

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "tenant": self.tenant,
                "issued": self.issued,
                "spent": self.spent,
                "reserved": self.reserved,
                "remaining": self.remaining,
                "spent_by": dict(self.spent_by),
                "ops_by": dict(self.ops_by),
            }


class Meter:
    """Registry of per-tenant :class:`TenantAccount` pools.

    Accounts are created lazily on first touch with the issued size the
    caller supplies (normally the key registry's per-tenant quota).
    ``export_state``/``import_state`` round-trip the durable fields so
    metering survives a gateway restart (reservations are transient by
    construction — a restart sheds them, which is exactly a release).
    """

    def __init__(self, default_units: int = 0):
        if default_units < 0:
            raise ValueError("default_units must be >= 0")
        self.default_units = int(default_units)
        self._accounts: dict[str, TenantAccount] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def account(self, tenant: str,
                issued: int | None = None) -> TenantAccount:
        """The tenant's account, created (or expanded) to ``issued``."""
        with self._lock:
            found = self._accounts.get(tenant)
            if found is None:
                found = TenantAccount(
                    tenant,
                    self.default_units if issued is None else issued,
                    self._lock)
                self._accounts[tenant] = found
        if issued is not None:
            found.expand(issued)
        return found

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._accounts)

    def usage(self) -> dict[str, dict]:
        """Per-tenant usage views (each taken atomically)."""
        with self._lock:
            accounts = list(self._accounts.values())
        return {account.tenant: account.as_dict() for account in accounts}

    # ------------------------------------------------------------------
    # durable usage
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """JSON-serializable usage (issued/spent + breakdowns).

        Reserved units are deliberately absent: they describe requests
        in flight in *this* process, and a restart resolves them as
        released.
        """
        return {"version": 1, "tenants": {
            tenant: {k: usage[k]
                     for k in ("issued", "spent", "spent_by", "ops_by")}
            for tenant, usage in self.usage().items()}}

    def import_state(self, payload: dict) -> None:
        """Fold exported usage back in (idempotent per tenant).

        Spent units and breakdowns are *added* to whatever this process
        already accounted (normally nothing — the gateway restores
        before serving); issued pools take the maximum, mirroring
        :meth:`TenantAccount.expand`.
        """
        for tenant, entry in dict(payload.get("tenants", {})).items():
            account = self.account(tenant, issued=int(entry["issued"]))
            with self._lock:
                account.spent += int(entry["spent"])
                for kind, units in dict(entry.get("spent_by", {})).items():
                    account.spent_by[kind] = (
                        account.spent_by.get(kind, 0) + int(units))
                for kind, count in dict(entry.get("ops_by", {})).items():
                    account.ops_by[kind] = (
                        account.ops_by.get(kind, 0) + int(count))


class TokenBucket:
    """Classic token bucket: ``rate`` units/second, ``burst`` capacity.

    :meth:`try_acquire` either consumes ``cost`` tokens and returns
    ``0.0``, or consumes *nothing* and returns the seconds until the
    deficit refills — the ``Retry-After`` value for the 429 response.
    A failed acquire never mutates the spendable state, which is what
    lets the stateful tests assert rate-shed requests are side-effect
    free.
    """

    def __init__(self, rate: float, burst: float,
                 clock=time.monotonic):
        if rate <= 0:
            raise ValueError("rate must be positive (units per second)")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst  # guarded-by: _lock
        self._stamp = clock()  # guarded-by: _lock
        self._lock = threading.Lock()

    def _refill(self) -> None:  # requires-lock: _lock
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, cost: float = 1.0) -> float:
        """Returns 0.0 on success, else seconds until ``cost`` fits."""
        cost = float(cost)
        with self._lock:
            self._refill()
            if cost <= self._tokens:
                self._tokens -= cost
                return 0.0
            return (cost - self._tokens) / self.rate

    def available(self) -> float:
        with self._lock:
            self._refill()
            return self._tokens
