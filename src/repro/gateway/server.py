"""Stdlib HTTP transport for the gateway — no framework, no deps.

A :class:`ThreadingHTTPServer` front end over one :class:`Gateway`:
each connection gets a handler thread that parses the request, hands
the decoded JSON to the transport-independent handler on the gateway,
and writes the resulting status / body / ``Retry-After`` back.  All
policy (auth → meter → admission ordering, unit prices, shed
semantics) lives in :mod:`repro.gateway.app`; this module only speaks
HTTP.

Routes::

    GET  /healthz                      liveness + pressure (no auth)
    GET  /v1/stats                     gateway/service/stream counters
    GET  /v1/tenants/{tenant}/usage    own-tenant unit accounting
    POST /v1/predict                   one metered forecast
    POST /v1/ingest                    one tick or a bulk run

Authentication is ``Authorization: Bearer <api-key>`` against the
gateway's hot-reloadable key registry; missing or unknown keys get
``401`` with a ``WWW-Authenticate`` challenge.

Shutdown discipline: ``daemon_threads`` is deliberately **False**, so
``server_close()`` joins every in-flight handler thread.  Combined
with :meth:`Gateway.begin_drain` (new requests shed with 503) this
gives the graceful drain the CLI's signal handler relies on: stop
accepting, finish what was admitted, then snapshot and exit.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .app import Gateway, Response

__all__ = ["GatewayServer", "MAX_BODY_BYTES"]

#: Largest accepted request body.  A (H=512, N=64) float history is
#: ~0.4 MiB of JSON text; 4 MiB leaves generous headroom while keeping
#: a hostile client from ballooning handler memory.
MAX_BODY_BYTES = 4 * 1024 * 1024


class _HTTPServer(ThreadingHTTPServer):
    # Join handler threads in server_close(): the drain path depends on
    # in-flight requests completing before the process snapshots state.
    daemon_threads = False
    allow_reuse_address = True

    def __init__(self, address, handler, gateway: Gateway):
        self.gateway = gateway
        super().__init__(address, handler)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    #: Socket timeout: a stalled client may not pin a handler thread
    #: (and thus block server_close, i.e. the graceful drain) forever.
    timeout = 10.0

    server: _HTTPServer  # typing aid

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 — stdlib name
        pass  # access logging is the deployment's business, not ours

    def _write(self, response: Response) -> None:
        body = json.dumps(response.payload).encode("utf-8")
        self.send_response(response.status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if response.retry_after is not None:
            # RFC 7231 delay-seconds is an integer; round up so a
            # compliant client never retries before the hint.
            self.send_header(
                "Retry-After", str(max(1, math.ceil(response.retry_after))))
        if response.status == 401:
            self.send_header(
                "WWW-Authenticate", 'Bearer realm="repro-gateway"')
        self.end_headers()
        self.wfile.write(body)

    def _authenticate(self):
        header = self.headers.get("Authorization", "")
        key = header[7:].strip() if header.startswith("Bearer ") else None
        tenant_key = self.server.gateway.authenticate(key)
        if tenant_key is None:
            self._write(Response(401, {
                "error": "missing or unknown API key (send "
                         "'Authorization: Bearer <key>')"}))
        return tenant_key

    def _read_json(self):
        length = self.headers.get("Content-Length")
        try:
            length = int(length)
        except (TypeError, ValueError):
            self._write(Response(411, {
                "error": "a Content-Length header is required"}))
            return None
        if length > MAX_BODY_BYTES:
            self._write(Response(413, {
                "error": f"request body exceeds {MAX_BODY_BYTES} bytes"}))
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            self._write(Response(400, {
                "error": "request body is not valid JSON"}))
            return None

    def _dispatch(self, handler) -> None:
        try:
            response = handler()
        except Exception as error:  # noqa: BLE001 — keep serving
            response = Response(500, {"error": str(error)})
        if response is not None:
            self._write(response)

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — stdlib dispatch name
        self._dispatch(self._route_get)

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch(self._route_post)

    def _route_get(self) -> Response | None:
        gateway = self.server.gateway
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            return gateway.health()
        if path == "/v1/stats":
            tenant_key = self._authenticate()
            if tenant_key is None:
                return None
            return gateway.stats_view()
        parts = path.strip("/").split("/")
        if (len(parts) == 4 and parts[0] == "v1"
                and parts[1] == "tenants" and parts[3] == "usage"):
            tenant_key = self._authenticate()
            if tenant_key is None:
                return None
            return gateway.usage(tenant_key, parts[2])
        return Response(404, {"error": f"no route for GET {path}"})

    def _route_post(self) -> Response | None:
        gateway = self.server.gateway
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/v1/predict":
            handler = gateway.predict
        elif path == "/v1/ingest":
            handler = gateway.ingest
        else:
            return Response(404, {"error": f"no route for POST {path}"})
        tenant_key = self._authenticate()
        if tenant_key is None:
            return None
        payload = self._read_json()
        if payload is None:
            return None
        return handler(tenant_key, payload)


class GatewayServer:
    """Lifecycle wrapper: bind, serve (inline or background), drain.

    Parameters
    ----------
    gateway:
        The :class:`Gateway` whose handlers answer requests.
    host / port:
        Bind address.  ``port=0`` asks the kernel for a free port —
        the resolved one is in :attr:`port` (tests depend on this).
    """

    def __init__(self, gateway: Gateway, host: str = "127.0.0.1",
                 port: int = 0):
        self.gateway = gateway
        self._server = _HTTPServer((host, port), _Handler, gateway)
        self.host, self.port = self._server.server_address[:2]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (CLI path)."""
        self._server.serve_forever(poll_interval=0.1)

    def start(self) -> "GatewayServer":
        """Serve on a background thread (test/embedding path)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self.serve_forever, name="gateway-http", daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        """Drain and stop: shed new requests, then join handlers.

        ``begin_drain`` first so requests racing the shutdown get a
        clean 503 instead of a reset connection; ``server_close`` then
        joins the non-daemon handler threads, so when this returns no
        request is mid-flight and the caller may safely snapshot.
        """
        self.gateway.begin_drain()
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "GatewayServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
