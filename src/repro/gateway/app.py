"""Transport-independent gateway core: auth → meter → admit → serve.

:class:`Gateway` owns the multi-tenant resource model and the wiring
into the serving stack; the HTTP layer (:mod:`repro.gateway.server`)
only parses requests and writes responses.  Keeping the policy here
means the tests can drive the exact production decision path twice —
in process for the unit/property suites and over real sockets for the
end-to-end ones — and both see the same state machine.

Every priced endpoint runs the same pipeline, in this order::

    authenticate          -> 401  (handled by the transport)
    drain check           -> 503  (shutting down; nothing touched)
    admission (gauges)    -> 503  Retry-After   [saturation]
    parse + validate      -> 400/404            [no quota for garbage]
    quota reserve         -> 429                [pool untouched on refusal]
    rate bucket           -> 429  Retry-After   [reservation released]
    enqueue + execute     -> 200  (reservation committed)
                          -> 5xx (reservation released)

The ordering is the load-shedding contract: a ``429``/``503`` happens
*before work is enqueued* and leaves tenant state bit-for-bit unchanged
(reserve/release round-trips are free), so a saturated or over-quota
gateway degrades into cheap rejections instead of unbounded queues.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, replace

import numpy as np

from ..persist import atomic_write_json
from ..serve.service import ForecastService
from ..shard.router import ShardRouter
from ..shard.stream import ShardedStreamingForecaster
from ..stream.forecaster import StreamingForecaster
from ..stream.ingest import StreamError
from .admission import AdmissionController, SaturationError
from .auth import ApiKeyRegistry, TenantKey
from .meter import INGEST_UNITS, PREDICT_UNITS, Meter, QuotaError, TokenBucket

__all__ = ["Gateway", "GatewayStats", "Response"]


@dataclass
class GatewayStats:
    """Gateway-level counters (O(1) space, one lock)."""

    requests: int = 0
    predicts: int = 0
    ingest_calls: int = 0
    ingested_ticks: int = 0
    shed_quota: int = 0
    shed_rate: int = 0
    shed_saturated: int = 0
    unauthorized: int = 0
    invalid: int = 0
    errors: int = 0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "predicts": self.predicts,
            "ingest_calls": self.ingest_calls,
            "ingested_ticks": self.ingested_ticks,
            "shed_quota": self.shed_quota,
            "shed_rate": self.shed_rate,
            "shed_saturated": self.shed_saturated,
            "unauthorized": self.unauthorized,
            "invalid": self.invalid,
            "errors": self.errors,
        }


@dataclass
class Response:
    """What a handler decided: status, JSON payload, Retry-After."""

    status: int
    payload: dict
    retry_after: float | None = None


class _Invalid(ValueError):
    """Client-side request problem (status carried along)."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(message)


class Gateway:
    """Multi-tenant front end over a serving backend.

    Parameters
    ----------
    service:
        A :class:`ForecastService` or :class:`ShardRouter`; adopted,
        not owned — the caller's context manager closes it.
    registry:
        The :class:`ApiKeyRegistry` resolving ``Authorization`` keys.
    meter:
        Unit accounting; a fresh :class:`Meter` by default.  Pass a
        restored one to carry usage across a restart.
    cadence / policy / interval / max_gap / raw_values:
        Streaming-forecaster policy for the ingest path, applied
        uniformly to every model key (one policy per gateway keeps the
        durable-config identity checks meaningful).
    max_pending / retry_after:
        Admission bound and shed hint (see
        :class:`~repro.gateway.admission.AdmissionController`).
    predict_units / ingest_units:
        Prices (units per forecast / per ingested tick).
    request_timeout:
        Seconds a predict handler waits on its future before answering
        ``504`` — a backstop; admission should keep waits far shorter.
    """

    def __init__(self, service: ForecastService | ShardRouter,
                 registry: ApiKeyRegistry, *, meter: Meter | None = None,
                 cadence: int = 1, policy: str = "error",
                 interval: float = 1.0, max_gap: int = 16,
                 raw_values: bool = False, max_pending: int = 256,
                 retry_after: float = 1.0,
                 predict_units: int = PREDICT_UNITS,
                 ingest_units: int = INGEST_UNITS,
                 request_timeout: float = 30.0):
        if predict_units < 0 or ingest_units < 0:
            raise ValueError("unit prices must be >= 0")
        if request_timeout <= 0:
            raise ValueError("request_timeout must be positive seconds")
        self.service = service
        self.registry = registry
        self.meter = meter if meter is not None else Meter()
        self.admission = AdmissionController(
            service, max_pending=max_pending, retry_after=retry_after)
        self.stats = GatewayStats()  # guarded-by: _lock
        self.predict_units = int(predict_units)
        self.ingest_units = int(ingest_units)
        self.request_timeout = float(request_timeout)
        self._stream_options = dict(
            cadence=cadence, policy=policy, interval=interval,
            max_gap=max_gap, raw_values=raw_values)
        # guarded-by: _lock
        self._forecasters: dict[tuple[str, int], StreamingForecaster] = {}
        self._buckets: dict[str, TokenBucket] = {}  # guarded-by: _lock
        self._lock = threading.Lock()
        self._draining = False  # guarded-by: _lock

    # ------------------------------------------------------------------
    # auth + shared plumbing
    # ------------------------------------------------------------------
    def authenticate(self, key: str | None) -> TenantKey | None:
        """Resolve an API key; counts the refusals."""
        tenant_key = self.registry.authenticate(key)
        if tenant_key is None:
            with self._lock:
                self.stats.unauthorized += 1
        return tenant_key

    def account_for(self, tenant_key: TenantKey):
        """The tenant's unit pool, expanded to the key's issued size
        (hot-reloaded quota raises land here via ``expand``)."""
        return self.meter.account(tenant_key.tenant,
                                  issued=tenant_key.units)

    def bucket_for(self, tenant_key: TenantKey) -> TokenBucket:
        """The tenant's token bucket (shaped by its first-seen key)."""
        with self._lock:
            bucket = self._buckets.get(tenant_key.tenant)
            if bucket is None:
                bucket = TokenBucket(tenant_key.rate, tenant_key.burst)
                self._buckets[tenant_key.tenant] = bucket
            return bucket

    def forecaster_for(self, dataset: str | None = None,
                       horizon: int | None = None) -> StreamingForecaster:
        """The (lazily created) streaming forecaster for a model key.

        One forecaster per ``(dataset, horizon)`` bundle; all tenants'
        series share it, namespaced by ``(tenant, series)`` stream
        keys.  Raises ``KeyError`` when the registry cannot resolve the
        model (404 at the transport).
        """
        model_key = self.service.resolve_key(dataset, horizon)
        with self._lock:
            forecaster = self._forecasters.get(model_key)
            if forecaster is None:
                if isinstance(self.service, ShardRouter):
                    forecaster = ShardedStreamingForecaster(
                        self.service, dataset=model_key[0],
                        horizon=model_key[1], **self._stream_options)
                else:
                    forecaster = StreamingForecaster(
                        self.service, dataset=model_key[0],
                        horizon=model_key[1], **self._stream_options)
                self._forecasters[model_key] = forecaster
            return forecaster

    def _shed(self, field: str) -> None:
        with self._lock:
            setattr(self.stats, field, getattr(self.stats, field) + 1)

    def _check_open(self) -> Response | None:
        with self._lock:
            self.stats.requests += 1
            if self._draining:
                return Response(503, {"error": "gateway is draining"},
                                retry_after=self.admission.retry_after)
        return None

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def predict(self, tenant_key: TenantKey, payload: dict) -> Response:
        """``POST /v1/predict`` — one priced, metered forecast."""
        refused = self._check_open()
        if refused is not None:
            return refused
        try:
            self.admission.admit()
        except SaturationError as error:
            self._shed("shed_saturated")
            return Response(503, {"error": str(error)},
                            retry_after=error.retry_after)
        try:
            history, dataset, horizon, raw = self._parse_predict(payload)
            model_key = self._resolve(dataset, horizon)
        except _Invalid as error:
            self._shed("invalid")
            return Response(error.status, {"error": str(error)})

        account = self.account_for(tenant_key)
        try:
            reservation = account.reserve(self.predict_units, "predict")
        except QuotaError as error:
            self._shed("shed_quota")
            return Response(429, {"error": str(error),
                                  "remaining": error.remaining},
                            retry_after=self.admission.retry_after)
        retry = self.bucket_for(tenant_key).try_acquire(self.predict_units)
        if retry > 0.0:
            reservation.release()
            self._shed("shed_rate")
            return Response(429, {"error": (
                f"tenant {tenant_key.tenant!r} exceeded its request "
                f"rate")}, retry_after=retry)

        try:
            future = self.service.submit(
                history, dataset=model_key[0], horizon=model_key[1],
                raw_values=raw)
        except ValueError as error:  # shape/scaler contract violations
            reservation.release()
            self._shed("invalid")
            return Response(400, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 — surface as 500
            reservation.release()
            self._shed("errors")
            return Response(500, {"error": str(error)})
        try:
            forecast = future.result(timeout=self.request_timeout)
        except FutureTimeoutError:
            # The window may still be coalesced into a later batch; the
            # work is not provably shed, but billing an answer the
            # client never saw is worse — release.
            reservation.release()
            self._shed("errors")
            return Response(504, {"error": (
                f"forecast did not complete within "
                f"{self.request_timeout}s")})
        except Exception as error:  # noqa: BLE001
            reservation.release()
            self._shed("errors")
            return Response(500, {"error": str(error)})
        reservation.commit()
        with self._lock:
            self.stats.predicts += 1
        return Response(200, {
            "dataset": model_key[0],
            "horizon": model_key[1],
            "forecast": np.asarray(forecast).tolist(),
            "units": {"spent": self.predict_units,
                      "remaining": account.remaining},
        })

    def ingest(self, tenant_key: TenantKey, payload: dict) -> Response:
        """``POST /v1/ingest`` — one tick or a bulk run, priced per row."""
        refused = self._check_open()
        if refused is not None:
            return refused
        try:
            # At most one cadence forecast can be triggered per append,
            # whatever the run length — that is the enqueue the gauges
            # must cover.
            self.admission.admit()
        except SaturationError as error:
            self._shed("shed_saturated")
            return Response(503, {"error": str(error)},
                            retry_after=error.retry_after)
        try:
            series, timestamp, values, dataset, horizon, wait = \
                self._parse_ingest(payload)
            forecaster = self._forecaster(dataset, horizon)
        except _Invalid as error:
            self._shed("invalid")
            return Response(error.status, {"error": str(error)})

        rows = 1 if values.ndim == 1 else len(values)
        cost = self.ingest_units * rows
        account = self.account_for(tenant_key)
        try:
            reservation = account.reserve(cost, "ingest")
        except QuotaError as error:
            self._shed("shed_quota")
            return Response(429, {"error": str(error),
                                  "remaining": error.remaining},
                            retry_after=self.admission.retry_after)
        retry = self.bucket_for(tenant_key).try_acquire(cost)
        if retry > 0.0:
            reservation.release()
            self._shed("shed_rate")
            return Response(429, {"error": (
                f"tenant {tenant_key.tenant!r} exceeded its request "
                f"rate")}, retry_after=retry)

        key = (tenant_key.tenant, series)
        try:
            future = forecaster.append(key, timestamp, values)
        except StreamError as error:
            # append is transactional: it raises before touching the
            # ring, so nothing was ingested and nothing is owed.
            reservation.release()
            self._shed("invalid")
            return Response(400, {"error": str(error)})
        except Exception as error:  # noqa: BLE001
            reservation.release()
            self._shed("errors")
            return Response(500, {"error": str(error)})
        # Commit exactly what was accepted (the whole run — append is
        # all-or-nothing) via the split idiom, release any remainder.
        accepted, remainder = reservation.split(self.ingest_units * rows)
        accepted.commit()
        remainder.release()
        with self._lock:
            self.stats.ingest_calls += 1
            self.stats.ingested_ticks += rows
        state = forecaster.state(key)
        body = {
            "series": series,
            "accepted": rows,
            "count": int(state.count),
            "ready": bool(state.ready),
            "forecast_triggered": future is not None,
            "units": {"spent": cost, "remaining": account.remaining},
        }
        if wait and future is not None:
            try:
                body["forecast"] = np.asarray(
                    future.result(timeout=self.request_timeout)).tolist()
            except Exception as error:  # noqa: BLE001 — ticks landed
                body["forecast_error"] = str(error)
        return Response(200, body)

    def usage(self, tenant_key: TenantKey, tenant: str) -> Response:
        """``GET /v1/tenants/{tenant}/usage`` — own-tenant only."""
        refused = self._check_open()
        if refused is not None:
            return refused
        if tenant != tenant_key.tenant:
            self._shed("invalid")
            return Response(403, {"error": (
                f"key for tenant {tenant_key.tenant!r} cannot read "
                f"usage of {tenant!r}")})
        return Response(200, self.account_for(tenant_key).as_dict())

    def stats_view(self) -> Response:
        """``GET /v1/stats`` — gateway + service + stream counters."""
        refused = self._check_open()
        if refused is not None:
            return refused
        return Response(200, self.snapshot())

    def health(self) -> Response:
        """``GET /healthz`` — unauthenticated liveness + pressure."""
        depth, flight = self.service.pressure()
        with self._lock:
            draining = self._draining
        payload = {
            "status": "draining" if draining else "ok",
            "queue_depth": depth,
            "in_flight": flight,
            "headroom": self.admission.headroom(),
            "models": len(self.service.keys()),
        }
        return Response(503 if draining else 200, payload)

    # ------------------------------------------------------------------
    # parsing
    # ------------------------------------------------------------------
    def _resolve(self, dataset, horizon) -> tuple[str, int]:
        try:
            return self.service.resolve_key(dataset, horizon)
        except KeyError as error:
            raise _Invalid(404, str(error)) from None

    def _forecaster(self, dataset, horizon) -> StreamingForecaster:
        try:
            return self.forecaster_for(dataset, horizon)
        except KeyError as error:
            raise _Invalid(404, str(error)) from None

    @staticmethod
    def _parse_common(payload: dict) -> tuple[str | None, int | None]:
        dataset = payload.get("dataset")
        horizon = payload.get("horizon")
        if dataset is not None and not isinstance(dataset, str):
            raise _Invalid(400, "'dataset' must be a string")
        if horizon is not None:
            if not isinstance(horizon, int) or isinstance(horizon, bool):
                raise _Invalid(400, "'horizon' must be an integer")
        return dataset, horizon

    def _parse_predict(self, payload: dict):
        if not isinstance(payload, dict):
            raise _Invalid(400, "request body must be a JSON object")
        if "history" not in payload:
            raise _Invalid(400, "'history' is required: a (H, N) nested "
                                "list of floats")
        try:
            history = np.asarray(payload["history"], dtype=np.float32)
        except (TypeError, ValueError):
            raise _Invalid(400, "'history' must be a rectangular nested "
                                "list of numbers") from None
        if history.ndim != 2:
            raise _Invalid(400, f"'history' must be 2-dimensional "
                                f"(H, N), got shape {history.shape}")
        dataset, horizon = self._parse_common(payload)
        raw = bool(payload.get("raw_values", False))
        return history, dataset, horizon, raw

    def _parse_ingest(self, payload: dict):
        if not isinstance(payload, dict):
            raise _Invalid(400, "request body must be a JSON object")
        series = payload.get("series")
        if not isinstance(series, str) or not series:
            raise _Invalid(400, "'series' is required: a non-empty "
                                "string naming the stream")
        timestamp = payload.get("timestamp")
        if not isinstance(timestamp, (int, float)) \
                or isinstance(timestamp, bool):
            raise _Invalid(400, "'timestamp' is required: a number on "
                                "the ingest interval grid")
        if "values" not in payload:
            raise _Invalid(400, "'values' is required: one (N,) tick or "
                                "a (T, N) run of ticks")
        try:
            values = np.asarray(payload["values"], dtype=np.float64)
        except (TypeError, ValueError):
            raise _Invalid(400, "'values' must be a rectangular nested "
                                "list of numbers") from None
        if values.ndim not in (1, 2) or values.size == 0:
            raise _Invalid(400, f"'values' must be (N,) or (T, N) and "
                                f"non-empty, got shape {values.shape}")
        dataset, horizon = self._parse_common(payload)
        wait = bool(payload.get("wait", False))
        return series, float(timestamp), values, dataset, horizon, wait

    # ------------------------------------------------------------------
    # observability + durability
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Composed gateway / service / stream / tenant counters."""
        with self._lock:
            gateway = replace(self.stats).as_dict()
            forecasters = dict(self._forecasters)
        service = self.service.snapshot().as_dict()
        service["engine"] = self.service.engine
        service["precision"] = self.service.precision
        streams = {f"{key[0]}:{key[1]}": fc.snapshot()["stream"]
                   for key, fc in forecasters.items()}
        return {"gateway": gateway, "service": service,
                "streams": streams, "tenants": self.meter.usage()}

    def save_usage(self, path: str) -> None:
        """Atomically persist per-tenant metering (survives restart)."""
        atomic_write_json(path, self.meter.export_state())

    def load_usage(self, path: str) -> bool:
        """Restore metering saved by :meth:`save_usage`; False if the
        file does not exist yet (first boot)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return False
        self.meter.import_state(payload)
        return True

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def begin_drain(self) -> None:
        """Refuse new work (503) while in-flight requests finish."""
        with self._lock:
            self._draining = True
