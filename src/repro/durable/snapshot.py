"""Versioned, digest-verified snapshots of the streaming universe.

A snapshot is one ``.npz`` archive capturing everything
:meth:`StreamingForecaster.export_state` knows — ring buffers, Welford
statistics, CUSUM drift accumulators, cadence counters, issued-forecast
caches, stream/service stats and the append sequence number — written
with the same atomic-write + sha256-digest idiom as the student
artifact bundles (:mod:`repro.serve.artifact`):

    __format__        int, bumped on breaking layout changes
    __config__        JSON of StreamingForecaster.durable_config()
    __meta__          JSON: seq, per-key scalars, stats, provenance
    __digest__        sha256 over every other entry (corruption check)
    s{i}/...          per-key arrays (buffer, stats, drift windows,
                      cached forecasts — dtypes preserved exactly)

Scalars live in the JSON blocks (Python's float repr round-trips
exactly), arrays as native npz entries, so a restore is bitwise.

:class:`StreamSnapshotter` attaches to a live forecaster and adds the
two checkpoint policies — on-demand :meth:`~StreamSnapshotter.checkpoint`
and every-N-ticks — plus an optional append-only tick WAL
(:mod:`repro.durable.wal`) covering the ticks after the last snapshot.
"""

from __future__ import annotations

import json
import os

import numpy as np

from ..nn.serialization import load_arrays, save_arrays
from ..persist import arrays_digest
from .faults import crashpoint
from .keys import decode_key, encode_key
from .wal import TickWAL, parse_shard_stem

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "StreamSnapshotter",
    "latest_snapshot",
    "load_snapshot_arrays",
    "snapshot_paths",
    "snapshot_shards",
    "state_from_arrays",
    "verify_snapshot",
    "write_snapshot",
]

#: Bump when the archive layout changes incompatibly.
SNAPSHOT_FORMAT_VERSION = 1


class SnapshotError(RuntimeError):
    """A stream snapshot is unreadable, corrupt or mismatched."""


def _snapshot_digest(payload: dict) -> str:
    """sha256 over every entry except ``__digest__`` (artifact idiom)."""
    return arrays_digest(payload, skip=("__digest__",))


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
def write_snapshot(path: str, state: dict, *, artifact_digest=None,
                   engine=None, precision=None,
                   shard: int | None = None) -> str:
    """Serialize an exported forecaster state to ``path`` atomically.

    ``state`` is :meth:`StreamingForecaster.export_state` output;
    ``artifact_digest``/``engine``/``precision`` stamp the serving
    context so recovery can refuse incompatible imports, and ``shard``
    records which shard of a sharded runtime produced the state (None
    for a single-process run).  Returns the written path (``.npz``
    appended when missing).
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    payload: dict[str, np.ndarray] = {
        "__format__": np.int64(SNAPSHOT_FORMAT_VERSION),
        "__config__": np.array(
            json.dumps(state["config"], sort_keys=True)),
    }
    meta_entries = []
    for index, entry in enumerate(state["entries"]):
        prefix = f"s{index}/"
        series = entry["series"]
        payload[prefix + "buffer"] = np.asarray(series["buffer"])
        payload[prefix + "mean"] = np.asarray(series["mean"])
        payload[prefix + "m2"] = np.asarray(series["m2"])
        drift = entry["drift"]
        payload[prefix + "drift_abs"] = np.asarray(drift["abs_errors"])
        payload[prefix + "drift_sq"] = np.asarray(drift["sq_errors"])
        # Cached forecasts keep their own entries (not stacked): the
        # student serves float32 while the naive fallback emits float64,
        # and a restore must preserve each dtype exactly.
        if entry["latest"] is not None:
            payload[prefix + "latest"] = np.asarray(entry["latest"])
        for j, (_, forecast) in enumerate(entry["issued"]):
            payload[prefix + f"issued{j}"] = np.asarray(forecast)
        meta_entries.append({
            "key": encode_key(entry["key"]),
            "series": {
                "input_len": int(series["input_len"]),
                "num_variables": int(series["num_variables"]),
                "capacity": int(series["capacity"]),
                "count": int(series["count"]),
            },
            "last_timestamp": entry["last_timestamp"],
            "gaps": int(entry["gaps"]),
            "pending_ticks": int(entry["pending_ticks"]),
            "alarm_counted": bool(entry["alarm_counted"]),
            "drift": {
                "window": int(drift["window"]),
                "calibration": int(drift["calibration"]),
                "threshold": float(drift["threshold"]),
                "slack": float(drift["slack"]),
                "count": int(drift["count"]),
                "reference": drift["reference"],
                "cusum": float(drift["cusum"]),
                "alarmed": bool(drift["alarmed"]),
            },
            "has_latest": entry["latest"] is not None,
            "issued_at": [int(at) for at, _ in entry["issued"]],
        })
    meta = {
        "seq": int(state["seq"]),
        "artifact_digest": artifact_digest,
        "engine": engine,
        "precision": precision,
        "shard": shard,
        "stream_stats": state["stream_stats"],
        "service_stats": state["service_stats"],
        "entries": meta_entries,
    }
    payload["__meta__"] = np.array(json.dumps(meta, sort_keys=True))
    payload["__digest__"] = np.array(_snapshot_digest(payload))
    crashpoint("snapshot.publish")
    save_arrays(path, payload)
    return path


# ----------------------------------------------------------------------
# reading + verification
# ----------------------------------------------------------------------
def load_snapshot_arrays(path: str) -> dict[str, np.ndarray]:
    """Read a snapshot archive (the recoverer's *reading* stage)."""
    import zipfile

    try:
        return load_arrays(path)
    except (OSError, ValueError, zipfile.BadZipFile) as error:
        raise SnapshotError(
            f"unreadable snapshot {path!r} (corrupt or truncated): "
            f"{error}") from error


def verify_snapshot(arrays: dict, path: str) -> tuple[dict, dict]:
    """Check format version, digest and JSON blocks → ``(config, meta)``.

    Raises :class:`SnapshotError` with a distinct message per failure —
    the recoverer surfaces it verbatim as ``failure_reason``.
    """
    for name in ("__format__", "__config__", "__meta__", "__digest__"):
        if name not in arrays:
            raise SnapshotError(
                f"{path!r} is not a stream snapshot: missing entry "
                f"{name!r}")
    version = int(arrays["__format__"])
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot format {version} of {path!r} is not supported "
            f"(this build reads format {SNAPSHOT_FORMAT_VERSION})")
    if _snapshot_digest(arrays) != str(arrays["__digest__"]):
        raise SnapshotError(
            f"digest mismatch in {path!r}: the snapshot is corrupt or "
            f"tampered")
    try:
        config = json.loads(str(arrays["__config__"]))
        meta = json.loads(str(arrays["__meta__"]))
    except (TypeError, ValueError) as error:
        raise SnapshotError(
            f"invalid config/metadata in {path!r}: {error}") from error
    return config, meta


def state_from_arrays(arrays: dict, config: dict, meta: dict) -> dict:
    """Reassemble the :meth:`export_state`-shaped dict from an archive."""
    entries = []
    for index, entry_meta in enumerate(meta["entries"]):
        prefix = f"s{index}/"
        try:
            series_meta = entry_meta["series"]
            entry = {
                "key": decode_key(entry_meta["key"]),
                "series": {
                    "input_len": int(series_meta["input_len"]),
                    "num_variables": int(series_meta["num_variables"]),
                    "capacity": int(series_meta["capacity"]),
                    "count": int(series_meta["count"]),
                    "buffer": arrays[prefix + "buffer"],
                    "mean": arrays[prefix + "mean"],
                    "m2": arrays[prefix + "m2"],
                },
                "last_timestamp": entry_meta["last_timestamp"],
                "gaps": int(entry_meta["gaps"]),
                "pending_ticks": int(entry_meta["pending_ticks"]),
                "alarm_counted": bool(entry_meta["alarm_counted"]),
                "drift": {
                    **entry_meta["drift"],
                    "abs_errors": arrays[prefix + "drift_abs"],
                    "sq_errors": arrays[prefix + "drift_sq"],
                },
                "latest": (arrays[prefix + "latest"]
                           if entry_meta["has_latest"] else None),
                "issued": [(int(at), arrays[prefix + f"issued{j}"])
                           for j, at in enumerate(entry_meta["issued_at"])],
            }
        except KeyError as error:
            raise SnapshotError(
                f"snapshot entry {index} is missing {error} — truncated "
                f"or mismatched archive") from error
        entries.append(entry)
    return {
        "seq": int(meta["seq"]),
        "config": config,
        "stream_stats": meta["stream_stats"],
        "service_stats": meta["service_stats"],
        "entries": entries,
    }


# ----------------------------------------------------------------------
# directory layout
# ----------------------------------------------------------------------
def snapshot_paths(directory: str, shard: int | None = None):
    """Sorted ``[(seq, path)]`` of one shard's snapshot files.

    ``shard`` selects ``snapshot-{shard}-{seq}.npz`` names; ``None``
    selects the legacy unlabeled ``snapshot-{seq}.npz`` names a
    single-process run writes.
    """
    if not os.path.isdir(directory):
        return []
    found = []
    for name in os.listdir(directory):
        if not (name.startswith("snapshot-") and name.endswith(".npz")):
            continue
        parsed = parse_shard_stem(name[len("snapshot-"):-len(".npz")])
        if parsed is None or parsed[0] != shard:
            continue
        found.append((parsed[1], os.path.join(directory, name)))
    found.sort()
    return found


def snapshot_shards(directory: str) -> list:
    """Distinct shard labels with snapshots (``None`` = unlabeled)."""
    if not os.path.isdir(directory):
        return []
    labels = set()
    for name in os.listdir(directory):
        if not (name.startswith("snapshot-") and name.endswith(".npz")):
            continue
        parsed = parse_shard_stem(name[len("snapshot-"):-len(".npz")])
        if parsed is not None:
            labels.add(parsed[0])
    ordered = sorted(label for label in labels if label is not None)
    return ([None] if None in labels else []) + ordered


def latest_snapshot(directory: str, shard: int | None = None) -> str | None:
    """Path of the highest-sequence snapshot in ``directory``, if any."""
    found = snapshot_paths(directory, shard=shard)
    return found[-1][1] if found else None


# ----------------------------------------------------------------------
# live checkpointing
# ----------------------------------------------------------------------
class StreamSnapshotter:
    """Checkpoint policy + WAL attached to a live forecaster.

    Parameters
    ----------
    forecaster:
        The :class:`StreamingForecaster` to persist.  The snapshotter
        hooks its append path (under the forecaster lock), so every
        accepted tick is observed exactly once.
    directory:
        Where ``snapshot-{seq}.npz`` and ``wal-{seq}.log`` files live.
    every:
        Checkpoint automatically every ``every`` accepted ticks
        (``0`` = on-demand :meth:`checkpoint` only).
    wal:
        Keep an append-only tick log between checkpoints, so ticks
        after the last snapshot replay during recovery.  Write-behind:
        a tick is logged only after ingestion accepted it.
    fsync:
        Fsync every WAL record (crash-proof against machine, not just
        process, death — at a per-tick latency cost).
    keep:
        How many recent snapshots to retain; older snapshots and WAL
        segments no recoverable chain needs are pruned at checkpoint.
    shard:
        Shard label for a sharded runtime — files become
        ``snapshot-{shard}-{seq}.npz`` / ``wal-{shard}-{seq}.log`` and
        pruning only ever touches this shard's files, so N workers can
        checkpoint into one directory without clobbering each other.
        ``None`` (default) keeps the legacy single-process names.
    """

    def __init__(self, forecaster, directory: str, *, every: int = 0,
                 wal: bool = True, fsync: bool = False, keep: int = 3,
                 shard: int | None = None):
        if every < 0:
            raise ValueError("every must be >= 0 (0 = on-demand only)")
        if keep < 1:
            raise ValueError("keep must be >= 1")
        if shard is not None and int(shard) < 0:
            raise ValueError("shard must be a non-negative label")
        self.forecaster = forecaster
        self.directory = directory
        self.every = int(every)
        self.fsync = bool(fsync)
        self.keep = int(keep)
        self.shard = None if shard is None else int(shard)
        self.wal_enabled = bool(wal)
        os.makedirs(directory, exist_ok=True)
        from ..serve.artifact import ArtifactError, read_artifact_digest
        try:
            self._artifact_digest = read_artifact_digest(
                forecaster.service.path_for(forecaster.model_key))
        except (KeyError, ArtifactError):
            self._artifact_digest = None
        self._wal: TickWAL | None = None  # guarded-by: forecaster._lock
        self._ticks_since = 0  # guarded-by: forecaster._lock
        with forecaster._lock:
            if forecaster._snapshotter is not None:
                raise RuntimeError(
                    "forecaster already has a snapshotter attached")
            if self.wal_enabled:
                self._wal = self._open_wal(forecaster._seq)
            forecaster._snapshotter = self

    def _label(self, kind: str, seq: int, extension: str) -> str:
        if self.shard is None:
            return os.path.join(self.directory,
                                f"{kind}-{seq:012d}{extension}")
        return os.path.join(self.directory,
                            f"{kind}-{self.shard}-{seq:012d}{extension}")

    def _open_wal(self, base_seq: int) -> TickWAL:
        path = self._label("wal", base_seq, ".log")
        return TickWAL(path, base_seq,
                       config=self.forecaster.durable_config(),
                       artifact_digest=self._artifact_digest,
                       fsync=self.fsync)

    # called from StreamingForecaster.append, under the forecaster lock
    # requires-lock: forecaster._lock
    def observe(self, key, timestamp: float, values, seq: int) -> None:
        if self._wal is not None:
            self._wal.append(seq, key, timestamp, values)
        self._ticks_since += 1
        if self.every > 0 and self._ticks_since >= self.every:
            self.checkpoint()

    def checkpoint(self) -> str:
        """Write a full snapshot now; rotates the WAL segment.

        The snapshot, the rotation and the counter reset all happen
        under the forecaster lock, so the new WAL segment's base
        sequence is exactly the snapshot's — recovery chains them
        without guessing.
        """
        with self.forecaster._lock:
            state = self.forecaster.export_state()
            seq = int(state["seq"])
            path = self._label("snapshot", seq, ".npz")
            path = write_snapshot(
                path, state, artifact_digest=self._artifact_digest,
                engine=self.forecaster.service.engine,
                precision=self.forecaster.service.precision,
                shard=self.shard)
            if self._wal is not None:
                self._wal.close()
                self._wal = self._open_wal(seq)
            self._ticks_since = 0
            self._prune()
            return path

    def _prune(self) -> None:
        """Drop snapshots beyond ``keep`` and WAL segments before them."""
        snapshots = snapshot_paths(self.directory, shard=self.shard)
        if len(snapshots) <= self.keep:
            return
        stale, kept = snapshots[:-self.keep], snapshots[-self.keep:]
        for _, path in stale:
            try:
                os.unlink(path)
            except OSError:
                pass
        # Each WAL segment's base is a snapshot seq (rotation happens at
        # checkpoint), so segments below the oldest kept snapshot only
        # cover ticks some kept snapshot already contains.
        oldest_kept = kept[0][0]
        from .wal import wal_paths
        for base, path in wal_paths(self.directory, shard=self.shard):
            if base < oldest_kept:
                try:
                    os.unlink(path)
                except OSError:
                    pass

    def close(self) -> None:
        """Detach from the forecaster and close the active WAL.

        The WAL teardown sits under the forecaster lock too: a tick
        racing ``close()`` must either append to the open segment or
        observe ``None``, never a closed handle.
        """
        with self.forecaster._lock:
            if self.forecaster._snapshotter is self:
                self.forecaster._snapshotter = None
            if self._wal is not None:
                self._wal.close()
                self._wal = None

    def __enter__(self) -> "StreamSnapshotter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
