"""Staged, fail-closed recovery of a streaming forecaster.

:class:`StatefulRecoverer` walks explicit stages::

    inactive → reading → verifying → importing → succeeded
                                   ↘ failed (with failure_reason)

modeled on the ZKAPAuthorizer ``StatefulRecoverer`` pattern: the stage
and an inspectable ``failure_reason`` are first-class state an operator
(or the ``stream --resume`` CLI) can query, not buried in a traceback.

The contract is *all or nothing*.  Verification — format version,
sha256 digest, config identity, artifact weight digest, WAL chain
contiguity — completes **before** any live state is touched; a failure
there leaves the forecaster exactly as it was.  Once importing begins,
any error (including an injected crash) clears the forecaster entirely:
a half-imported universe would silently violate the replay-parity
guarantee, which is strictly worse than an empty one.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field

from .snapshot import (
    SnapshotError,
    latest_snapshot,
    load_snapshot_arrays,
    state_from_arrays,
    verify_snapshot,
)
from .faults import crashpoint
from .wal import TornWALError, WALError, read_wal, wal_paths

__all__ = [
    "ChainVerificationError",
    "RecoveryError",
    "RecoveryStages",
    "RecoveryState",
    "StatefulRecoverer",
    "locate_chain",
    "verify_chain",
]

#: Config fields that define *identity*: restoring across a difference
#: in any of these would change window contents or grid semantics.
#: Cadence/fallback/drift settings are policy knobs and may differ.
STRICT_CONFIG_FIELDS = (
    "dataset", "horizon", "input_len", "horizon_len", "num_variables",
    "interval", "policy", "max_gap", "capacity", "raw_values",
)


class RecoveryStages(enum.Enum):
    INACTIVE = "inactive"
    READING = "reading"
    VERIFYING = "verifying"
    IMPORTING = "importing"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


@dataclass
class RecoveryState:
    """Where recovery stands — stage, why it failed, what it found."""

    stage: RecoveryStages = RecoveryStages.INACTIVE
    failure_reason: str | None = None
    detail: dict = field(default_factory=dict)


class RecoveryError(RuntimeError):
    """Raised by :meth:`StreamingForecaster.restore_from` on failure.

    Carries the final :class:`RecoveryState` as ``state``.
    """

    def __init__(self, state: RecoveryState):
        super().__init__(state.failure_reason or "recovery failed")
        self.state = state


class ChainVerificationError(RuntimeError):
    """One snapshot/WAL chain cannot be read or verified.

    Raised by :func:`locate_chain` / :func:`verify_chain`; recoverers
    catch it and surface ``reason`` (verbatim) as ``failure_reason``
    with ``detail`` merged into the recovery state.
    """

    def __init__(self, reason: str, **detail):
        super().__init__(reason)
        self.reason = reason
        self.detail = detail


# ----------------------------------------------------------------------
# chain reading + verification (shared by single and sharded recovery)
# ----------------------------------------------------------------------
def locate_chain(source: str, *, shard: int | None = None,
                 replay_wal: bool = True):
    """Find one shard's snapshot chain → ``(directory, path, arrays)``.

    ``source`` may be a snapshot file or a directory (the shard's
    newest snapshot is used; with none present but a WAL chain
    available and ``replay_wal`` set, ``(directory, None, None)`` is
    returned for a WAL-only bootstrap).  This is the recoverer's
    *reading* stage: failures raise :class:`ChainVerificationError`.
    """
    if os.path.isdir(source):
        directory = source
        snapshot_path = latest_snapshot(directory, shard=shard)
    else:
        directory = os.path.dirname(os.path.abspath(source))
        snapshot_path = source
        if not os.path.exists(snapshot_path):
            raise ChainVerificationError(
                f"no snapshot found at {snapshot_path!r}")
    arrays = None
    if snapshot_path is not None:
        try:
            arrays = load_snapshot_arrays(snapshot_path)
        except SnapshotError as error:
            raise ChainVerificationError(
                str(error), snapshot_path=snapshot_path) from error
    elif not replay_wal or not wal_paths(directory, 0, shard=shard):
        raise ChainVerificationError(f"no snapshot found in {directory!r}")
    return directory, snapshot_path, arrays


def verify_chain(directory: str, snapshot_path, arrays, forecaster, *,
                 shard: int | None = None, replay_wal: bool = True,
                 strict_wal: bool = True):
    """Verify one chain end to end → ``(state, records, snapshot_seq)``.

    Checks the snapshot's format/digest/config-identity/artifact
    provenance and the contiguity of the WAL chain after it, without
    touching any live state (the recoverer's *verifying* stage).
    ``state`` is ``None`` for a WAL-only bootstrap; ``records`` are the
    verified ticks to replay.  Failures raise
    :class:`ChainVerificationError` with the canonical messages.
    """
    live_config = forecaster.durable_config()
    state = None
    snapshot_seq = 0
    wal_config = None
    wal_digest = None
    if arrays is not None:
        try:
            config, meta = verify_snapshot(arrays, snapshot_path)
            state = state_from_arrays(arrays, config, meta)
        except SnapshotError as error:
            raise ChainVerificationError(
                str(error), snapshot_path=snapshot_path) from error
        mismatch = _config_mismatch(config, live_config)
        if mismatch is not None:
            raise ChainVerificationError(
                mismatch, snapshot_path=snapshot_path)
        reason = _artifact_mismatch(meta.get("artifact_digest"), forecaster)
        if reason is not None:
            raise ChainVerificationError(
                reason, snapshot_path=snapshot_path)
        snapshot_seq = int(state["seq"])

    records: list = []
    if replay_wal:
        segments = wal_paths(directory, snapshot_seq, shard=shard)
        for base, path in segments:
            try:
                header, parsed = read_wal(path)
            except TornWALError as torn:
                if strict_wal:
                    raise ChainVerificationError(
                        f"torn WAL record: {torn}", wal_path=path) from torn
                parsed = torn.records
                header = None if not parsed else {"base_seq": base}
                records.extend(parsed)
                break  # nothing durable can follow a torn tail
            except WALError as error:
                raise ChainVerificationError(
                    f"corrupt WAL segment: {error}", wal_path=path) from error
            if state is None and wal_config is None:
                wal_config = header.get("config") or None
                wal_digest = header.get("artifact_digest")
            records.extend(parsed)
        expected = snapshot_seq + 1
        for record in records:
            if record["seq"] != expected:
                raise ChainVerificationError(
                    f"WAL gap: expected seq {expected}, found "
                    f"{record['seq']} — the log chain is incomplete")
            expected += 1
        if state is None:
            # Bootstrapping from the WAL alone: the header carries
            # the writing process's config + artifact digest.
            if wal_config:
                mismatch = _config_mismatch(wal_config, live_config)
                if mismatch is not None:
                    raise ChainVerificationError(mismatch)
            reason = _artifact_mismatch(wal_digest, forecaster)
            if reason is not None:
                raise ChainVerificationError(reason)
    return state, records, snapshot_seq


def _config_mismatch(stored: dict, live: dict) -> str | None:
    for fieldname in STRICT_CONFIG_FIELDS:
        if fieldname not in stored:
            return (f"config mismatch: snapshot records no "
                    f"{fieldname!r}")
        if stored[fieldname] != live[fieldname]:
            return (f"config mismatch: {fieldname} is "
                    f"{stored[fieldname]!r} in the snapshot but "
                    f"{live[fieldname]!r} in this forecaster")
    return None


def _artifact_mismatch(stored_digest, forecaster) -> str | None:
    if stored_digest is None:
        return None  # written without provenance; nothing to check
    from ..serve.artifact import ArtifactError, read_artifact_digest
    try:
        live = read_artifact_digest(
            forecaster.service.path_for(forecaster.model_key))
    except (KeyError, ArtifactError) as error:
        return (f"artifact digest unverifiable: {error}")
    if live != stored_digest:
        return ("artifact digest mismatch: the snapshot was taken "
                "against different student weights than this "
                "service is serving")
    return None


class StatefulRecoverer:
    """Run recovery with inspectable stages and fail-closed semantics."""

    def __init__(self):
        self._state = RecoveryState()
        #: Every stage entered, in order (for assertions and debugging).
        self.history: list[RecoveryStages] = [RecoveryStages.INACTIVE]

    def state(self) -> RecoveryState:
        return self._state

    def _enter(self, stage: RecoveryStages) -> None:
        self._state = RecoveryState(stage=stage, detail=self._state.detail)
        self.history.append(stage)

    def _fail(self, reason: str, **detail) -> RecoveryState:
        merged = dict(self._state.detail)
        merged.update(detail)
        self._state = RecoveryState(stage=RecoveryStages.FAILED,
                                    failure_reason=reason, detail=merged)
        self.history.append(RecoveryStages.FAILED)
        return self._state

    def _succeed(self, **detail) -> RecoveryState:
        merged = dict(self._state.detail)
        merged.update(detail)
        self._state = RecoveryState(stage=RecoveryStages.SUCCEEDED,
                                    detail=merged)
        self.history.append(RecoveryStages.SUCCEEDED)
        return self._state

    # ------------------------------------------------------------------
    # the recovery pipeline
    # ------------------------------------------------------------------
    def recover(self, source: str, forecaster, *, replay_wal: bool = True,
                strict_wal: bool = True) -> RecoveryState:
        """Restore ``forecaster`` from ``source`` (snapshot or directory).

        ``source`` may be a snapshot file or a snapshot directory (the
        newest ``snapshot-{seq}.npz`` is used; with none present but a
        seq-0 WAL chain available, recovery bootstraps from empty state
        by replaying the log).  With ``replay_wal`` the WAL chain after
        the snapshot is replayed tick-by-tick.  ``strict_wal=True``
        treats a torn trailing record as fatal; ``False`` trims it —
        the torn tick was never durable, which is exactly the crash
        semantics of an un-fsynced append.

        Never raises for recovery failures — returns the final
        :class:`RecoveryState` (``failed`` carries ``failure_reason``).
        """
        # ---- reading ------------------------------------------------
        self._enter(RecoveryStages.READING)
        try:
            directory, snapshot_path, arrays = locate_chain(
                source, replay_wal=replay_wal)
        except ChainVerificationError as error:
            return self._fail(error.reason, **error.detail)

        # ---- verifying ----------------------------------------------
        self._enter(RecoveryStages.VERIFYING)
        try:
            state, records, snapshot_seq = verify_chain(
                directory, snapshot_path, arrays, forecaster,
                replay_wal=replay_wal, strict_wal=strict_wal)
        except ChainVerificationError as error:
            return self._fail(error.reason, **error.detail)

        # ---- importing ----------------------------------------------
        self._enter(RecoveryStages.IMPORTING)
        try:
            crashpoint("recover.import")
            if state is not None:
                forecaster.import_state(state)
                forecaster.service.restore_stats(state["service_stats"])
            else:
                forecaster.clear()
            for record in records:
                crashpoint("recover.replay")
                forecaster.append(record["key"], record["timestamp"],
                                  record["values"])
        except Exception as error:  # noqa: BLE001 — fail closed
            forecaster.clear()
            return self._fail(
                f"import failed ({error}); streaming state cleared — "
                f"a partial restore would break replay parity")

        return self._succeed(
            snapshot_path=snapshot_path, snapshot_seq=snapshot_seq,
            replayed=len(records), final_seq=forecaster.seq,
            keys=len(forecaster.keys()))
