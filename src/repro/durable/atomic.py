"""Atomic small-file writes shared by the durability layer.

The same tmp-file + ``os.replace`` staging idiom as
:func:`repro.nn.serialization.save_arrays` (which the snapshotter uses
for the ``.npz`` payload itself), generalized to arbitrary bytes/JSON so
sidecar files — ``--stats-out`` summaries, recovery reports — can never
be observed half-written either.
"""

from __future__ import annotations

import json
import os
import tempfile

__all__ = ["atomic_write_bytes", "atomic_write_json"]


def atomic_write_bytes(path: str, payload: bytes,
                       fsync: bool = False) -> None:
    """Write ``payload`` to ``path`` so readers see all of it or none.

    The bytes are staged in a temp file in the target's directory and
    moved into place with ``os.replace`` (atomic on POSIX).  With
    ``fsync=True`` the data is flushed to stable storage before the
    rename, surviving machine (not just process) crashes.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def atomic_write_json(path: str, payload, *, fsync: bool = False,
                      indent: int = 2) -> None:
    """Atomically write ``payload`` as pretty-printed JSON."""
    text = json.dumps(payload, indent=indent) + "\n"
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)
