"""Atomic small-file writes (re-exported from :mod:`repro.persist`).

Historically each layer carried its own tmp-file + ``os.replace``
staging code; the shared implementation now lives in
:mod:`repro.persist` and this module remains as the durable layer's
import point for sidecar files — ``--stats-out`` summaries, recovery
reports — which must never be observed half-written.
"""

from __future__ import annotations

from ..persist import atomic_write_bytes, atomic_write_json

__all__ = ["atomic_write_bytes", "atomic_write_json"]
