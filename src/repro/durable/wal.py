"""Append-only tick write-ahead log for the streaming layer.

The snapshotter checkpoints the full :class:`StreamingForecaster`
universe every N ticks; the WAL covers the gap between the last
checkpoint and the crash.  It is *write-behind*: a tick is logged only
after :meth:`StreamingForecaster.append` accepted it, so replaying the
log re-runs exactly the ticks the dead process had already ingested —
at-most-once, never a phantom tick.

File layout (``wal-{base_seq:012d}.log``)::

    REPRO-TICK-WAL\\n                      magic line
    {"format": 1, "base_seq": ..., ...}\\n  JSON header (config + digest)
    TICK <len u32 LE> <crc32 u32 LE> <body>   repeated
    ...

where each record body is a JSON line ``{"seq", "key", "timestamp",
"shape"}`` followed by the tick's raw little-endian float64 bytes.  Each
record is flushed before ``append`` returns; ``durable_size`` tracks the
byte offset known to have reached the OS, which the fault harness uses
to simulate a kill between the buffered write and the flush.

``read_wal`` is strict: a record whose frame is incomplete or whose
CRC32 disagrees raises :class:`TornWALError` carrying the offset of the
last good byte — the recoverer decides whether a torn tail is fatal
(``strict_wal``) or trimmed (it is exactly what a crash mid-append
leaves behind).
"""

from __future__ import annotations

import json
import os
import struct
import zlib

import numpy as np

from .faults import crashpoint
from .keys import decode_key, encode_key

__all__ = [
    "TickWAL",
    "TornWALError",
    "WALError",
    "parse_shard_stem",
    "read_wal",
    "wal_paths",
    "wal_shards",
]

WAL_FORMAT_VERSION = 1
WAL_MAGIC = b"REPRO-TICK-WAL\n"
_RECORD_MAGIC = b"TICK"
_FRAME = struct.Struct("<II")  # body length, crc32 of body


class WALError(RuntimeError):
    """The WAL file is malformed beyond a torn tail."""


class TornWALError(WALError):
    """The WAL ends mid-record — an un-fsynced crash's signature.

    ``good_offset`` is the end of the last intact record; everything
    before it parsed cleanly and is carried in ``records``.
    """

    def __init__(self, message: str, *, good_offset: int, records: list):
        super().__init__(message)
        self.good_offset = good_offset
        self.records = records


class TickWAL:
    """Appender for one WAL segment starting at ``base_seq``.

    Opening an existing path appends to it (resume after restart);
    opening a fresh path writes the magic + header first.  ``config``
    and ``artifact_digest`` ride in the header so a WAL chain alone —
    no snapshot yet — is enough to verify compatibility and bootstrap
    recovery from an empty forecaster.
    """

    def __init__(self, path: str, base_seq: int, *, config=None,
                 artifact_digest=None, fsync: bool = False):
        self.path = path
        self.base_seq = int(base_seq)
        self.fsync = bool(fsync)
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        if not fresh:
            # Repair-on-open: appending after a torn record would bury
            # every new record behind unparseable bytes — silent loss of
            # durable ticks at the next recovery.  Trim the torn tail
            # first; refuse files that are damaged beyond that.
            try:
                header, _ = read_wal(path)
            except TornWALError as torn:
                with open(path, "r+b") as repair:
                    repair.truncate(torn.good_offset)
                header, _ = read_wal(path)
            if int(header.get("base_seq", -1)) != self.base_seq:
                raise WALError(
                    f"{path!r} has base_seq {header.get('base_seq')!r}, "
                    f"expected {self.base_seq}")
        self._handle = open(path, "ab")
        if fresh:
            header = {
                "format": WAL_FORMAT_VERSION,
                "base_seq": self.base_seq,
                "config": dict(config) if config else {},
                "artifact_digest": artifact_digest,
            }
            self._handle.write(WAL_MAGIC)
            self._handle.write(json.dumps(header, sort_keys=True)
                               .encode("utf-8") + b"\n")
            self._flush()
        self.durable_size = os.path.getsize(path)

    def _flush(self) -> None:
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def append(self, seq: int, key, timestamp: float, values) -> None:
        """Log one accepted tick; durable once this returns."""
        if self._handle.closed:
            raise WALError(f"WAL {self.path!r} is closed")
        row = np.ascontiguousarray(values, dtype=np.float64)
        header = {
            "seq": int(seq),
            "key": encode_key(key),
            "timestamp": float(timestamp),
            "shape": list(row.shape),
        }
        body = (json.dumps(header, sort_keys=True).encode("utf-8")
                + b"\n" + row.tobytes())
        crashpoint("wal.append")
        self._handle.write(_RECORD_MAGIC)
        self._handle.write(_FRAME.pack(len(body), zlib.crc32(body)))
        self._handle.write(body)
        crashpoint("wal.fsync")
        self._flush()
        self.durable_size = self._handle.tell()

    def close(self) -> None:
        if not self._handle.closed:
            self._flush()
            self._handle.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def read_wal(path: str):
    """Parse a WAL segment → ``(header, records)``.

    Each record is ``{"seq", "key", "timestamp", "values"}`` with
    ``values`` a float64 array and ``key`` the decoded Python key.
    Raises :class:`WALError` for structural damage and
    :class:`TornWALError` (carrying the clean prefix) for a torn tail.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    if not blob.startswith(WAL_MAGIC):
        raise WALError(f"{path!r} is not a tick WAL (bad magic)")
    newline = blob.find(b"\n", len(WAL_MAGIC))
    if newline < 0:
        raise WALError(f"{path!r} has no header line")
    try:
        header = json.loads(blob[len(WAL_MAGIC):newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WALError(f"{path!r} has a corrupt header: {exc}") from exc
    if header.get("format") != WAL_FORMAT_VERSION:
        raise WALError(
            f"{path!r} has WAL format {header.get('format')!r}, "
            f"expected {WAL_FORMAT_VERSION}")

    records: list = []
    offset = newline + 1
    frame_size = len(_RECORD_MAGIC) + _FRAME.size
    while offset < len(blob):
        good = offset
        if len(blob) - offset < frame_size:
            raise TornWALError(
                f"{path!r} ends mid-frame at byte {good}",
                good_offset=good, records=records)
        if blob[offset:offset + len(_RECORD_MAGIC)] != _RECORD_MAGIC:
            raise WALError(
                f"{path!r} has a corrupt record marker at byte {good}")
        offset += len(_RECORD_MAGIC)
        length, crc = _FRAME.unpack_from(blob, offset)
        offset += _FRAME.size
        body = blob[offset:offset + length]
        if len(body) < length:
            raise TornWALError(
                f"{path!r} ends mid-record at byte {good}",
                good_offset=good, records=records)
        if zlib.crc32(body) != crc:
            raise TornWALError(
                f"{path!r} has a checksum mismatch at byte {good} "
                f"(torn or corrupt record)",
                good_offset=good, records=records)
        offset += length
        newline = body.find(b"\n")
        if newline < 0:
            raise WALError(
                f"{path!r} has a record without a header line at {good}")
        try:
            meta = json.loads(body[:newline].decode("utf-8"))
            key = decode_key(meta["key"])
            shape = tuple(int(d) for d in meta["shape"])
        except Exception as exc:
            raise WALError(
                f"{path!r} has an undecodable record at byte {good}: "
                f"{exc}") from exc
        payload = body[newline + 1:]
        expected = int(np.prod(shape, dtype=np.int64)) * 8 if shape else 8
        if len(payload) != expected:
            raise WALError(
                f"{path!r} record at byte {good} has {len(payload)} "
                f"payload bytes, expected {expected}")
        values = np.frombuffer(payload, dtype=np.float64).reshape(shape)
        records.append({
            "seq": int(meta["seq"]),
            "key": key,
            "timestamp": float(meta["timestamp"]),
            "values": values.copy(),
        })
    return header, records


def parse_shard_stem(stem: str):
    """Split a durable file stem into ``(shard, seq)``.

    ``"000000000012"`` (legacy single-process name) → ``(None, 12)``;
    ``"3-000000000012"`` (shard-labeled name) → ``(3, 12)``; anything
    else → ``None`` (not a durable file of ours).
    """
    if stem.isdigit():
        return None, int(stem)
    shard_part, sep, seq_part = stem.partition("-")
    if sep and shard_part.isdigit() and seq_part.isdigit():
        return int(shard_part), int(seq_part)
    return None


def wal_paths(directory: str, start_seq: int = 0,
              shard: int | None = None):
    """Sorted ``[(base_seq, path)]`` of WAL segments with base >= start.

    ``shard`` selects one shard's segments (``wal-{shard}-{base}.log``);
    ``None`` selects the legacy unlabeled ``wal-{base}.log`` names a
    single-process run writes.
    """
    if not os.path.isdir(directory):
        return []
    found = []
    for name in os.listdir(directory):
        if not (name.startswith("wal-") and name.endswith(".log")):
            continue
        parsed = parse_shard_stem(name[len("wal-"):-len(".log")])
        if parsed is None or parsed[0] != shard:
            continue
        base = parsed[1]
        if base >= start_seq:
            found.append((base, os.path.join(directory, name)))
    found.sort()
    return found


def wal_shards(directory: str) -> list:
    """Distinct shard labels with WAL segments (``None`` = unlabeled)."""
    if not os.path.isdir(directory):
        return []
    labels = set()
    for name in os.listdir(directory):
        if not (name.startswith("wal-") and name.endswith(".log")):
            continue
        parsed = parse_shard_stem(name[len("wal-"):-len(".log")])
        if parsed is not None:
            labels.add(parsed[0])
    ordered = sorted(label for label in labels if label is not None)
    return ([None] if None in labels else []) + ordered
