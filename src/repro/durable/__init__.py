"""``repro.durable`` — crash-safe persistence for the streaming layer.

The streaming subsystem (:mod:`repro.stream`) holds every per-series
ring buffer, Welford scaler, CUSUM drift monitor and cached forecast in
process memory; this package makes that universe survive a crash
without bending the repo's bitwise replay-parity guarantee:

* :mod:`~repro.durable.snapshot` — versioned, sha256-digested ``.npz``
  snapshots of the full :class:`~repro.stream.StreamingForecaster`
  state, written atomically; :class:`StreamSnapshotter` adds on-demand
  and every-N-ticks checkpoint policies.
* :mod:`~repro.durable.wal` — an append-only tick log covering the
  ticks between checkpoints (write-behind, CRC-framed, torn-tail
  aware).
* :mod:`~repro.durable.recover` — :class:`StatefulRecoverer`, staged
  ``inactive → reading → verifying → importing → succeeded/failed``
  recovery that verifies everything before touching live state and
  clears everything on a partial import (fail closed, never partial).
* :mod:`~repro.durable.faults` — deterministic fault injection (crash
  points + seeded file corrupters) used to prove the above.
* :mod:`~repro.durable.atomic` — tmp + ``os.replace`` helpers for
  sidecar JSON/bytes files.
* :mod:`~repro.durable.shard` — per-shard snapshot/WAL chains
  (``snapshot-{shard}-{seq}.npz``) for the sharded runtime
  (:mod:`repro.shard`), plus :class:`ShardedRecoverer` which restores
  an N-shard universe fail-closed and reshards ``N → M`` by routing
  recovered state through the target hash ring.

Recovered forecasts are bitwise identical to an uninterrupted run: a
replay killed at an arbitrary tick, recovered and finished produces
exactly the bytes the unkilled replay would have, under both the
``module`` and ``compiled`` engines.
"""

from .atomic import atomic_write_bytes, atomic_write_json
from .faults import (
    InjectedCrash,
    arm,
    crashpoint,
    disarm,
    disarm_all,
    flip_byte,
    flip_digest_byte,
    inject,
    torn_tail,
    truncate_file,
)
from .keys import KeyCodecError, decode_key, encode_key
from .recover import (
    ChainVerificationError,
    RecoveryError,
    RecoveryStages,
    RecoveryState,
    StatefulRecoverer,
    locate_chain,
    verify_chain,
)
from .shard import ShardedRecoverer, ShardedSnapshotter
from .snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    StreamSnapshotter,
    latest_snapshot,
    load_snapshot_arrays,
    snapshot_paths,
    snapshot_shards,
    state_from_arrays,
    verify_snapshot,
    write_snapshot,
)
from .wal import (
    TickWAL,
    TornWALError,
    WALError,
    read_wal,
    wal_paths,
    wal_shards,
)

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "InjectedCrash",
    "arm",
    "crashpoint",
    "disarm",
    "disarm_all",
    "flip_byte",
    "flip_digest_byte",
    "inject",
    "torn_tail",
    "truncate_file",
    "KeyCodecError",
    "decode_key",
    "encode_key",
    "ChainVerificationError",
    "RecoveryError",
    "RecoveryStages",
    "RecoveryState",
    "StatefulRecoverer",
    "locate_chain",
    "verify_chain",
    "ShardedRecoverer",
    "ShardedSnapshotter",
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "StreamSnapshotter",
    "latest_snapshot",
    "load_snapshot_arrays",
    "snapshot_paths",
    "snapshot_shards",
    "state_from_arrays",
    "verify_snapshot",
    "write_snapshot",
    "TickWAL",
    "TornWALError",
    "WALError",
    "read_wal",
    "wal_paths",
    "wal_shards",
]
