"""Deterministic fault injection for the durability layer.

Two families of faults, both seed-driven and reproducible:

* **Crash points** — named markers compiled into the durable write/
  recover paths (``wal.append``, ``wal.fsync``, ``snapshot.publish``,
  ``recover.import``, ``recover.replay``).  :func:`inject` arms one so
  its N-th hit raises :class:`InjectedCrash`, simulating a process that
  died at exactly that instruction.  Unarmed crash points are a single
  dict lookup — zero cost in production.

* **File corrupters** — byte-level damage to files already on disk:
  :func:`truncate_file` (partial write / lost tail), :func:`flip_byte`
  (bit rot at a seeded offset), :func:`flip_digest_byte` (targeted
  tamper of a snapshot's recorded digest), :func:`torn_tail` (a WAL
  record cut mid-frame, as an un-fsynced crash leaves it).

Tests use these to prove every recovery stage *fails closed*: a damaged
artifact must land the :class:`~repro.durable.recover.StatefulRecoverer`
in ``FAILED`` with a specific ``failure_reason`` — never a partial
import.
"""

from __future__ import annotations

import contextlib
import os

import numpy as np

__all__ = [
    "InjectedCrash",
    "arm",
    "crashpoint",
    "disarm",
    "disarm_all",
    "flip_byte",
    "flip_digest_byte",
    "inject",
    "torn_tail",
    "truncate_file",
]


class InjectedCrash(RuntimeError):
    """Raised by an armed crash point — stands in for a dead process."""


#: name -> {"at": fire on this hit (1-based), "hits": seen so far}
_ARMED: dict[str, dict] = {}


def crashpoint(name: str) -> None:
    """Marker in a durable code path; raises when armed via :func:`arm`."""
    if not _ARMED:
        return
    entry = _ARMED.get(name)
    if entry is None:
        return
    entry["hits"] += 1
    if entry["hits"] == entry["at"]:
        raise InjectedCrash(f"injected crash at {name!r} "
                            f"(hit {entry['hits']})")


def arm(name: str, at: int = 1) -> None:
    """Arm ``name`` so its ``at``-th hit raises :class:`InjectedCrash`."""
    if at < 1:
        raise ValueError("at must be >= 1 (1 = first hit)")
    _ARMED[name] = {"at": int(at), "hits": 0}


def disarm(name: str) -> None:
    _ARMED.pop(name, None)


def disarm_all() -> None:
    _ARMED.clear()


@contextlib.contextmanager
def inject(name: str, at: int = 1):
    """Context manager: arm ``name`` for the body, disarm on exit."""
    arm(name, at=at)
    try:
        yield
    finally:
        disarm(name)


# ----------------------------------------------------------------------
# file corrupters
# ----------------------------------------------------------------------
def truncate_file(path: str, *, keep_bytes: int | None = None,
                  keep_fraction: float | None = None,
                  seed: int = 0) -> int:
    """Cut the tail off ``path`` (a crash mid-write / lost pages).

    Keeps ``keep_bytes``, or ``keep_fraction`` of the file, or — with
    neither given — a seeded random prefix in ``[1, size - 1]``.
    Returns the new size.
    """
    size = os.path.getsize(path)
    if size < 2:
        raise ValueError(f"{path!r} is too small to truncate meaningfully")
    if keep_bytes is None:
        if keep_fraction is not None:
            keep_bytes = max(1, min(size - 1, int(size * keep_fraction)))
        else:
            keep_bytes = int(np.random.default_rng(seed).integers(1, size))
    keep_bytes = int(keep_bytes)
    if not 0 <= keep_bytes < size:
        raise ValueError(f"keep_bytes {keep_bytes} outside [0, {size})")
    with open(path, "r+b") as handle:
        handle.truncate(keep_bytes)
    return keep_bytes


def flip_byte(path: str, *, offset: int | None = None, seed: int = 0) -> int:
    """XOR one byte of ``path`` at a seeded offset (bit rot).

    Returns the corrupted offset.
    """
    size = os.path.getsize(path)
    if size == 0:
        raise ValueError(f"{path!r} is empty")
    if offset is None:
        offset = int(np.random.default_rng(seed).integers(0, size))
    if not 0 <= offset < size:
        raise ValueError(f"offset {offset} outside [0, {size})")
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ 0xA5]))
    return offset


def flip_digest_byte(path: str) -> str:
    """Rewrite a snapshot with one hex char of its recorded digest flipped.

    Targeted tamper: the archive stays structurally valid, every payload
    array is intact, only the integrity record lies — exactly the case
    the verifying stage's digest check exists for.  Returns the
    tampered digest string.
    """
    from ..nn.serialization import load_arrays, save_arrays

    arrays = load_arrays(path)
    if "__digest__" not in arrays:
        raise ValueError(f"{path!r} carries no __digest__ entry")
    digest = str(arrays["__digest__"])
    flipped = ("0" if digest[0] != "0" else "1") + digest[1:]
    arrays["__digest__"] = np.array(flipped)
    save_arrays(path, arrays)
    return flipped


def torn_tail(path: str, *, drop_bytes: int | None = None,
              seed: int = 0) -> int:
    """Tear the last bytes off ``path`` (an un-fsynced crash mid-record).

    Drops ``drop_bytes`` from the end, or a seeded 1..16 bytes.  Returns
    how many bytes were dropped.
    """
    size = os.path.getsize(path)
    if drop_bytes is None:
        drop_bytes = int(np.random.default_rng(seed).integers(
            1, min(16, max(2, size // 2))))
    drop_bytes = int(drop_bytes)
    if not 1 <= drop_bytes < size:
        raise ValueError(f"drop_bytes {drop_bytes} outside [1, {size})")
    with open(path, "r+b") as handle:
        handle.truncate(size - drop_bytes)
    return drop_bytes
