"""JSON-safe encoding of stream keys for snapshots and WAL records.

Stream keys are ``(tenant, series)``-style identifiers: strings, ints,
or (possibly nested) tuples of those.  JSON has no tuple, and a naive
``list(key)`` round-trip would silently turn ``("a", 1)`` into
``["a", 1]`` — a *different* dict key after restore.  Keys are therefore
encoded with an explicit type tag and decoded back to the exact
original Python object.
"""

from __future__ import annotations

__all__ = ["KeyCodecError", "encode_key", "decode_key"]


class KeyCodecError(ValueError):
    """A stream key cannot be represented durably (or decoded back)."""


def encode_key(key) -> list:
    """``key`` → a JSON-serializable tagged value."""
    if isinstance(key, bool):  # bool is an int subclass; reject explicitly
        raise KeyCodecError(f"unsupported stream key type {type(key).__name__}")
    if isinstance(key, str):
        return ["s", key]
    if isinstance(key, int):
        return ["i", int(key)]
    if isinstance(key, tuple):
        return ["t", [encode_key(part) for part in key]]
    raise KeyCodecError(
        f"unsupported stream key type {type(key).__name__}: durable "
        f"streams need str/int/tuple keys, got {key!r}")


def decode_key(payload):
    """Inverse of :func:`encode_key` (raises on malformed payloads)."""
    try:
        tag, value = payload
    except (TypeError, ValueError):
        raise KeyCodecError(f"malformed encoded key {payload!r}") from None
    if tag == "s":
        if not isinstance(value, str):
            raise KeyCodecError(f"malformed encoded key {payload!r}")
        return value
    if tag == "i":
        if isinstance(value, bool) or not isinstance(value, int):
            raise KeyCodecError(f"malformed encoded key {payload!r}")
        return int(value)
    if tag == "t":
        if not isinstance(value, list):
            raise KeyCodecError(f"malformed encoded key {payload!r}")
        return tuple(decode_key(part) for part in value)
    raise KeyCodecError(f"unknown key tag in {payload!r}")
