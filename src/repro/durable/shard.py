"""Per-shard durability: shard-labeled chains + resharding recovery.

Each shard of a :class:`~repro.shard.stream.ShardedStreamingForecaster`
checkpoints independently — ``snapshot-{shard}-{seq}.npz`` plus
``wal-{shard}-{seq}.log`` chains in one shared directory, written by
one :class:`~repro.durable.snapshot.StreamSnapshotter` per shard
(:class:`ShardedSnapshotter` below is the attach-all convenience).
Because every key lives on exactly one shard, the chains are disjoint
and a shard never waits on another to checkpoint.

:class:`ShardedRecoverer` restores the whole N-shard universe with the
same staged, fail-closed contract as the single-process
:class:`~repro.durable.recover.StatefulRecoverer`: every source chain
is read and verified *before* any live state is touched, and any
failure once importing began clears **all** target shards — half a
cluster would silently break replay parity, which is strictly worse
than an empty one.

Resharding ``N → M`` falls out of the routing: when the source shard
labels do not match the target ring — or any recovered key now hashes
to a different shard — the recoverer routes every verified entry
through the target ring instead of importing chains one-to-one, then
replays all WAL ticks through the sharded front end (each tick lands
on its new owner).  Legacy unlabeled ``snapshot-{seq}.npz`` chains are
treated as source shard ``None``, so a single-process run reshards
onto any ring the same way.
"""

from __future__ import annotations

import os

from .faults import crashpoint
from .recover import (
    ChainVerificationError,
    RecoveryStages,
    RecoveryState,
)
from .snapshot import StreamSnapshotter, snapshot_shards
from .wal import wal_shards

__all__ = ["ShardedSnapshotter", "ShardedRecoverer"]


class ShardedSnapshotter:
    """One :class:`StreamSnapshotter` per shard, attached together.

    Forwards the constructor knobs (``every``/``wal``/``fsync``/
    ``keep``) verbatim to each per-shard snapshotter; shard ``i``'s
    files carry label ``i``.  ``checkpoint()`` snapshots every shard
    (each under its own forecaster lock — shards never block each
    other's ingest for longer than their own export).
    """

    def __init__(self, sharded, directory: str, *, every: int = 0,
                 wal: bool = True, fsync: bool = False, keep: int = 3):
        self.directory = directory
        self.snapshotters: list[StreamSnapshotter] = []
        try:
            for index, forecaster in enumerate(sharded.shards):
                self.snapshotters.append(StreamSnapshotter(
                    forecaster, directory, every=every, wal=wal,
                    fsync=fsync, keep=keep, shard=index))
        except BaseException:
            self.close()
            raise

    def checkpoint(self) -> list[str]:
        """Checkpoint every shard; returns the written snapshot paths."""
        return [snapshotter.checkpoint()
                for snapshotter in self.snapshotters]

    def prune_foreign(self) -> list[str]:
        """Remove chains whose shard label this universe does not run.

        After a resharded recovery into the *same* directory, chains
        from labels outside the target ring (a shrink's orphaned
        shards, or a legacy unlabeled chain) are superseded — their
        keys now live in the target shards' chains, which start above
        every source seq.  Left behind, a later recovery would merge
        their stale entries back in.  Call this **after** the first
        post-recovery :meth:`checkpoint`, never before: until the new
        chains exist, the old ones are the only durable copy.

        Returns the removed paths.
        """
        from .wal import parse_shard_stem

        owned = {snapshotter.shard for snapshotter in self.snapshotters}
        removed = []
        for name in sorted(os.listdir(self.directory)):
            for prefix, suffix in (("snapshot-", ".npz"),
                                   ("wal-", ".log")):
                if not (name.startswith(prefix) and name.endswith(suffix)):
                    continue
                parsed = parse_shard_stem(
                    name[len(prefix):-len(suffix)])
                if parsed is None or parsed[0] in owned:
                    continue
                path = os.path.join(self.directory, name)
                os.unlink(path)
                removed.append(path)
        return removed

    def close(self) -> None:
        for snapshotter in self.snapshotters:
            snapshotter.close()

    def __enter__(self) -> "ShardedSnapshotter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _chain_label(shard) -> str:
    return "unsharded chain" if shard is None else f"shard {shard}"


def _sum_service_stats(states: list[dict]) -> dict:
    from ..serve.service import ServiceStats
    return ServiceStats.merge([
        ServiceStats.from_dict(state["service_stats"])
        for state in states]).as_dict()


def _sum_stream_stats(states: list[dict]) -> dict:
    from ..stream.forecaster import StreamStats
    merged = StreamStats()
    for state in states:
        for name in merged.as_dict():
            setattr(merged, name,
                    getattr(merged, name) + int(state["stream_stats"][name]))
    return merged.as_dict()


class ShardedRecoverer:
    """Staged, fail-closed recovery of an N-shard streaming universe.

    The stage machine is the single-process one
    (:class:`~repro.durable.recover.RecoveryStages`); ``detail`` gains
    a per-source-shard breakdown plus ``resharded`` — whether entries
    were re-routed through the target ring instead of imported
    chain-for-chain.
    """

    def __init__(self):
        self._state = RecoveryState()
        self.history: list[RecoveryStages] = [RecoveryStages.INACTIVE]

    def state(self) -> RecoveryState:
        return self._state

    def _enter(self, stage: RecoveryStages) -> None:
        self._state = RecoveryState(stage=stage, detail=self._state.detail)
        self.history.append(stage)

    def _fail(self, reason: str, **detail) -> RecoveryState:
        merged = dict(self._state.detail)
        merged.update(detail)
        self._state = RecoveryState(stage=RecoveryStages.FAILED,
                                    failure_reason=reason, detail=merged)
        self.history.append(RecoveryStages.FAILED)
        return self._state

    def _succeed(self, **detail) -> RecoveryState:
        merged = dict(self._state.detail)
        merged.update(detail)
        self._state = RecoveryState(stage=RecoveryStages.SUCCEEDED,
                                    detail=merged)
        self.history.append(RecoveryStages.SUCCEEDED)
        return self._state

    # ------------------------------------------------------------------
    # the recovery pipeline
    # ------------------------------------------------------------------
    def recover(self, directory: str, sharded, *, replay_wal: bool = True,
                strict_wal: bool = True) -> RecoveryState:
        """Restore ``sharded`` from every chain found in ``directory``.

        Source shards are discovered from the file labels (snapshots
        and WALs); the target shard count is whatever ``sharded`` runs
        — they need not match.  Never raises for recovery failures;
        returns the final :class:`RecoveryState`.
        """
        from .recover import locate_chain, verify_chain

        # ---- reading ------------------------------------------------
        self._enter(RecoveryStages.READING)
        labels = sorted(
            set(snapshot_shards(directory)) | set(wal_shards(directory)),
            key=lambda label: (label is not None, label or 0))
        if not labels:
            return self._fail(f"no snapshot found in {directory!r}")
        chains: dict = {}
        for label in labels:
            try:
                _, snapshot_path, arrays = locate_chain(
                    directory, shard=label, replay_wal=replay_wal)
            except ChainVerificationError as error:
                return self._fail(
                    f"{_chain_label(label)}: {error.reason}",
                    **error.detail)
            chains[label] = (snapshot_path, arrays)

        # ---- verifying ----------------------------------------------
        self._enter(RecoveryStages.VERIFYING)
        verified: dict = {}
        shard_detail: dict = {}
        for label, (snapshot_path, arrays) in chains.items():
            try:
                state, records, snapshot_seq = verify_chain(
                    directory, snapshot_path, arrays, sharded,
                    shard=label, replay_wal=replay_wal,
                    strict_wal=strict_wal)
            except ChainVerificationError as error:
                return self._fail(
                    f"{_chain_label(label)}: {error.reason}",
                    **error.detail)
            verified[label] = (state, records)
            shard_detail[str(label)] = {
                "snapshot_path": snapshot_path,
                "snapshot_seq": snapshot_seq,
                "wal_records": len(records),
            }

        # A chain-for-chain import is only faithful when the universe
        # shape survived: same shard labels as the target ring AND every
        # recovered key still hashes to the shard that persisted it.
        targets = list(range(len(sharded.shards)))
        faithful = set(labels) == set(targets) and all(
            sharded.shard_for(entry["key"]) == label
            for label, (state, _) in verified.items() if state is not None
            for entry in state["entries"])

        # ---- importing ----------------------------------------------
        self._enter(RecoveryStages.IMPORTING)
        try:
            crashpoint("recover.import")
            if faithful:
                for label in targets:
                    state, _ = verified[label]
                    shard = sharded.shards[label]
                    if state is not None:
                        shard.import_state(state)
                        shard.service.restore_stats(state["service_stats"])
                    else:
                        shard.clear()  # WAL-only bootstrap of this shard
            else:
                self._import_resharded(sharded, verified)
            replayed = 0
            for label in labels:
                for record in verified[label][1]:
                    crashpoint("recover.replay")
                    sharded.append(record["key"], record["timestamp"],
                                   record["values"])
                    replayed += 1
        except Exception as error:  # noqa: BLE001 — fail closed
            sharded.clear()
            return self._fail(
                f"import failed ({error}); streaming state cleared — "
                f"a partial restore would break replay parity")

        return self._succeed(
            shards=shard_detail, resharded=not faithful,
            source_shards=len(labels), target_shards=len(targets),
            replayed=replayed, final_seq=sharded.seq,
            keys=len(sharded.keys()))

    @staticmethod
    def _import_resharded(sharded, verified: dict) -> None:
        """Route every verified entry through the target ring.

        Keys are disjoint across source shards, so regrouping entries
        is a pure partition.  Per-shard sequence counters cannot be
        carried over meaningfully (each target now owns a different key
        set), so every target restarts at the highest source seq —
        monotonic for any subsequently chained WAL.  Cluster-cumulative
        stream counters are summed onto shard 0 (service counters via
        the router), keeping cluster totals continuous while making no
        claim about a per-shard split that no longer exists.
        """
        states = [state for state, _ in verified.values()
                  if state is not None]
        if not states:
            sharded.clear()
            return
        base_seq = max(int(state["seq"]) for state in states)
        config = states[0]["config"]
        zero_stream = _sum_stream_stats([])
        grouped: dict[int, list] = {index: []
                                    for index in range(len(sharded.shards))}
        for state in states:
            for entry in state["entries"]:
                grouped[sharded.shard_for(entry["key"])].append(entry)
        for index, shard in enumerate(sharded.shards):
            shard.import_state({
                "seq": base_seq,
                "config": config,
                "stream_stats": (_sum_stream_stats(states) if index == 0
                                 else zero_stream),
                "service_stats": {},  # restored router-level below
                "entries": grouped[index],
            })
        sharded.router.restore_stats(_sum_service_stats(states))
