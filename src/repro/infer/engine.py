"""Tape-free compiled forward for the student hot path.

:class:`CompiledStudent` exports a fitted
:class:`~repro.core.student.StudentModel` into a flat, pure-numpy
forward: no :class:`~repro.nn.tensor.Tensor` objects, no graph
bookkeeping (not even the ``no_grad`` variety), preallocated scratch
reused across calls, and in-place ufuncs throughout.  The last-layer
attention head-average — a distillation-only output — is skipped
entirely unless requested.

Second-generation design: the engine is **shape-polymorphic**.  Scratch
is allocated once at a high-water-mark batch capacity and every batch
size ``B <= capacity`` binds *views* of the first ``B`` rows — a sliced
C-contiguous buffer has exactly the strides of a dedicated ``(B, ...)``
allocation, so the same ufunc/GEMM kernels run on the same memory
layouts.  A new coalesced batch size on the serve path therefore never
triggers a tape rebuild or a probe: it costs one cheap view binding
(a few dozen slices plus pre-bound partials), cached in a small LRU.
Only a batch size *above* capacity recompiles, and a serving layer that
passes its ``max_batch`` up front never does even that.

The engine's default contract is **bitwise parity** with the module
forward: every numpy operation below mirrors the exact op sequence,
operand dtypes and memory layouts of the ``Module`` path (``RevIN`` →
inverted embedding → Pre-LN encoder → head → de-normalization), so
``CompiledStudent.predict`` and ``StudentModel.predict`` return
identical bytes for identical inputs.  That is what lets the serve and
stream layers swap engines freely: the replay/parity harnesses keep
holding.  Fused tape variants (fused QKV, collapsed 2-D GEMMs) are
adopted only when a compile-time probe proves them bitwise-equal at the
polymorphic shape (both at full capacity and at batch 1).

Opt-in reduced precision relaxes that contract *explicitly*, never
silently: ``precision="mixed"`` accumulates the reductions (RevIN and
LayerNorm statistics, softmax sums) in float64, and ``precision="int8"``
serves the GEMM-dominant projections from per-channel int8-quantized
weights.  Both are gated behind an :class:`ErrorBudget` asserted at
compile time — each quantized projection and the final prediction are
checked against the exact float32 tape on a probe input, and compilation
fails with :class:`PrecisionError` when the declared tolerance is
exceeded.

Weights are *donated* (see :mod:`repro.nn.buffers`): the engine shares
the module's backing arrays by default, so compiling is cheap.  Derived
constants (the RevIN denominator, the probe-verified fused QKV
projection, int8 codebooks) are snapshotted at compile time — rebuild
the engine after mutating weights in place
(``TimeKDForecaster.compile(force=True)``).
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from ..nn.buffers import ScratchPool, donate, quantize_per_channel

__all__ = ["ENGINES", "PRECISIONS", "CompiledStudent", "ErrorBudget",
           "PrecisionError", "compile_student", "resolve_engine",
           "resolve_precision"]

#: Inference engines understood by the serving stack and the CLI.
ENGINES = ("module", "compiled")

#: Numeric modes of the compiled engine.  ``float32`` is bitwise equal
#: to the module path; ``mixed`` and ``int8`` are tolerance-gated.
PRECISIONS = ("float32", "mixed", "int8")

#: Smallest batch capacity a lazy first call allocates (keeps tiny
#: direct-use engines from recompiling on every slightly-larger batch).
_MIN_CAPACITY = 8

#: Bindings kept per engine before LRU eviction (tapes only — scratch
#: is shared capacity memory, so an eviction frees Python lists, and the
#: cache cannot grow one buffer per batch shape like the v1 engine did).
_DEFAULT_PLAN_CACHE = 32

#: Float32 zero, pre-wrapped so the ReLU mask compare skips per-call
#: scalar conversion (same compare as ``Tensor.relu``'s ``data > 0``).
_ZERO = np.asarray(0.0, dtype=np.float32)


def resolve_engine(engine: str) -> str:
    """Validate an engine name; returns it unchanged."""
    if engine not in ENGINES:
        raise ValueError(
            f"unknown inference engine {engine!r}; choose from {ENGINES}")
    return engine


def resolve_precision(precision: str) -> str:
    """Validate a compiled-engine precision mode; returns it unchanged."""
    if precision not in PRECISIONS:
        raise ValueError(
            f"unknown engine precision {precision!r}; "
            f"choose from {PRECISIONS}")
    return precision


class PrecisionError(ValueError):
    """A reduced-precision compile exceeded its declared error budget."""


@dataclass(frozen=True)
class ErrorBudget:
    """Per-module error contract for reduced-precision compilation.

    ``module_rel`` bounds the relative L-inf error of every quantized
    projection output against the float32 GEMM *on the same inputs*
    (``overrides`` tightens or loosens individual modules by name, e.g.
    ``{"head": 0.001}``).  ``max_abs``/``max_rel`` bound the final
    prediction against the exact float32 tape in scale-aware L-inf:
    ``max|y - y_ref| <= max_abs + max_rel * max|y_ref|`` (the relative
    term tracks the forecast's own magnitude, the absolute term is the
    floor for near-zero outputs).  All checks run on a compile-time
    probe; a violation raises :class:`PrecisionError` instead of
    silently serving degraded forecasts.
    """

    max_abs: float = 1e-3
    max_rel: float = 0.02
    module_rel: float = 0.02
    overrides: dict = field(default_factory=dict)

    def budget_for(self, module: str) -> float:
        return self.overrides.get(module, self.module_rel)


def compile_student(student, copy_weights: bool = False,
                    **kwargs) -> "CompiledStudent":
    """Convenience wrapper around :class:`CompiledStudent`."""
    return CompiledStudent(student, copy_weights=copy_weights, **kwargs)


def _const(value) -> np.ndarray:
    """A float32 0-d array constant.

    Ufunc dispatch converts python/numpy scalars on every call; a 0-d
    array of the operand dtype passes straight through (~100ns saved per
    op).  Same dtype, same kernel, same bits as the scalar it replaces.
    """
    return np.asarray(value, dtype=np.float32)


def _ceil_pow2(n: int) -> int:
    """Smallest power of two >= ``n`` (geometric capacity growth)."""
    return 1 << max(int(n) - 1, 0).bit_length()


class _LayerWeights:
    """Donated weights of one Pre-LN encoder layer, flat and contiguous."""

    __slots__ = ("ln1_g", "ln1_b", "ln1_eps", "wq", "bq", "wk", "bk",
                 "wv", "bv", "wo", "bo", "wqkv", "bqkv", "scale",
                 "ln2_g", "ln2_b", "ln2_eps", "w1", "b1", "w2", "b2",
                 "activation")

    def __init__(self, layer, copy: bool):
        w = lambda p: donate(p.data, copy=copy)  # noqa: E731 — local alias
        self.ln1_g, self.ln1_b = w(layer.norm1.gamma), w(layer.norm1.beta)
        self.ln1_eps = _const(layer.norm1.eps)
        attention = layer.attention
        self.wq, self.bq = w(attention.q_proj.weight), w(attention.q_proj.bias)
        self.wk, self.bk = w(attention.k_proj.weight), w(attention.k_proj.bias)
        self.wv, self.bv = w(attention.v_proj.weight), w(attention.v_proj.bias)
        self.wo, self.bo = w(attention.out_proj.weight), w(attention.out_proj.bias)
        # Concatenated projections for the probe-verified fused-QKV
        # tape (one (D, 3D) GEMM instead of three).  Snapshots, not
        # donations — recompile after in-place weight updates.
        self.wqkv = np.concatenate([self.wq, self.wk, self.wv], axis=1)
        self.bqkv = np.concatenate([self.bq, self.bk, self.bv])
        # The module path coerces the python-float scale into a float32
        # scalar tensor; pre-cast once so the multiply matches bitwise.
        self.scale = _const(1.0 / math.sqrt(attention.head_dim))
        self.ln2_g, self.ln2_b = w(layer.norm2.gamma), w(layer.norm2.beta)
        self.ln2_eps = _const(layer.norm2.eps)
        self.w1, self.b1 = w(layer.ffn.fc1.weight), w(layer.ffn.fc1.bias)
        self.w2, self.b2 = w(layer.ffn.fc2.weight), w(layer.ffn.fc2.bias)
        self.activation = layer.ffn.activation


def _audit_gemm(errors: dict, name: str, src: np.ndarray,
                reference_weight: np.ndarray, out: np.ndarray) -> None:
    """Record one quantized projection's relative L-inf probe error.

    Interleaved into the audit tape right after the quantized GEMM, so
    ``src`` holds the *actual* activations flowing into the module at
    that point and ``out`` the int8-served result.  Probe-time only —
    the serving tape never carries these ops.
    """
    reference = src @ reference_weight
    scale = float(np.abs(reference).max()) or 1.0
    errors[name] = float(np.abs(out - reference).max()) / scale


class CompiledStudent:
    """Flat numpy forward of a fitted student, shape-polymorphic.

    Parameters
    ----------
    student:
        A :class:`~repro.core.student.StudentModel` (typically in eval
        mode; the compiled forward is always deterministic — dropout
        does not exist here).
    copy_weights:
        Snapshot the weights instead of sharing the module's buffers.
        Leave off for serving, where weights are fixed after load (zero
        copies).  Either way, derived constants (fused QKV, the RevIN
        denominator, int8 codebooks) are compile-time snapshots:
        recompile after any weight update.
    precision:
        ``"float32"`` (bitwise-equal to the module path, the default),
        ``"mixed"`` (float64 accumulation for the statistical
        reductions), or ``"int8"`` (per-channel weight-quantized
        projections).  Non-float32 modes are gated by ``error_budget``
        at compile time.
    error_budget:
        :class:`ErrorBudget` enforced when ``precision != "float32"``.
    max_batch:
        Eagerly compile for this batch capacity (the serving layer
        passes its coalescing bound here, moving the one compile stall
        to load time).  Lazy by default: the first call compiles at
        ``max(next_pow2(B), 8)`` and capacity grows geometrically.
    plan_cache_size:
        Per-batch-size view bindings kept before LRU eviction.

    One engine instance is internally locked: concurrent ``predict``
    calls serialize on the shared scratch buffers.  Returned arrays are
    fresh copies — they never alias the scratch pool.
    """

    def __init__(self, student, copy_weights: bool = False,
                 precision: str = "float32",
                 error_budget: ErrorBudget | None = None,
                 max_batch: int | None = None,
                 plan_cache_size: int = _DEFAULT_PLAN_CACHE):
        config = student.config
        self.config = config
        self.history_length = config.history_length
        self.horizon = config.horizon
        self.num_variables = config.num_variables
        self.num_heads = config.num_heads
        self.head_dim = config.d_model // config.num_heads
        self.d_model = config.d_model
        self.ffn_dim = student.encoder.layers[0].ffn.fc1.out_features
        self.precision = resolve_precision(precision)
        self.error_budget = error_budget or ErrorBudget()
        if plan_cache_size < 1:
            raise ValueError("plan_cache_size must be >= 1")
        self.plan_cache_size = int(plan_cache_size)

        w = lambda p: donate(p.data, copy=copy_weights)  # noqa: E731
        revin = student.revin
        self._revin_affine = revin.affine
        self._revin_eps = _const(revin.eps)
        if revin.affine:
            self._revin_g, self._revin_b = w(revin.gamma), w(revin.beta)
            # The module recomputes ``gamma + eps`` per call through a
            # float32 scalar coercion; hoist it out of the hot path.
            self._revin_denom = self._revin_g + self._revin_eps
        else:
            self._revin_g = self._revin_b = self._revin_denom = None
        self._w_emb = w(student.inverted_embedding.weight)
        self._b_emb = w(student.inverted_embedding.bias)
        self._layers = [_LayerWeights(layer, copy_weights)
                        for layer in student.encoder.layers]
        self._final_g = w(student.encoder.final_norm.gamma)
        self._final_b = w(student.encoder.final_norm.beta)
        self._final_eps = _const(student.encoder.final_norm.eps)
        self._w_head = w(student.head.weight)
        self._b_head = w(student.head.bias)
        # Tensor.mean multiplies by a float32-coerced ``1/heads``.
        self._head_mean = _const(1.0 / self.num_heads)
        # np.mean/np.var divide their float32 sums by an intp count
        # through a float64 loop.  A float32-scalar divide is bitwise
        # identical (float64→float32 double rounding is innocuous for
        # binary32 division — 52 >= 2*24+2 significand bits, Figueroa
        # 1995) and skips the mixed-dtype buffered path.
        self._n_time = _const(self.history_length)
        self._n_model = _const(self.d_model)
        self._window_shape = (self.history_length, self.num_variables)

        #: int8 codebooks (module name -> (codes, per-channel scales))
        #: and the float32 reconstructions the GEMM tape serves from.
        self._qweights: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self._deq: dict[str, np.ndarray] = {}
        if self.precision == "int8":
            self._quantize_projections()

        self._pool = ScratchPool()
        self._bindings: OrderedDict[int, _Binding] = OrderedDict()  # guarded-by: _lock
        self._capacity = 0
        self._variant = (False, False)  # guarded-by: _lock
        self._lock = threading.Lock()
        #: Forward-call / window counters (monitoring + benchmarks).
        self.calls = 0  # guarded-by: _lock
        self.windows = 0  # guarded-by: _lock
        #: Full polymorphic compiles (scratch allocation + probe).  A
        #: warmed engine serves any batch size <= capacity at zero.
        self.rebuilds = 0  # guarded-by: _lock
        #: Per-batch-size binding cache counters (LRU of cheap tapes).
        self.plan_hits = 0  # guarded-by: _lock
        self.plan_misses = 0  # guarded-by: _lock
        self.plan_evictions = 0  # guarded-by: _lock
        #: Probe-time error report of the last reduced-precision
        #: compile (empty in float32 mode).
        self.probe_report: dict = {}
        if max_batch is not None:
            if max_batch < 1:
                raise ValueError("max_batch must be >= 1")
            self._recompile(int(max_batch))

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def predict(self, history: np.ndarray) -> np.ndarray:
        """Forecast ``(B, M, N)`` from history windows ``(B, H, N)``.

        Mirrors ``StudentModel.predict``: numpy in, numpy out, a single
        ``(H, N)`` window is promoted to batch size 1 (the result keeps
        the leading batch axis, exactly like the module path).
        """
        return self.forward(history)[0]

    def forward(self, history: np.ndarray, need_attention: bool = False):
        """Run the compiled forward; returns ``(prediction, attention)``.

        ``attention`` is the head-averaged last-layer map ``(B, N, N)``
        when requested, else ``None`` — and when it is not requested its
        computation is skipped entirely, not just discarded.
        """
        x = self._check_input(history)
        with self._lock:
            self.calls += 1
            self.windows += x.shape[0]
            binding = self._plan(x.shape[0], need_attention)
            p = binding.views
            np.copyto(p.x, x)
            for op in (binding.tape_attention if need_attention
                       else binding.tape):
                op()
            # Scratch buffers are recycled next call — hand out copies.
            return (p.prediction.copy(),
                    p.attention.copy() if need_attention else None)

    def _check_input(self, history: np.ndarray) -> np.ndarray:
        x = np.asarray(history, dtype=np.float32)
        if x.ndim == 2:
            x = x.reshape(1, *x.shape)
        if x.ndim != 3 or x.shape[1:] != self._window_shape:
            raise ValueError(
                f"expected history of shape (B, {self.history_length}, "
                f"{self.num_variables}), got {np.shape(history)}")
        return x

    @property
    def capacity(self) -> int:
        """High-water batch capacity the shared scratch is sized for."""
        return self._capacity

    @property
    def scratch_nbytes(self) -> int:
        """Bytes held by the shared capacity scratch buffers."""
        return self._pool.nbytes

    @property
    def quantized_nbytes(self) -> int:
        """Bytes of the int8 codebooks (0 outside ``int8`` mode)."""
        return sum(q.nbytes + s.nbytes for q, s in self._qweights.values())

    @property
    def projection_nbytes(self) -> int:
        """Float32 bytes of the projection weights int8 mode replaces."""
        weights = [self._w_emb, self._w_head]
        for layer in self._layers:
            weights += [layer.wq, layer.wk, layer.wv, layer.wo,
                        layer.w1, layer.w2]
        return sum(w.nbytes for w in weights)

    def plan_stats(self) -> dict:
        """Plan-cache and compile counters (thread-safe snapshot)."""
        with self._lock:
            return {
                "capacity": self._capacity,
                "bindings": len(self._bindings),
                "hits": self.plan_hits,
                "misses": self.plan_misses,
                "evictions": self.plan_evictions,
                "rebuilds": self.rebuilds,
            }

    def release_scratch(self) -> None:
        """Free all scratch buffers (they regrow on the next call)."""
        with self._lock:
            self._bindings.clear()
            self._pool.clear()
            self._capacity = 0

    # ------------------------------------------------------------------
    # shape-polymorphic planning
    # ------------------------------------------------------------------
    # requires-lock: _lock
    def _plan(self, B: int, need_attention: bool) -> "_Binding":
        binding = self._bindings.get(B)
        if binding is None:
            if B > self._capacity:
                # Geometric growth; a serving layer that passed its
                # max_batch up front never reaches this branch.
                self._recompile(max(_ceil_pow2(B), _MIN_CAPACITY))
            self.plan_misses += 1
            views = _Views(self, B)
            binding = _Binding(
                views, self._build_tape(views, False, *self._variant))
            self._bindings[B] = binding
            while len(self._bindings) > self.plan_cache_size:
                self._bindings.popitem(last=False)
                self.plan_evictions += 1
        else:
            self.plan_hits += 1
            self._bindings.move_to_end(B)
        if need_attention and binding.tape_attention is None:
            binding.tape_attention = self._build_tape(
                binding.views, True, *self._variant)
        return binding

    # requires-lock: _lock (or construction, pre-publication)
    def _recompile(self, capacity: int) -> None:
        """(Re)build the polymorphic plan: scratch, variant, budget.

        The one expensive step — capacity allocation plus the
        probe-verify pass — after which every batch size up to
        ``capacity`` binds views without rebuilding or probing.
        """
        self._pool.clear()
        self._bindings.clear()
        self._capacity = int(capacity)
        self.rebuilds += 1
        probe = np.random.default_rng(0).standard_normal(
            (self._capacity, self.history_length,
             self.num_variables)).astype(np.float32)
        self._variant = self._select_variant(probe)
        if self.precision != "float32":
            self._enforce_budget(probe)

    def _select_variant(self, probe: np.ndarray) -> tuple[bool, bool]:
        """Adopt the fastest tape variant a probe proves bitwise-equal.

        Two verified transforms: *fused QKV* (one GEMM against the
        concatenated ``(D, 3D)`` projection instead of three) and
        *collapsed GEMM* (``(B*N, D)`` 2-D views instead of batched 3-D
        matmul, hitting the direct cblas path).  Both only reorganize
        the same per-element dot products, but BLAS/ufunc kernel
        selection depends on shapes and strides — and those selections
        are value-independent, so running each candidate once on a
        random probe input and comparing bytes against the reference
        tape is a sound equivalence check.  The polymorphic plan serves
        every batch size from sliced views of one capacity buffer, so
        the probe brackets the range: a variant is adopted only when it
        matches bitwise both at full capacity and at batch 1.  On the
        slightest mismatch the reference stays.
        """
        sizes = (self._capacity,) if self._capacity == 1 \
            else (self._capacity, 1)
        references = {}
        for B in sizes:
            views = _Views(self, B)
            tape = self._build_tape(views, True)
            np.copyto(views.x, probe[:B])
            for op in tape:
                op()
            references[B] = (views.prediction.tobytes(),
                             views.attention.tobytes())
        for fused, collapsed in ((True, True), (True, False), (False, True)):
            for B in sizes:
                views = _Views(self, B)
                candidate = self._build_tape(views, True, fused, collapsed)
                np.copyto(views.x, probe[:B])
                for op in candidate:
                    op()
                if (views.prediction.tobytes(),
                        views.attention.tobytes()) != references[B]:
                    break
            else:
                return (fused, collapsed)
        return (False, False)

    def _enforce_budget(self, probe: np.ndarray) -> None:  # requires-lock: _lock
        """Assert the reduced-precision tape honors its error budget.

        Runs the exact float32 module-mirror tape and the adopted
        precision tape (with per-module audit ops interleaved) on the
        probe; rejects the compile with :class:`PrecisionError` when any
        quantized projection or the final prediction drifts past the
        declared tolerance.
        """
        views = _Views(self, self._capacity)
        exact = self._build_tape(views, False, precision="float32")
        np.copyto(views.x, probe)
        for op in exact:
            op()
        # Probe-time float64 reference, never on the serve path.
        # repro: allow[dtype-hygiene] — sanctioned wide dtype
        reference = views.prediction.astype(np.float64)

        module_errors: dict[str, float] = {}
        audited = self._build_tape(views, False, *self._variant,
                                   audit=module_errors)
        np.copyto(views.x, probe)
        for op in audited:
            op()
        budget = self.error_budget
        over = {name: error for name, error in module_errors.items()
                if error > budget.budget_for(name)}
        if over:
            worst = max(over, key=over.get)
            raise PrecisionError(
                f"{self.precision} compile rejected: quantized module(s) "
                f"exceed their relative error budget — worst {worst!r} at "
                f"{over[worst]:.3e} (budget "
                f"{budget.budget_for(worst):.3e}); offending modules: "
                f"{sorted(over)}")
        error = float(
            # repro: allow[dtype-hygiene] — probe-time comparison
            np.abs(views.prediction.astype(np.float64) - reference).max())
        scale = float(np.abs(reference).max())
        allowed = budget.max_abs + budget.max_rel * scale
        if error > allowed:
            raise PrecisionError(
                f"{self.precision} compile rejected: probe prediction "
                f"error {error:.3e} exceeds the budget {allowed:.3e} "
                f"(max_abs={budget.max_abs:.3e} + "
                f"max_rel={budget.max_rel:.3e} * scale {scale:.3e})")
        self.probe_report = {
            "precision": self.precision,
            "prediction_max_abs_error": error,
            "prediction_rel_error": error / scale if scale else 0.0,
            "modules": dict(module_errors),
        }

    def _quantize_projections(self) -> None:
        """Per-channel int8 codebooks for the GEMM-dominant projections.

        RevIN/LayerNorm affine parameters and all biases stay float32 —
        they are O(D) and numerically load-bearing; the O(D^2)
        projection matrices are where the weight bytes live.
        """
        table = {"embedding": self._w_emb, "head": self._w_head}
        for index, layer in enumerate(self._layers):
            table[f"layer{index}.query"] = layer.wq
            table[f"layer{index}.key"] = layer.wk
            table[f"layer{index}.value"] = layer.wv
            table[f"layer{index}.out"] = layer.wo
            table[f"layer{index}.ffn1"] = layer.w1
            table[f"layer{index}.ffn2"] = layer.w2
        for name, weight in table.items():
            codes, scales, dequantized = quantize_per_channel(weight)
            self._qweights[name] = (codes, scales)
            self._deq[name] = dequantized
        # The fused-QKV weight is rebuilt from the per-projection
        # reconstructions, so fused and unfused tapes stay bitwise
        # interchangeable under the probe.
        for index in range(len(self._layers)):
            self._deq[f"layer{index}.qkv"] = np.concatenate(
                [self._deq[f"layer{index}.{part}"]
                 for part in ("query", "key", "value")], axis=1)

    # ------------------------------------------------------------------
    # the flat forward
    # ------------------------------------------------------------------
    def _build_tape(self, p: "_Views", need_attention: bool,
                    fused_qkv: bool = False,
                    collapse_gemm: bool = False,
                    precision: str | None = None,
                    audit: dict | None = None) -> list:
        """Record the whole forward as a flat list of pre-bound ops.

        Every argument — weights, scratch views, scalar constants — is
        fixed once the batch binding is known, so the hot path
        degenerates to replaying ``functools.partial`` objects: zero
        Python arithmetic, zero allocation, just ~100 ufunc/GEMM calls
        into preallocated memory.  ``precision`` overrides the engine
        mode (the budget check builds an exact float32 reference tape
        this way); ``audit`` interleaves probe-only per-module error
        checks after each quantized GEMM.
        """
        precision = self.precision if precision is None else precision
        mixed = precision == "mixed"
        quantized = self._deq if precision == "int8" else {}
        # Statistical reductions accumulate in float64 under ``mixed``;
        # everything else (GEMMs included) stays float32.
        acc_dtype = np.float64 if mixed else None
        mean_buf = p.mean64 if mixed else p.mean
        std_buf = p.std64 if mixed else p.std
        red = p.red64 if mixed else p.red
        softmax_sum = p.ssum64 if mixed else p.score_red
        ops: list = []

        # ``out`` rides positionally everywhere a ufunc accepts it (and
        # the reduces bind their full positional signature): per-call
        # keyword parsing costs ~100-200ns per op, which adds up over a
        # ~120-op tape at serve batch sizes near 1.  Positional binding
        # hits the same kernels — arg spelling never changes bits.
        def emit(fn, *args):
            ops.append(partial(fn, *args))

        def emit_reduce(ufunc, src, axis, out, dtype=None):
            # ufunc.reduce(array, axis, dtype, out, keepdims)
            emit(ufunc.reduce, src, axis, dtype, out, True)

        def emit_gemm(src, weight, out, name=None):
            # (B, N, D) @ (D, K) batched matmul, or its (B*N, D) 2-D
            # collapse (same dot products, direct cblas path).  Only
            # buffers with a registered contiguous 2-D alias collapse;
            # transpose views (the embedding input) stay 3-D.  Under
            # int8 the named projections serve from their per-channel
            # dequantized snapshot instead of the float32 original.
            served = quantized.get(name, weight)
            src2, out2 = p.flat2d.get(id(src)), p.flat2d.get(id(out))
            if collapse_gemm and src2 is not None and out2 is not None:
                emit(np.matmul, src2, served, out2)
            else:
                emit(np.matmul, src, served, out)
            if audit is not None and name in quantized:
                # Probe-only: compare against the float32 GEMM on the
                # same live activations (reads buffers at replay time).
                ops.append(partial(_audit_gemm, audit, name, src,
                                   weight, out))

        def emit_mean(src, axis, out, count):
            # np.add.reduce + divide-by-count is exactly what np.mean
            # runs internally — same bits, none of the Python wrapper
            # overhead.  np.var == this mean, a centered square, and
            # the same reduce/divide again.
            emit_reduce(np.add, src, axis, out, acc_dtype)
            emit(np.true_divide, out, count, out)

        def emit_layer_norm(src, gamma, beta, eps):
            # Op-for-op mirror of norm._fused_layer_norm's forward:
            # x_hat = (x - mean) * 1/sqrt(var + eps), then affine.
            # (np.reciprocal is correctly-rounded division, bitwise
            # equal to the module's ``1.0 / sqrt`` — both binary32
            # quotients of the same operands.)
            emit_mean(src, -1, red, self._n_model)
            emit(np.subtract, src, red, p.normed)
            emit(np.multiply, p.normed, p.normed, p.sq_nd)
            emit_mean(p.sq_nd, -1, red, self._n_model)
            emit(np.add, red, eps, red)
            emit(np.sqrt, red, red)
            emit(np.reciprocal, red, red)
            emit(np.multiply, p.normed, red, p.normed)
            emit(np.multiply, p.normed, gamma, p.normed)
            emit(np.add, p.normed, beta, p.normed)

        # RevIN normalize (statistics over time, per instance/variable).
        emit_mean(p.x, 1, mean_buf, self._n_time)
        emit(np.subtract, p.x, mean_buf, p.norm)
        emit(np.multiply, p.norm, p.norm, p.sq_hn)
        emit_mean(p.sq_hn, 1, std_buf, self._n_time)
        emit(np.add, std_buf, self._revin_eps, std_buf)
        emit(np.sqrt, std_buf, std_buf)
        emit(np.divide, p.norm, std_buf, p.norm)
        if self._revin_affine:
            emit(np.multiply, p.norm, self._revin_g, p.norm)
            emit(np.add, p.norm, self._revin_b, p.norm)

        # Inverted embedding: each variable's whole history is one token.
        emit_gemm(p.norm_t, self._w_emb, p.tokens, "embedding")
        emit(np.add, p.tokens, self._b_emb, p.tokens)

        # Pre-LN encoder stack.
        last = len(self._layers) - 1
        for index, layer in enumerate(self._layers):
            emit_layer_norm(p.tokens, layer.ln1_g, layer.ln1_b,
                            layer.ln1_eps)
            if fused_qkv:
                emit_gemm(p.normed, layer.wqkv, p.qkv,
                          f"layer{index}.qkv")
                emit(np.add, p.qkv, layer.bqkv, p.qkv)
                qh, kh_t, vh = p.qh_f, p.kh_tf, p.vh_f
            else:
                emit_gemm(p.normed, layer.wq, p.q3, f"layer{index}.query")
                emit(np.add, p.q3, layer.bq, p.q3)
                emit_gemm(p.normed, layer.wk, p.k3, f"layer{index}.key")
                emit(np.add, p.k3, layer.bk, p.k3)
                emit_gemm(p.normed, layer.wv, p.v3, f"layer{index}.value")
                emit(np.add, p.v3, layer.bv, p.v3)
                qh, kh_t, vh = p.qh, p.kh_t, p.vh
            emit(np.matmul, qh, kh_t, p.scores)
            emit(np.multiply, p.scores, layer.scale, p.scores)
            # Numerically stable softmax, in place.
            emit_reduce(np.maximum, p.scores, -1, p.score_red)
            emit(np.subtract, p.scores, p.score_red, p.scores)
            emit(np.exp, p.scores, p.scores)
            emit_reduce(np.add, p.scores, -1, softmax_sum, acc_dtype)
            emit(np.divide, p.scores, softmax_sum, p.scores)
            if need_attention and index == last:
                # Head average via sum * (1/heads), matching Tensor.mean.
                if mixed:
                    emit(np.add.reduce, p.scores, 1, np.float64, p.att64)
                    emit(np.multiply, p.att64, self._head_mean,
                         p.attention)
                else:
                    emit(np.add.reduce, p.scores, 1, None, p.attention)
                    emit(np.multiply, p.attention, self._head_mean,
                         p.attention)
            emit(np.matmul, p.scores, vh, p.context)
            emit(np.copyto, p.merged4, p.context_t)
            emit_gemm(p.merged, layer.wo, p.sub_out, f"layer{index}.out")
            emit(np.add, p.sub_out, layer.bo, p.sub_out)
            emit(np.add, p.tokens, p.sub_out, p.tokens)

            emit_layer_norm(p.tokens, layer.ln2_g, layer.ln2_b,
                            layer.ln2_eps)
            emit_gemm(p.normed, layer.w1, p.hidden, f"layer{index}.ffn1")
            emit(np.add, p.hidden, layer.b1, p.hidden)
            if layer.activation == "relu":
                # Mirror Tensor.relu's mask-multiply (keeps -0.0 bits).
                emit(np.greater, p.hidden, _ZERO, p.mask)
                emit(np.multiply, p.hidden, p.mask, p.hidden)
            else:
                _emit_gelu(emit, p.hidden, p.gelu_inner)
            emit_gemm(p.hidden, layer.w2, p.sub_out, f"layer{index}.ffn2")
            emit(np.add, p.sub_out, layer.b2, p.sub_out)
            emit(np.add, p.tokens, p.sub_out, p.tokens)

        emit_layer_norm(p.tokens, self._final_g, self._final_b,
                        self._final_eps)

        # Projection head + RevIN de-normalization.
        emit_gemm(p.normed, self._w_head, p.projected, "head")
        emit(np.add, p.projected, self._b_head, p.projected)
        if self._revin_affine:
            emit(np.subtract, p.projected_t, self._revin_b, p.prediction)
            emit(np.divide, p.prediction, self._revin_denom, p.prediction)
        else:
            emit(np.copyto, p.prediction, p.projected_t)
        emit(np.multiply, p.prediction, std_buf, p.prediction)
        emit(np.add, p.prediction, mean_buf, p.prediction)
        return ops


class _Binding:
    """One batch size's view set plus its pre-bound op tapes.

    Cheap by construction — the views alias the engine's shared
    capacity scratch, so a binding owns only Python objects (slices and
    ``partial`` lists).  The attention tape is built lazily: serving
    never asks for it.
    """

    __slots__ = ("views", "tape", "tape_attention")

    def __init__(self, views: "_Views", tape: list):
        self.views = views
        self.tape = tape
        self.tape_attention: list | None = None


class _Views:
    """Stride-adjusted scratch views for one batch size ``B``.

    Every buffer is the first-``B``-rows slice of a shared
    capacity-sized allocation: a ``[:B]`` slice of a C-contiguous array
    has exactly the strides and contiguity of a dedicated ``(B, ...)``
    buffer, so ufunc/GEMM kernel selection — and therefore the bits —
    match a per-batch-shape allocation while the memory stays one
    high-water-mark block shared by all bindings.
    """

    __slots__ = ("x", "mean", "std", "norm", "norm_t", "sq_hn", "tokens",
                 "normed", "red", "sq_nd", "q3", "k3", "v3", "qh", "kh_t",
                 "vh", "qkv", "qh_f", "kh_tf", "vh_f", "scores",
                 "score_red", "context", "context_t", "merged", "merged4",
                 "sub_out", "hidden", "mask", "gelu_inner", "attention",
                 "projected", "projected_t", "prediction", "flat2d",
                 "mean64", "std64", "red64", "ssum64", "att64")

    def __init__(self, engine: "CompiledStudent", B: int):
        C = engine._capacity
        if not 1 <= B <= C:
            raise ValueError(f"batch {B} outside capacity {C}")
        H, N = engine.history_length, engine.num_variables
        D, M = engine.d_model, engine.horizon
        heads, hd = engine.num_heads, engine.head_dim
        F = engine.ffn_dim
        pool = engine._pool
        take = lambda name, *tail, dtype=np.float32: \
            pool.take(name, (C, *tail), dtype)[:B]  # noqa: E731
        self.x = take("x", H, N)
        self.mean = take("mean", 1, N)
        self.std = take("std", 1, N)
        self.norm = take("norm", H, N)
        self.norm_t = self.norm.transpose(0, 2, 1)
        self.sq_hn = take("sq_hn", H, N)
        self.tokens = take("tokens", N, D)
        self.normed = take("normed", N, D)
        self.red = take("red", N, 1)
        self.sq_nd = take("sq_nd", N, D)
        self.q3 = take("q3", N, D)
        self.k3 = take("k3", N, D)
        self.v3 = take("v3", N, D)
        self.qh = self.q3.reshape(B, N, heads, hd).transpose(0, 2, 1, 3)
        self.kh_t = (self.k3.reshape(B, N, heads, hd)
                     .transpose(0, 2, 1, 3).transpose(0, 1, 3, 2))
        self.vh = self.v3.reshape(B, N, heads, hd).transpose(0, 2, 1, 3)
        # Fused-QKV variant: one (B, N, 3D) buffer, head views striding
        # through its q/k/v thirds (adopted only if the probe passes).
        self.qkv = take("qkv", N, 3 * D)
        split = lambda start: (self.qkv[..., start:start + D]  # noqa: E731
                               .reshape(B, N, heads, hd).transpose(0, 2, 1, 3))
        self.qh_f = split(0)
        self.kh_tf = split(D).transpose(0, 1, 3, 2)
        self.vh_f = split(2 * D)
        self.scores = take("scores", heads, N, N)
        self.score_red = take("score_red", heads, N, 1)
        self.context = take("context", heads, N, hd)
        self.context_t = self.context.transpose(0, 2, 1, 3)
        self.merged = take("merged", N, D)
        self.merged4 = self.merged.reshape(B, N, heads, hd)
        self.sub_out = take("sub_out", N, D)
        self.hidden = take("hidden", N, F)
        self.mask = take("mask", N, F, dtype=bool)
        self.gelu_inner = (take("gelu_inner", N, F)
                           if any(layer.activation != "relu"
                                  for layer in engine._layers) else None)
        self.attention = take("attention", N, N)
        self.projected = take("projected", N, M)
        self.projected_t = self.projected.transpose(0, 2, 1)
        self.prediction = take("prediction", M, N)
        # Float64 accumulators for the ``mixed`` precision mode (the
        # statistical reductions run through these; everything else
        # stays float32).  Unallocated outside mixed mode.
        if engine.precision == "mixed":
            # Mixed mode exists precisely to run the statistical
            # reductions through float64 accumulators.
            # repro: allow[dtype-hygiene] — sanctioned wide dtype
            take64 = partial(take, dtype=np.float64)
            self.mean64 = take64("mean64", 1, N)
            self.std64 = take64("std64", 1, N)
            self.red64 = take64("red64", N, 1)
            self.ssum64 = take64("ssum64", heads, N, 1)
            self.att64 = take64("att64", N, N)
        else:
            self.mean64 = self.std64 = self.red64 = None
            self.ssum64 = self.att64 = None
        # Contiguous 2-D aliases for the collapsed-GEMM tape variant:
        # (B, N, K) @ (D, K) weight matmuls become one (B*N, K) GEMM.
        # Transpose views (norm_t, context_t, projected_t) have none —
        # GEMMs touching them always stay 3-D.
        self.flat2d = {id(b): b.reshape(B * N, b.shape[-1])
                       for b in (self.tokens, self.normed, self.q3, self.k3,
                                 self.v3, self.qkv, self.merged,
                                 self.sub_out, self.hidden, self.projected)}


_GELU_CUBIC = _const(0.044715)
_GELU_SQRT_2_OVER_PI = _const(math.sqrt(2.0 / math.pi))
_GELU_ONE = _const(1.0)
_GELU_HALF = _const(0.5)


def _emit_gelu(emit, x: np.ndarray, inner: np.ndarray) -> None:
    """Tanh-approximation GELU mirroring ``repro.nn.functional.gelu``."""
    emit(np.multiply, x, x, inner)
    emit(np.multiply, inner, x, inner)
    emit(np.multiply, inner, _GELU_CUBIC, inner)
    emit(np.add, x, inner, inner)
    emit(np.multiply, inner, _GELU_SQRT_2_OVER_PI, inner)
    emit(np.tanh, inner, inner)
    emit(np.add, inner, _GELU_ONE, inner)
    emit(np.multiply, x, _GELU_HALF, x)
    emit(np.multiply, x, inner, x)
