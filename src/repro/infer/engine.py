"""Tape-free compiled forward for the student hot path.

:class:`CompiledStudent` exports a fitted
:class:`~repro.core.student.StudentModel` into a flat, pure-numpy
forward: no :class:`~repro.nn.tensor.Tensor` objects, no graph
bookkeeping (not even the ``no_grad`` variety), per-batch-shape scratch
buffers reused across calls, and in-place ufuncs throughout.  The
last-layer attention head-average — a distillation-only output — is
skipped entirely unless requested.

The engine's contract is **bitwise parity** with the module forward:
every numpy operation below mirrors the exact op sequence, operand
dtypes and memory layouts of the ``Module`` path (``RevIN`` →
inverted embedding → Pre-LN encoder → head → de-normalization), so
``CompiledStudent.predict`` and ``StudentModel.predict`` return
identical bytes for identical inputs.  That is what lets the serve and
stream layers swap engines freely: the replay/parity harnesses keep
holding.

Weights are *donated* (see :mod:`repro.nn.buffers`): the engine shares
the module's backing arrays by default, so compiling is cheap.  Derived
constants (the RevIN denominator, the probe-verified fused QKV
projection) are snapshotted at compile time — rebuild the engine after
mutating weights in place (``TimeKDForecaster.compile(force=True)``).
"""

from __future__ import annotations

import math
import threading
from functools import partial

import numpy as np

from ..nn.buffers import ScratchPool, donate

__all__ = ["ENGINES", "CompiledStudent", "compile_student", "resolve_engine"]

#: Inference engines understood by the serving stack and the CLI.
ENGINES = ("module", "compiled")

#: Float32 zero, pre-wrapped so the ReLU mask compare skips per-call
#: scalar conversion (same compare as ``Tensor.relu``'s ``data > 0``).
_ZERO = np.asarray(0.0, dtype=np.float32)


def resolve_engine(engine: str) -> str:
    """Validate an engine name; returns it unchanged."""
    if engine not in ENGINES:
        raise ValueError(
            f"unknown inference engine {engine!r}; choose from {ENGINES}")
    return engine


def compile_student(student, copy_weights: bool = False) -> "CompiledStudent":
    """Convenience wrapper around :class:`CompiledStudent`."""
    return CompiledStudent(student, copy_weights=copy_weights)


def _const(value) -> np.ndarray:
    """A float32 0-d array constant.

    Ufunc dispatch converts python/numpy scalars on every call; a 0-d
    array of the operand dtype passes straight through (~100ns saved per
    op).  Same dtype, same kernel, same bits as the scalar it replaces.
    """
    return np.asarray(value, dtype=np.float32)


class _LayerWeights:
    """Donated weights of one Pre-LN encoder layer, flat and contiguous."""

    __slots__ = ("ln1_g", "ln1_b", "ln1_eps", "wq", "bq", "wk", "bk",
                 "wv", "bv", "wo", "bo", "wqkv", "bqkv", "scale",
                 "ln2_g", "ln2_b", "ln2_eps", "w1", "b1", "w2", "b2",
                 "activation")

    def __init__(self, layer, copy: bool):
        w = lambda p: donate(p.data, copy=copy)  # noqa: E731 — local alias
        self.ln1_g, self.ln1_b = w(layer.norm1.gamma), w(layer.norm1.beta)
        self.ln1_eps = _const(layer.norm1.eps)
        attention = layer.attention
        self.wq, self.bq = w(attention.q_proj.weight), w(attention.q_proj.bias)
        self.wk, self.bk = w(attention.k_proj.weight), w(attention.k_proj.bias)
        self.wv, self.bv = w(attention.v_proj.weight), w(attention.v_proj.bias)
        self.wo, self.bo = w(attention.out_proj.weight), w(attention.out_proj.bias)
        # Concatenated projections for the probe-verified fused-QKV
        # tape (one (D, 3D) GEMM instead of three).  Snapshots, not
        # donations — recompile after in-place weight updates.
        self.wqkv = np.concatenate([self.wq, self.wk, self.wv], axis=1)
        self.bqkv = np.concatenate([self.bq, self.bk, self.bv])
        # The module path coerces the python-float scale into a float32
        # scalar tensor; pre-cast once so the multiply matches bitwise.
        self.scale = _const(1.0 / math.sqrt(attention.head_dim))
        self.ln2_g, self.ln2_b = w(layer.norm2.gamma), w(layer.norm2.beta)
        self.ln2_eps = _const(layer.norm2.eps)
        self.w1, self.b1 = w(layer.ffn.fc1.weight), w(layer.ffn.fc1.bias)
        self.w2, self.b2 = w(layer.ffn.fc2.weight), w(layer.ffn.fc2.bias)
        self.activation = layer.ffn.activation


class CompiledStudent:
    """Flat numpy forward of a fitted student, bitwise-equal to the module.

    Parameters
    ----------
    student:
        A :class:`~repro.core.student.StudentModel` (typically in eval
        mode; the compiled forward is always deterministic — dropout
        does not exist here).
    copy_weights:
        Snapshot the weights instead of sharing the module's buffers.
        Leave off for serving, where weights are fixed after load (zero
        copies).  Either way, derived constants (fused QKV, the RevIN
        denominator) are compile-time snapshots: recompile after any
        weight update.

    One engine instance is internally locked: concurrent ``predict``
    calls serialize on the shared scratch buffers.  Returned arrays are
    fresh copies — they never alias the scratch pool.
    """

    def __init__(self, student, copy_weights: bool = False):
        config = student.config
        self.config = config
        self.history_length = config.history_length
        self.horizon = config.horizon
        self.num_variables = config.num_variables
        self.num_heads = config.num_heads
        self.head_dim = config.d_model // config.num_heads
        self.d_model = config.d_model
        self.ffn_dim = student.encoder.layers[0].ffn.fc1.out_features

        w = lambda p: donate(p.data, copy=copy_weights)  # noqa: E731
        revin = student.revin
        self._revin_affine = revin.affine
        self._revin_eps = _const(revin.eps)
        if revin.affine:
            self._revin_g, self._revin_b = w(revin.gamma), w(revin.beta)
            # The module recomputes ``gamma + eps`` per call through a
            # float32 scalar coercion; hoist it out of the hot path.
            self._revin_denom = self._revin_g + self._revin_eps
        else:
            self._revin_g = self._revin_b = self._revin_denom = None
        self._w_emb = w(student.inverted_embedding.weight)
        self._b_emb = w(student.inverted_embedding.bias)
        self._layers = [_LayerWeights(layer, copy_weights)
                        for layer in student.encoder.layers]
        self._final_g = w(student.encoder.final_norm.gamma)
        self._final_b = w(student.encoder.final_norm.beta)
        self._final_eps = _const(student.encoder.final_norm.eps)
        self._w_head = w(student.head.weight)
        self._b_head = w(student.head.bias)
        # Tensor.mean multiplies by a float32-coerced ``1/heads``.
        self._head_mean = _const(1.0 / self.num_heads)
        # np.mean/np.var divide their float32 sums by an intp count
        # through a float64 loop.  A float32-scalar divide is bitwise
        # identical (float64→float32 double rounding is innocuous for
        # binary32 division — 52 >= 2*24+2 significand bits, Figueroa
        # 1995) and skips the mixed-dtype buffered path.
        self._n_time = _const(self.history_length)
        self._n_model = _const(self.d_model)
        self._window_shape = (self.history_length, self.num_variables)

        self._pool = ScratchPool()
        self._plans: dict[int, _BatchPlan] = {}
        self._lock = threading.Lock()
        #: Forward-call / window counters (monitoring + benchmarks).
        self.calls = 0
        self.windows = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def predict(self, history: np.ndarray) -> np.ndarray:
        """Forecast ``(B, M, N)`` from history windows ``(B, H, N)``.

        Mirrors ``StudentModel.predict``: numpy in, numpy out, a single
        ``(H, N)`` window is promoted to batch size 1 (the result keeps
        the leading batch axis, exactly like the module path).
        """
        return self.forward(history)[0]

    def forward(self, history: np.ndarray, need_attention: bool = False):
        """Run the compiled forward; returns ``(prediction, attention)``.

        ``attention`` is the head-averaged last-layer map ``(B, N, N)``
        when requested, else ``None`` — and when it is not requested its
        computation is skipped entirely, not just discarded.
        """
        x = self._check_input(history)
        with self._lock:
            self.calls += 1
            self.windows += x.shape[0]
            p = self._plan(x.shape[0])
            np.copyto(p.x, x)
            for op in (p.tape_attention if need_attention else p.tape):
                op()
            # Scratch buffers are recycled next call — hand out copies.
            return (p.prediction.copy(),
                    p.attention.copy() if need_attention else None)

    def _check_input(self, history: np.ndarray) -> np.ndarray:
        x = np.asarray(history, dtype=np.float32)
        if x.ndim == 2:
            x = x.reshape(1, *x.shape)
        if x.ndim != 3 or x.shape[1:] != self._window_shape:
            raise ValueError(
                f"expected history of shape (B, {self.history_length}, "
                f"{self.num_variables}), got {np.shape(history)}")
        return x

    @property
    def scratch_nbytes(self) -> int:
        """Bytes held by the per-batch-shape scratch buffers."""
        return self._pool.nbytes

    def release_scratch(self) -> None:
        """Free all scratch buffers (they regrow on the next call)."""
        with self._lock:
            self._plans.clear()
            self._pool.clear()

    # ------------------------------------------------------------------
    # the flat forward
    # ------------------------------------------------------------------
    def _plan(self, B: int) -> "_BatchPlan":
        plan = self._plans.get(B)
        if plan is None:
            plan = _BatchPlan(self, B, self._pool)
            plan.tape = self._build_tape(plan, need_attention=False)
            plan.tape_attention = self._build_tape(plan, need_attention=True)
            self._optimize_tapes(plan)
            self._plans[B] = plan
        return plan

    def _optimize_tapes(self, plan: "_BatchPlan") -> None:
        """Adopt the fastest tape variant a probe proves bitwise-equal.

        Two verified transforms: *fused QKV* (one GEMM against the
        concatenated ``(D, 3D)`` projection instead of three) and
        *collapsed GEMM* (``(B*N, D)`` 2-D views instead of batched 3-D
        matmul, hitting the direct cblas path).  Both only reorganize
        the same per-element dot products, but BLAS/ufunc kernel
        selection depends on shapes and strides — and those selections
        are value-independent, so running each candidate once on a
        random probe input and comparing bytes against the reference
        tape is a sound equivalence check.  On the slightest mismatch
        the reference stays.
        """
        probe = np.random.default_rng(0).standard_normal(
            plan.x.shape).astype(np.float32)
        np.copyto(plan.x, probe)
        for op in plan.tape_attention:
            op()
        reference = plan.prediction.copy()
        reference_attention = plan.attention.copy()
        for fused, collapsed in ((True, True), (True, False), (False, True)):
            candidate = self._build_tape(plan, True, fused_qkv=fused,
                                         collapse_gemm=collapsed)
            np.copyto(plan.x, probe)
            for op in candidate:
                op()
            if (plan.prediction.tobytes() == reference.tobytes()
                    and plan.attention.tobytes()
                    == reference_attention.tobytes()):
                plan.tape_attention = candidate
                plan.tape = self._build_tape(plan, False, fused_qkv=fused,
                                             collapse_gemm=collapsed)
                return

    def _build_tape(self, p: "_BatchPlan", need_attention: bool,
                    fused_qkv: bool = False,
                    collapse_gemm: bool = False) -> list:
        """Record the whole forward as a flat list of pre-bound ops.

        Every argument — weights, scratch buffers, views, scalar
        constants — is fixed once the batch shape is known, so the hot
        path degenerates to replaying ``functools.partial`` objects:
        zero Python arithmetic, zero allocation, just ~100 ufunc/GEMM
        calls into preallocated memory.
        """
        ops: list = []

        # ``out`` rides positionally everywhere a ufunc accepts it (and
        # the reduces bind their full positional signature): per-call
        # keyword parsing costs ~100-200ns per op, which adds up over a
        # ~120-op tape at serve batch sizes near 1.  Positional binding
        # hits the same kernels — arg spelling never changes bits.
        def emit(fn, *args):
            ops.append(partial(fn, *args))

        def emit_reduce(ufunc, src, axis, out):
            # ufunc.reduce(array, axis, dtype, out, keepdims)
            emit(ufunc.reduce, src, axis, None, out, True)

        def emit_gemm(src, w, out):
            # (B, N, D) @ (D, K) batched matmul, or its (B*N, D) 2-D
            # collapse (same dot products, direct cblas path).  Only
            # buffers with a registered contiguous 2-D alias collapse;
            # transpose views (the embedding input) stay 3-D.
            src2, out2 = p.flat2d.get(id(src)), p.flat2d.get(id(out))
            if collapse_gemm and src2 is not None and out2 is not None:
                src, out = src2, out2
            emit(np.matmul, src, w, out)

        def emit_mean(src, axis, out, count):
            # np.add.reduce + divide-by-count is exactly what np.mean
            # runs internally — same bits, none of the Python wrapper
            # overhead.  np.var == this mean, a centered square, and
            # the same reduce/divide again.
            emit_reduce(np.add, src, axis, out)
            emit(np.true_divide, out, count, out)

        def emit_layer_norm(src, gamma, beta, eps):
            # Op-for-op mirror of norm._fused_layer_norm's forward:
            # x_hat = (x - mean) * 1/sqrt(var + eps), then affine.
            # (np.reciprocal is correctly-rounded division, bitwise
            # equal to the module's ``1.0 / sqrt`` — both binary32
            # quotients of the same operands.)
            emit_mean(src, -1, p.red, self._n_model)
            emit(np.subtract, src, p.red, p.normed)
            emit(np.multiply, p.normed, p.normed, p.sq_nd)
            emit_mean(p.sq_nd, -1, p.red, self._n_model)
            emit(np.add, p.red, eps, p.red)
            emit(np.sqrt, p.red, p.red)
            emit(np.reciprocal, p.red, p.red)
            emit(np.multiply, p.normed, p.red, p.normed)
            emit(np.multiply, p.normed, gamma, p.normed)
            emit(np.add, p.normed, beta, p.normed)

        # RevIN normalize (statistics over time, per instance/variable).
        emit_mean(p.x, 1, p.mean, self._n_time)
        emit(np.subtract, p.x, p.mean, p.norm)
        emit(np.multiply, p.norm, p.norm, p.sq_hn)
        emit_mean(p.sq_hn, 1, p.std, self._n_time)
        emit(np.add, p.std, self._revin_eps, p.std)
        emit(np.sqrt, p.std, p.std)
        emit(np.divide, p.norm, p.std, p.norm)
        if self._revin_affine:
            emit(np.multiply, p.norm, self._revin_g, p.norm)
            emit(np.add, p.norm, self._revin_b, p.norm)

        # Inverted embedding: each variable's whole history is one token.
        emit_gemm(p.norm_t, self._w_emb, p.tokens)
        emit(np.add, p.tokens, self._b_emb, p.tokens)

        # Pre-LN encoder stack.
        last = len(self._layers) - 1
        for index, layer in enumerate(self._layers):
            emit_layer_norm(p.tokens, layer.ln1_g, layer.ln1_b,
                            layer.ln1_eps)
            if fused_qkv:
                emit_gemm(p.normed, layer.wqkv, p.qkv)
                emit(np.add, p.qkv, layer.bqkv, p.qkv)
                qh, kh_t, vh = p.qh_f, p.kh_tf, p.vh_f
            else:
                emit_gemm(p.normed, layer.wq, p.q3)
                emit(np.add, p.q3, layer.bq, p.q3)
                emit_gemm(p.normed, layer.wk, p.k3)
                emit(np.add, p.k3, layer.bk, p.k3)
                emit_gemm(p.normed, layer.wv, p.v3)
                emit(np.add, p.v3, layer.bv, p.v3)
                qh, kh_t, vh = p.qh, p.kh_t, p.vh
            emit(np.matmul, qh, kh_t, p.scores)
            emit(np.multiply, p.scores, layer.scale, p.scores)
            # Numerically stable softmax, in place.
            emit_reduce(np.maximum, p.scores, -1, p.score_red)
            emit(np.subtract, p.scores, p.score_red, p.scores)
            emit(np.exp, p.scores, p.scores)
            emit_reduce(np.add, p.scores, -1, p.score_red)
            emit(np.divide, p.scores, p.score_red, p.scores)
            if need_attention and index == last:
                # Head average via sum * (1/heads), matching Tensor.mean.
                emit(np.add.reduce, p.scores, 1, None, p.attention)
                emit(np.multiply, p.attention, self._head_mean,
                     p.attention)
            emit(np.matmul, p.scores, vh, p.context)
            emit(np.copyto, p.merged4, p.context_t)
            emit_gemm(p.merged, layer.wo, p.sub_out)
            emit(np.add, p.sub_out, layer.bo, p.sub_out)
            emit(np.add, p.tokens, p.sub_out, p.tokens)

            emit_layer_norm(p.tokens, layer.ln2_g, layer.ln2_b,
                            layer.ln2_eps)
            emit_gemm(p.normed, layer.w1, p.hidden)
            emit(np.add, p.hidden, layer.b1, p.hidden)
            if layer.activation == "relu":
                # Mirror Tensor.relu's mask-multiply (keeps -0.0 bits).
                emit(np.greater, p.hidden, _ZERO, p.mask)
                emit(np.multiply, p.hidden, p.mask, p.hidden)
            else:
                _emit_gelu(emit, p.hidden, p.gelu_inner)
            emit_gemm(p.hidden, layer.w2, p.sub_out)
            emit(np.add, p.sub_out, layer.b2, p.sub_out)
            emit(np.add, p.tokens, p.sub_out, p.tokens)

        emit_layer_norm(p.tokens, self._final_g, self._final_b,
                        self._final_eps)

        # Projection head + RevIN de-normalization.
        emit_gemm(p.normed, self._w_head, p.projected)
        emit(np.add, p.projected, self._b_head, p.projected)
        if self._revin_affine:
            emit(np.subtract, p.projected_t, self._revin_b, p.prediction)
            emit(np.divide, p.prediction, self._revin_denom, p.prediction)
        else:
            emit(np.copyto, p.prediction, p.projected_t)
        emit(np.multiply, p.prediction, p.std, p.prediction)
        emit(np.add, p.prediction, p.mean, p.prediction)
        return ops


class _BatchPlan:
    """Scratch buffers, fixed views and op tapes for one batch size.

    Built once per batch shape from the engine's :class:`ScratchPool`
    and reused on every subsequent call with that shape — the steady
    state of a serving loop allocates nothing.
    """

    __slots__ = ("x", "mean", "std", "norm", "norm_t", "sq_hn", "tokens",
                 "normed", "red", "sq_nd", "q3", "k3", "v3", "qh", "kh_t",
                 "vh", "qkv", "qh_f", "kh_tf", "vh_f", "scores",
                 "score_red", "context", "context_t", "merged", "merged4",
                 "sub_out", "hidden", "mask", "gelu_inner", "attention",
                 "projected", "projected_t", "prediction", "flat2d", "tape",
                 "tape_attention")

    def __init__(self, engine: "CompiledStudent", B: int, pool: ScratchPool):
        H, N = engine.history_length, engine.num_variables
        D, M = engine.d_model, engine.horizon
        heads, hd = engine.num_heads, engine.head_dim
        F = engine.ffn_dim
        take = lambda name, shape, dtype=np.float32: \
            pool.take(f"{name}@{B}", shape, dtype)  # noqa: E731
        self.x = take("x", (B, H, N))
        self.mean = take("mean", (B, 1, N))
        self.std = take("std", (B, 1, N))
        self.norm = take("norm", (B, H, N))
        self.norm_t = self.norm.transpose(0, 2, 1)
        self.sq_hn = take("sq_hn", (B, H, N))
        self.tokens = take("tokens", (B, N, D))
        self.normed = take("normed", (B, N, D))
        self.red = take("red", (B, N, 1))
        self.sq_nd = take("sq_nd", (B, N, D))
        self.q3 = take("q3", (B, N, D))
        self.k3 = take("k3", (B, N, D))
        self.v3 = take("v3", (B, N, D))
        self.qh = self.q3.reshape(B, N, heads, hd).transpose(0, 2, 1, 3)
        self.kh_t = (self.k3.reshape(B, N, heads, hd)
                     .transpose(0, 2, 1, 3).transpose(0, 1, 3, 2))
        self.vh = self.v3.reshape(B, N, heads, hd).transpose(0, 2, 1, 3)
        # Fused-QKV variant: one (B, N, 3D) buffer, head views striding
        # through its q/k/v thirds (adopted only if the probe passes).
        self.qkv = take("qkv", (B, N, 3 * D))
        split = lambda start: (self.qkv[..., start:start + D]  # noqa: E731
                               .reshape(B, N, heads, hd).transpose(0, 2, 1, 3))
        self.qh_f = split(0)
        self.kh_tf = split(D).transpose(0, 1, 3, 2)
        self.vh_f = split(2 * D)
        self.scores = take("scores", (B, heads, N, N))
        self.score_red = take("score_red", (B, heads, N, 1))
        self.context = take("context", (B, heads, N, hd))
        self.context_t = self.context.transpose(0, 2, 1, 3)
        self.merged = take("merged", (B, N, D))
        self.merged4 = self.merged.reshape(B, N, heads, hd)
        self.sub_out = take("sub_out", (B, N, D))
        self.hidden = take("hidden", (B, N, F))
        self.mask = take("mask", (B, N, F), dtype=bool)
        self.gelu_inner = (take("gelu_inner", (B, N, F))
                           if any(layer.activation != "relu"
                                  for layer in engine._layers) else None)
        self.attention = take("attention", (B, N, N))
        self.projected = take("projected", (B, N, M))
        self.projected_t = self.projected.transpose(0, 2, 1)
        self.prediction = take("prediction", (B, M, N))
        # Contiguous 2-D aliases for the collapsed-GEMM tape variant:
        # (B, N, K) @ (D, K) weight matmuls become one (B*N, K) GEMM.
        # Transpose views (norm_t, context_t, projected_t) have none —
        # GEMMs touching them always stay 3-D.
        self.flat2d = {id(b): b.reshape(B * N, b.shape[-1])
                       for b in (self.tokens, self.normed, self.q3, self.k3,
                                 self.v3, self.qkv, self.merged,
                                 self.sub_out, self.hidden, self.projected)}
        self.tape: list | None = None
        self.tape_attention: list | None = None


_GELU_CUBIC = _const(0.044715)
_GELU_SQRT_2_OVER_PI = _const(math.sqrt(2.0 / math.pi))
_GELU_ONE = _const(1.0)
_GELU_HALF = _const(0.5)


def _emit_gelu(emit, x: np.ndarray, inner: np.ndarray) -> None:
    """Tanh-approximation GELU mirroring ``repro.nn.functional.gelu``."""
    emit(np.multiply, x, x, inner)
    emit(np.multiply, inner, x, inner)
    emit(np.multiply, inner, _GELU_CUBIC, inner)
    emit(np.add, x, inner, inner)
    emit(np.multiply, inner, _GELU_SQRT_2_OVER_PI, inner)
    emit(np.tanh, inner, inner)
    emit(np.add, inner, _GELU_ONE, inner)
    emit(np.multiply, x, _GELU_HALF, x)
    emit(np.multiply, x, inner, x)
