"""``repro.infer`` — tape-free compiled inference engines.

The paper's efficiency claim (Section IV-E) is that *only the
lightweight student* runs at inference.  This package takes that to its
conclusion: :class:`CompiledStudent` exports a fitted student into a
flat, pure-numpy forward — no autograd tensors, no graph bookkeeping,
one shape-polymorphic scratch plan serving every batch size up to a
high-water capacity, and distillation-only outputs (the last-layer
attention average) skipped unless requested — while staying **bitwise
identical** to the module forward in its default ``float32`` mode.

Every inference consumer accepts an ``engine`` selector from
:data:`ENGINES` (``"module"`` | ``"compiled"``):
``TimeKDForecaster.predict``/``evaluate``, ``evaluate_student``,
``ForecastService`` (and therefore ``StreamingForecaster``), and the
``predict``/``serve``/``stream``/``evaluate`` CLI subcommands via
``--engine``.  The compiled engine additionally accepts a ``precision``
mode from :data:`PRECISIONS` (``"float32"`` | ``"mixed"`` | ``"int8"``),
with the reduced-precision modes gated behind a compile-time
:class:`ErrorBudget` — exceeding the declared tolerance raises
:class:`PrecisionError` instead of serving degraded forecasts.
"""

from .engine import (ENGINES, PRECISIONS, CompiledStudent, ErrorBudget,
                     PrecisionError, compile_student, resolve_engine,
                     resolve_precision)

__all__ = ["ENGINES", "PRECISIONS", "CompiledStudent", "ErrorBudget",
           "PrecisionError", "compile_student", "resolve_engine",
           "resolve_precision"]
