"""``repro.infer`` — tape-free compiled inference engines.

The paper's efficiency claim (Section IV-E) is that *only the
lightweight student* runs at inference.  This package takes that to its
conclusion: :class:`CompiledStudent` exports a fitted student into a
flat, pure-numpy forward — no autograd tensors, no graph bookkeeping,
preallocated per-batch-shape scratch, and distillation-only outputs
(the last-layer attention average) skipped unless requested — while
staying **bitwise identical** to the module forward.

Every inference consumer accepts an ``engine`` selector from
:data:`ENGINES` (``"module"`` | ``"compiled"``):
``TimeKDForecaster.predict``/``evaluate``, ``evaluate_student``,
``ForecastService`` (and therefore ``StreamingForecaster``), and the
``predict``/``serve``/``stream``/``evaluate`` CLI subcommands via
``--engine``.
"""

from .engine import ENGINES, CompiledStudent, compile_student, resolve_engine

__all__ = ["ENGINES", "CompiledStudent", "compile_student", "resolve_engine"]
