"""Replay harness: stream a recorded series tick-by-tick.

:func:`replay` feeds any value matrix (e.g. a
:class:`~repro.data.series.MultivariateTimeSeries` segment) through a
:class:`~repro.stream.forecaster.StreamingForecaster` one tick at a
time, exactly as a live feed would, and collects every issued forecast.
:func:`verify_parity` then recomputes each forecast through the offline
batch path — ``service.predict`` on the pre-cut window — and demands
**bitwise identity**.  This is the correctness anchor of the streaming
subsystem: ring buffers, cadence logic and queue routing may only ever
change *when* a forecast happens, never its value.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..data.series import MultivariateTimeSeries
from .forecaster import StreamingForecaster

__all__ = ["ReplayParityError", "ReplayReport", "replay", "verify_parity"]


class ReplayParityError(AssertionError):
    """A replayed forecast diverged from the offline batch path."""


@dataclass
class ReplayReport:
    """Everything one replay run produced.

    ``forecasts`` maps the 0-based tick index at which a forecast was
    issued to its resolved ``(M, N)`` prediction; tick ``i`` sees the
    window ``values[i - input_len + 1 : i + 1]``.
    """

    key: object
    ticks: int
    duration_s: float
    forecasts: dict = field(default_factory=dict)
    stream: dict = field(default_factory=dict)
    service: dict = field(default_factory=dict)
    #: First global tick this run fed (non-zero for resumed replays).
    first_tick: int = 0

    @property
    def ticks_per_second(self) -> float:
        return self.ticks / max(self.duration_s, 1e-9)

    def as_dict(self) -> dict:
        """JSON-friendly summary (forecast arrays reduced to a count)."""
        return {
            "key": list(self.key) if isinstance(self.key, tuple)
            else self.key,
            "ticks": self.ticks,
            "first_tick": self.first_tick,
            "duration_s": self.duration_s,
            "ticks_per_second": self.ticks_per_second,
            "forecasts": len(self.forecasts),
            "stream": self.stream,
            "service": self.service,
        }


def replay(forecaster: StreamingForecaster,
           values: np.ndarray | MultivariateTimeSeries,
           key=("replay", "series"), start: float = 0.0,
           max_ticks: int | None = None,
           first_tick: int = 0) -> ReplayReport:
    """Feed ``values`` through ``forecaster`` tick-by-tick.

    Ticks are spaced by the forecaster's ingest interval starting at
    ``start``; every issued forecast is resolved before the report is
    returned, so ``duration_s`` covers ingestion *and* forecasting —
    the end-to-end rate a live deployment would sustain.

    ``first_tick`` resumes a replay mid-series (after crash recovery):
    ticks ``first_tick .. end`` are fed with their *global* timestamps
    and forecast indices, so a recovered run's report merges seamlessly
    with the pre-crash one.  ``max_ticks`` counts ticks fed by *this*
    call.
    """
    if isinstance(values, MultivariateTimeSeries):
        values = values.values
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError(f"values must be (T, N), got {values.shape}")
    if not 0 <= first_tick <= len(values):
        raise ValueError(
            f"first_tick must be in [0, {len(values)}], got {first_tick}")
    end = (len(values) if max_ticks is None
           else min(first_tick + max_ticks, len(values)))
    interval = forecaster.interval

    futures: dict = {}
    begin = time.perf_counter()
    for i in range(first_tick, end):
        future = forecaster.append(key, start + i * interval, values[i])
        if future is not None:
            futures[i] = future
    forecasts = {i: np.asarray(f.result()) for i, f in futures.items()}
    duration = time.perf_counter() - begin

    snapshot = forecaster.snapshot()
    return ReplayReport(key=key, ticks=end - first_tick,
                        duration_s=duration, forecasts=forecasts,
                        stream=snapshot["stream"],
                        service=snapshot["service"],
                        first_tick=first_tick)


def verify_parity(report: ReplayReport, forecaster: StreamingForecaster,
                  values: np.ndarray | MultivariateTimeSeries) -> int:
    """Assert every replayed forecast equals the offline batch path.

    For each issued tick the pre-cut window is pushed through
    ``service.predict`` — the request/response path PR 2 proved bitwise
    identical to a direct student forward — and compared **bitwise**
    against the streamed forecast.  Returns the number of forecasts
    compared; raises :class:`ReplayParityError` on the first mismatch.

    Only meaningful for gap-free replays without naive fallbacks (both
    intentionally change forecast values).
    """
    if isinstance(values, MultivariateTimeSeries):
        values = values.values
    values = np.asarray(values, dtype=np.float64)
    input_len = forecaster.input_len
    dataset, horizon = forecaster.model_key
    compared = 0
    for tick, streamed in sorted(report.forecasts.items()):
        window = values[tick - input_len + 1: tick + 1]
        offline = forecaster.service.predict(
            window, dataset=dataset, horizon=horizon,
            raw_values=forecaster.raw_values)
        if streamed.shape != offline.shape:
            raise ReplayParityError(
                f"streamed forecast at tick {tick} has shape "
                f"{streamed.shape}, offline batch path produced "
                f"{offline.shape}")
        if not np.array_equal(streamed, offline):
            raise ReplayParityError(
                f"streamed forecast at tick {tick} diverged from the "
                f"offline batch path (max abs diff "
                f"{np.max(np.abs(streamed - offline)):.3e})")
        compared += 1
    return compared
