"""Per-series rolling state: fixed-capacity ring buffer + running stats.

:class:`SeriesState` holds the trailing observations of one streamed
series in a *doubled* ring buffer: every row is written at physical
index ``i`` and ``i + capacity``, so any trailing window of up to
``capacity`` rows is one contiguous slice — :meth:`window` returns a
zero-copy view regardless of where the write head sits.  Appends are
O(1) (two row writes), and Welford-style running mean/std track every
value ever ingested so raw-value streams can be re-scaled consistently
with the bundled :class:`~repro.data.scaler.StandardScaler`.
"""

from __future__ import annotations

import numpy as np

from ..data.scaler import StandardScaler

__all__ = ["SeriesState"]


class SeriesState:
    """Trailing-window buffer for one ``(tenant, series)`` stream.

    Parameters
    ----------
    input_len:
        Window length :meth:`window` serves (the model's ``H``).
    num_variables:
        Variable count ``N`` of each observation row.
    capacity:
        Ring capacity (``>= input_len``); defaults to ``2 * input_len``
        so a window view survives ``capacity - input_len`` further
        appends before its rows are overwritten.
    """

    __slots__ = ("input_len", "num_variables", "capacity", "count",
                 "_buffer", "_mean", "_m2")

    def __init__(self, input_len: int, num_variables: int,
                 capacity: int | None = None):
        if input_len < 1:
            raise ValueError("input_len must be >= 1")
        if num_variables < 1:
            raise ValueError("num_variables must be >= 1")
        if capacity is None:
            capacity = 2 * input_len
        if capacity < input_len:
            raise ValueError(
                f"capacity {capacity} must be >= input_len {input_len}")
        self.input_len = int(input_len)
        self.num_variables = int(num_variables)
        self.capacity = int(capacity)
        #: Total rows ever appended (not capped by capacity).
        self.count = 0
        # Doubled buffer: row t lives at t % capacity AND t % capacity
        # + capacity, making every trailing window contiguous.
        self._buffer = np.empty((2 * self.capacity, self.num_variables),
                                dtype=np.float64)
        self._mean = np.zeros(self.num_variables, dtype=np.float64)
        self._m2 = np.zeros(self.num_variables, dtype=np.float64)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def append(self, row: np.ndarray) -> None:
        """O(1) append of one ``(N,)`` observation."""
        row = np.asarray(row, dtype=np.float64)
        if row.shape != (self.num_variables,):
            raise ValueError(
                f"row must have shape ({self.num_variables},), "
                f"got {row.shape}")
        slot = self.count % self.capacity
        self._buffer[slot] = row
        self._buffer[slot + self.capacity] = row
        self.count += 1
        # Welford update, vectorized across variables.
        delta = row - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (row - self._mean)

    def extend(self, rows: np.ndarray) -> None:
        """Append ``(T, N)`` rows in one vectorized pass."""
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self.num_variables:
            raise ValueError(
                f"rows must have shape (T, {self.num_variables}), "
                f"got {rows.shape}")
        if len(rows) == 0:
            return
        # Only the trailing `capacity` rows can survive this call;
        # earlier ones would be overwritten within it.
        tail = rows[-self.capacity:]
        base = self.count + len(rows) - len(tail)
        slots = (base + np.arange(len(tail))) % self.capacity
        self._buffer[slots] = tail
        self._buffer[slots + self.capacity] = tail
        # Chan et al. parallel-Welford merge of the chunk statistics.
        n_b = len(rows)
        mean_b = rows.mean(axis=0)
        m2_b = ((rows - mean_b) ** 2).sum(axis=0)
        n_a = self.count
        total = n_a + n_b
        delta = mean_b - self._mean
        self._mean += delta * (n_b / total)
        self._m2 += m2_b + delta ** 2 * (n_a * n_b / total)
        self.count = total

    # ------------------------------------------------------------------
    # views and stats
    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """Whether a full ``input_len`` window is available."""
        return self.count >= self.input_len

    def window(self, copy: bool = False) -> np.ndarray:
        """Trailing ``(input_len, N)`` window.

        Zero-copy by default: the returned view stays valid for
        ``capacity - input_len`` further appends, after which its
        oldest rows are overwritten — pass ``copy=True`` (or copy at
        the call site) before handing the window to asynchronous
        consumers.
        """
        return self.tail(self.input_len, copy=copy)

    def tail(self, length: int, copy: bool = False) -> np.ndarray:
        """Trailing ``(length, N)`` rows as a contiguous view."""
        if not 1 <= length <= self.capacity:
            raise ValueError(
                f"length must be in [1, {self.capacity}], got {length}")
        if self.count < length:
            raise ValueError(
                f"series has {self.count} rows, needs {length}")
        start = (self.count - length) % self.capacity
        view = self._buffer[start: start + length]
        return view.copy() if copy else view

    def last(self) -> np.ndarray:
        """Most recent observation row (copy)."""
        return self.tail(1, copy=True)[0]

    @property
    def mean(self) -> np.ndarray:
        """Running per-variable mean over every ingested row."""
        return self._mean.copy()

    @property
    def std(self) -> np.ndarray:
        """Running per-variable population std (``ddof=0``), matching
        :meth:`StandardScaler.fit` semantics."""
        if self.count == 0:
            return np.zeros(self.num_variables, dtype=np.float64)
        return np.sqrt(np.maximum(self._m2 / self.count, 0.0))

    # ------------------------------------------------------------------
    # durable state
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Copy of everything needed to rebuild this state bitwise.

        The full doubled buffer is exported (not just the live window):
        restoring it byte-for-byte keeps every later :meth:`tail` view
        identical to the uninterrupted process, whatever the write head
        position.
        """
        return {
            "input_len": self.input_len,
            "num_variables": self.num_variables,
            "capacity": self.capacity,
            "count": self.count,
            "buffer": self._buffer.copy(),
            "mean": self._mean.copy(),
            "m2": self._m2.copy(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "SeriesState":
        """Rebuild a :class:`SeriesState` from :meth:`export_state`."""
        restored = cls(int(state["input_len"]), int(state["num_variables"]),
                       capacity=int(state["capacity"]))
        buffer = np.asarray(state["buffer"], dtype=np.float64)
        if buffer.shape != restored._buffer.shape:
            raise ValueError(
                f"series buffer has shape {buffer.shape}, expected "
                f"{restored._buffer.shape}")
        count = int(state["count"])
        if count < 0:
            raise ValueError(f"series count must be >= 0, got {count}")
        mean = np.asarray(state["mean"], dtype=np.float64)
        m2 = np.asarray(state["m2"], dtype=np.float64)
        if mean.shape != restored._mean.shape or m2.shape != restored._m2.shape:
            raise ValueError("series running stats have the wrong shape")
        restored._buffer[:] = buffer
        restored._mean[:] = mean
        restored._m2[:] = m2
        restored.count = count
        return restored

    def running_scaler(self, eps: float = 1e-8) -> StandardScaler:
        """A fitted :class:`StandardScaler` from the running statistics.

        The drift path uses this when a series' live distribution walks
        away from the artifact's train-time scaler: re-scaling with the
        stream's own statistics restores z-scored inputs without
        refitting offline.
        """
        if self.count == 0:
            raise RuntimeError("no rows ingested yet")
        std = self.std
        return StandardScaler.from_state({
            "mean": self._mean,
            "std": np.where(std < eps, 1.0, std),
            "eps": np.float64(eps),
        })
