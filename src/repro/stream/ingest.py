"""Online ingestion: timestamp validation, gap detection, fill policies.

:class:`StreamIngestor` is the front door of the streaming subsystem.
It owns one :class:`~repro.stream.state.SeriesState` per ``(tenant,
series)`` key, validates every tick at the boundary (monotonic
timestamps, finite values, aligned intervals), and turns sampling gaps
into explicit policy decisions instead of silent misalignment:

* ``"error"`` — raise :class:`StreamGapError` (default: gaps are bugs);
* ``"ffill"`` — repeat the last observation into the missing ticks;
* ``"interpolate"`` — linearly interpolate between the last observation
  and the arriving one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .state import SeriesState

__all__ = ["GAP_POLICIES", "IngestResult", "StreamError", "StreamGapError",
           "StreamIngestor"]

GAP_POLICIES = ("error", "ffill", "interpolate")

#: Tolerated fractional deviation of a tick from the sampling grid.
_ALIGNMENT_TOLERANCE = 1e-6


class StreamError(ValueError):
    """A tick violated the stream contract (order, shape, finiteness)."""


class StreamGapError(StreamError):
    """Missing ticks under the ``error`` gap policy."""


@dataclass
class IngestResult:
    """What one :meth:`StreamIngestor.append` call did.

    Attributes
    ----------
    observed:
        Rows the caller actually supplied.
    filled:
        Rows synthesized by the gap policy (0 unless a gap occurred).
    rows:
        Total rows written (``observed + filled``).
    """

    observed: int
    filled: int

    @property
    def rows(self) -> int:
        return self.observed + self.filled


@dataclass
class _KeyedStream:
    state: SeriesState
    last_timestamp: float | None = None
    gaps: int = field(default=0)


class StreamIngestor:
    """Validated multi-series ingestion into rolling per-key state.

    Parameters
    ----------
    input_len / num_variables:
        Shape contract for every per-key :class:`SeriesState`.
    interval:
        Expected spacing between consecutive ticks (e.g. the dataset's
        ``frequency_minutes``).  Timestamps must land on this grid.
    policy:
        Gap policy — one of :data:`GAP_POLICIES`.
    max_gap:
        Largest number of *missing* ticks a fill policy will bridge;
        longer outages raise :class:`StreamGapError` even under
        ``ffill``/``interpolate`` (filling hours of data is fiction).
    capacity:
        Ring capacity forwarded to :class:`SeriesState`.
    """

    def __init__(self, input_len: int, num_variables: int, *,
                 interval: float = 1.0, policy: str = "error",
                 max_gap: int = 16, capacity: int | None = None):
        if policy not in GAP_POLICIES:
            raise ValueError(
                f"policy must be one of {GAP_POLICIES}, got {policy!r}")
        if interval <= 0:
            raise ValueError("interval must be positive")
        if max_gap < 0:
            raise ValueError("max_gap must be >= 0")
        self.input_len = int(input_len)
        self.num_variables = int(num_variables)
        self.interval = float(interval)
        self.policy = policy
        self.max_gap = int(max_gap)
        self.capacity = capacity
        self._streams: dict = {}

    # ------------------------------------------------------------------
    # key registry
    # ------------------------------------------------------------------
    def keys(self) -> list:
        return list(self._streams)

    def state(self, key) -> SeriesState:
        """The :class:`SeriesState` for ``key`` (must exist)."""
        try:
            return self._streams[key].state
        except KeyError:
            raise KeyError(f"unknown stream key {key!r}") from None

    def gaps(self, key) -> int:
        """How many gap events ``key`` has hit so far."""
        return self._streams[key].gaps if key in self._streams else 0

    def last_timestamp(self, key) -> float | None:
        stream = self._streams.get(key)
        return None if stream is None else stream.last_timestamp

    def drop(self, key) -> None:
        """Forget a series entirely (state, timestamps, gap counts)."""
        self._streams.pop(key, None)

    # ------------------------------------------------------------------
    # durable state
    # ------------------------------------------------------------------
    def export_key(self, key) -> dict:
        """Durable view of one keyed stream (series + timestamps + gaps)."""
        stream = self._streams.get(key)
        if stream is None:
            raise KeyError(f"unknown stream key {key!r}")
        return {
            "series": stream.state.export_state(),
            "last_timestamp": stream.last_timestamp,
            "gaps": stream.gaps,
        }

    def import_entries(self, entries: dict) -> None:
        """Replace every keyed stream with restored state, atomically.

        ``entries`` maps each key to an :meth:`export_key` payload.  All
        streams are rebuilt and validated against this ingestor's shape
        contract *before* the swap — a bad entry leaves the current
        state untouched.
        """
        rebuilt: dict = {}
        for key, entry in entries.items():
            state = SeriesState.from_state(entry["series"])
            if (state.input_len != self.input_len
                    or state.num_variables != self.num_variables):
                raise ValueError(
                    f"restored series {key!r} has shape contract "
                    f"({state.input_len}, {state.num_variables}), ingestor "
                    f"expects ({self.input_len}, {self.num_variables})")
            last = entry["last_timestamp"]
            rebuilt[key] = _KeyedStream(
                state=state,
                last_timestamp=None if last is None else float(last),
                gaps=int(entry["gaps"]))
        self._streams = rebuilt

    def _stream_for(self, key) -> _KeyedStream:
        stream = self._streams.get(key)
        if stream is None:
            stream = _KeyedStream(SeriesState(
                self.input_len, self.num_variables, capacity=self.capacity))
            self._streams[key] = stream
        return stream

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def append(self, key, timestamp: float,
               values: np.ndarray) -> IngestResult:
        """Ingest one tick (``(N,)``) or a tick run (``(T, N)``).

        A ``(T, N)`` run is interpreted as ``T`` consecutive ticks
        starting at ``timestamp`` — the bulk path for warm-starting a
        series from recent history.

        Raises
        ------
        StreamError
            Non-finite values, wrong shape, non-monotonic or
            grid-misaligned timestamps.
        StreamGapError
            Missing ticks under ``policy="error"``, or a gap longer
            than ``max_gap`` under any policy.
        """
        values = np.asarray(values, dtype=np.float64)
        squeeze = values.ndim == 1
        if squeeze:
            values = values[None]
        if values.ndim != 2 or values.shape[1] != self.num_variables:
            raise StreamError(
                f"values for {key!r} must have shape "
                f"({self.num_variables},) or (T, {self.num_variables}), "
                f"got {values.shape}")
        if len(values) == 0:
            return IngestResult(observed=0, filled=0)
        if not np.isfinite(values).all():
            bad = int((~np.isfinite(values)).sum())
            raise StreamError(
                f"tick at {timestamp} for {key!r} carries {bad} "
                f"non-finite value(s)")

        timestamp = float(timestamp)
        stream = self._stream_for(key)
        filled = 0
        if stream.last_timestamp is not None:
            steps = (timestamp - stream.last_timestamp) / self.interval
            if steps <= 0:
                raise StreamError(
                    f"non-monotonic timestamp for {key!r}: {timestamp} "
                    f"after {stream.last_timestamp}")
            rounded = round(steps)
            if rounded < 1:
                # steps > 0 but rounds to 0: a duplicate tick with
                # float jitter — ingesting it would shift every later
                # window by one row.
                raise StreamError(
                    f"non-monotonic timestamp for {key!r}: {timestamp} "
                    f"advances less than one {self.interval}-interval "
                    f"from {stream.last_timestamp}")
            if abs(steps - rounded) > _ALIGNMENT_TOLERANCE * rounded:
                raise StreamError(
                    f"timestamp {timestamp} for {key!r} is off the "
                    f"{self.interval}-interval grid (last tick "
                    f"{stream.last_timestamp})")
            missing = int(rounded) - 1
            if missing > 0:
                filled = self._fill_gap(key, stream, missing, values[0])
                stream.gaps += 1  # only gaps that were actually handled
        stream.state.extend(values)
        stream.last_timestamp = timestamp + (len(values) - 1) * self.interval
        return IngestResult(observed=len(values), filled=filled)

    def _fill_gap(self, key, stream: _KeyedStream, missing: int,
                  next_row: np.ndarray) -> int:
        if self.policy == "error" or missing > self.max_gap:
            detail = ("" if self.policy == "error"
                      else f" (> max_gap={self.max_gap})")
            raise StreamGapError(
                f"{missing} missing tick(s) for {key!r}{detail}")
        last_row = stream.state.last()
        if self.policy == "ffill":
            fill = np.tile(last_row, (missing, 1))
        else:  # interpolate
            # Rows at fractions 1/(missing+1) ... missing/(missing+1)
            # between the last observation and the arriving one.
            weights = (np.arange(1, missing + 1, dtype=np.float64)
                       / (missing + 1))[:, None]
            fill = last_row[None] * (1.0 - weights) + next_row[None] * weights
        stream.state.extend(fill)
        return missing
