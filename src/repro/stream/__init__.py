"""``repro.stream`` — online ingestion and drift-aware re-forecasting.

The third layer of the serving stack (embedding store → artifact
serving → **streaming**): live ticks flow through a validated
:class:`StreamIngestor` into fixed-capacity per-series ring buffers
(:class:`SeriesState`), a :class:`StreamingForecaster` re-forecasts on
a configurable cadence through the existing
:class:`~repro.serve.ForecastService` micro-batching queue, and a
per-series :class:`DriftMonitor` flags streams whose realized errors
walk away from calibration.  The :func:`replay` harness proves the
whole stack is bitwise identical to offline batch prediction.
"""

from .drift import DriftMonitor
from .forecaster import StreamingForecaster, StreamStats
from .ingest import (
    GAP_POLICIES,
    IngestResult,
    StreamError,
    StreamGapError,
    StreamIngestor,
)
from .replay import ReplayParityError, ReplayReport, replay, verify_parity
from .state import SeriesState

__all__ = [
    "DriftMonitor",
    "StreamingForecaster",
    "StreamStats",
    "GAP_POLICIES",
    "IngestResult",
    "StreamError",
    "StreamGapError",
    "StreamIngestor",
    "ReplayParityError",
    "ReplayReport",
    "replay",
    "verify_parity",
    "SeriesState",
]
