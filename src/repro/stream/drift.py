"""Forecast-quality drift detection for streamed series.

:class:`DriftMonitor` watches the errors between realized ticks and the
forecasts previously issued for them.  It keeps rolling MAE/MSE over a
fixed window, calibrates a reference error level from the first
``calibration`` observations, and runs a one-sided CUSUM on the excess
error above that reference: small persistent degradation accumulates
until the alarm fires, while isolated spikes decay away.  An alarmed
series should be re-scaled (see
:meth:`~repro.stream.state.SeriesState.running_scaler`) or served by a
naive fallback until an operator resets it.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["DriftMonitor"]


class DriftMonitor:
    """Rolling-error tracker with a CUSUM drift alarm.

    Parameters
    ----------
    window:
        Rolling window length for MAE/MSE.
    calibration:
        Number of initial errors used to fix the reference error level.
        No alarm can fire during calibration.
    threshold:
        Alarm fires when the CUSUM statistic exceeds
        ``threshold * reference`` (dimensionless multiple of the
        calibrated error level).
    slack:
        Per-observation allowance, as a fraction of the reference,
        subtracted before accumulating — errors below
        ``(1 + slack) * reference`` drain the statistic.
    """

    __slots__ = ("window", "calibration", "threshold", "slack",
                 "_abs_errors", "_sq_errors", "_count", "_reference",
                 "_cusum", "_alarmed")

    def __init__(self, window: int = 64, calibration: int = 16,
                 threshold: float = 8.0, slack: float = 0.5):
        if window < 1:
            raise ValueError("window must be >= 1")
        if calibration < 1:
            raise ValueError("calibration must be >= 1")
        if threshold <= 0 or slack < 0:
            raise ValueError("threshold must be > 0 and slack >= 0")
        self.window = int(window)
        self.calibration = int(calibration)
        self.threshold = float(threshold)
        self.slack = float(slack)
        self._abs_errors: deque = deque(maxlen=self.window)
        self._sq_errors: deque = deque(maxlen=self.window)
        self._count = 0
        self._reference: float | None = None
        self._cusum = 0.0
        self._alarmed = False

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def update(self, error: float | np.ndarray) -> bool:
        """Record one realized-vs-forecast error; returns alarm state.

        ``error`` may be a scalar or a per-variable vector (averaged
        across variables).  The alarm latches: once drift fires it
        stays set until :meth:`reset`.
        """
        vector = np.asarray(error, dtype=np.float64)
        error = float(np.mean(np.abs(vector)))
        if not np.isfinite(error):
            raise ValueError("drift errors must be finite")
        self._abs_errors.append(error)
        # True per-tick MSE (mean of squared per-variable errors), not
        # the square of the MAE — they differ for vector errors.
        self._sq_errors.append(float(np.mean(vector * vector)))
        self._count += 1
        if self._reference is None:
            if self._count >= self.calibration:
                # Floor avoids a zero reference (perfect calibration
                # errors) turning any later error into an instant alarm.
                self._reference = max(
                    float(np.mean(self._abs_errors)), 1e-12)
            return self._alarmed
        excess = error - (1.0 + self.slack) * self._reference
        self._cusum = max(0.0, self._cusum + excess)
        if self._cusum > self.threshold * self._reference:
            self._alarmed = True
        return self._alarmed

    def reset(self) -> None:
        """Clear the alarm and re-calibrate from scratch."""
        self._abs_errors.clear()
        self._sq_errors.clear()
        self._count = 0
        self._reference = None
        self._cusum = 0.0
        self._alarmed = False

    # ------------------------------------------------------------------
    # durable state
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Everything needed to resume this monitor bitwise.

        Rolling error windows come back as float64 arrays (newest last);
        the un-calibrated reference is exported as ``None``.
        """
        return {
            "window": self.window,
            "calibration": self.calibration,
            "threshold": self.threshold,
            "slack": self.slack,
            "abs_errors": np.asarray(self._abs_errors, dtype=np.float64),
            "sq_errors": np.asarray(self._sq_errors, dtype=np.float64),
            "count": self._count,
            "reference": self._reference,
            "cusum": self._cusum,
            "alarmed": self._alarmed,
        }

    @classmethod
    def from_state(cls, state: dict) -> "DriftMonitor":
        """Rebuild a :class:`DriftMonitor` from :meth:`export_state`."""
        monitor = cls(window=int(state["window"]),
                      calibration=int(state["calibration"]),
                      threshold=float(state["threshold"]),
                      slack=float(state["slack"]))
        abs_errors = np.asarray(state["abs_errors"], dtype=np.float64)
        sq_errors = np.asarray(state["sq_errors"], dtype=np.float64)
        if abs_errors.shape != sq_errors.shape or abs_errors.ndim != 1:
            raise ValueError("drift error windows must be matching vectors")
        if len(abs_errors) > monitor.window:
            raise ValueError(
                f"drift window holds {len(abs_errors)} errors, "
                f"capacity is {monitor.window}")
        monitor._abs_errors.extend(float(e) for e in abs_errors)
        monitor._sq_errors.extend(float(e) for e in sq_errors)
        monitor._count = int(state["count"])
        reference = state["reference"]
        monitor._reference = None if reference is None else float(reference)
        monitor._cusum = float(state["cusum"])
        monitor._alarmed = bool(state["alarmed"])
        return monitor

    # ------------------------------------------------------------------
    # readouts
    # ------------------------------------------------------------------
    @property
    def alarmed(self) -> bool:
        return self._alarmed

    @property
    def count(self) -> int:
        """Total errors observed since the last reset."""
        return self._count

    @property
    def reference(self) -> float | None:
        """Calibrated reference MAE (``None`` while calibrating)."""
        return self._reference

    @property
    def rolling_mae(self) -> float:
        return float(np.mean(self._abs_errors)) if self._abs_errors else 0.0

    @property
    def rolling_mse(self) -> float:
        return float(np.mean(self._sq_errors)) if self._sq_errors else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self._count,
            "rolling_mae": self.rolling_mae,
            "rolling_mse": self.rolling_mse,
            "reference": self._reference,
            "cusum": self._cusum,
            "alarmed": self._alarmed,
        }
