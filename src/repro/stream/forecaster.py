"""Drift-aware streaming forecasts on top of :class:`ForecastService`.

:class:`StreamingForecaster` is the online layer of the serving stack:
ticks enter through a validated :class:`StreamIngestor`, per-key ring
buffers hold the trailing model window, and re-forecasts are triggered
on a configurable cadence (every tick, every ``k`` ticks, or on
demand).  Each trigger submits the current window to the underlying
:class:`~repro.serve.service.ForecastService` queue, so thousands of
concurrent series share the same micro-batched student forwards — the
streaming layer adds state and policy, never a second inference path,
which is what makes replayed streams bitwise identical to offline
``predict()`` (see :mod:`repro.stream.replay`).  The inference engine
(module vs. tape-free compiled, see :mod:`repro.infer`) is therefore
inherited from the service — and because the engines are bitwise
identical, the replay parity guarantee holds under either.

A per-key :class:`DriftMonitor` scores every realized tick against the
forecast previously issued for it; alarmed series are flagged for
re-scaling and can optionally be served by a naive last-value fallback
until reset.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from ..serve.service import ForecastService
from .drift import DriftMonitor
from .ingest import StreamIngestor
from .state import SeriesState

__all__ = ["StreamStats", "StreamingForecaster"]

#: How many outstanding forecasts per key are kept for drift scoring.
_ISSUED_DEPTH = 8


@dataclass
class StreamStats:
    """Stream-level counters; compose with ``ServiceStats`` via
    :meth:`StreamingForecaster.snapshot`."""

    ticks: int = 0
    rows: int = 0
    filled: int = 0
    gaps: int = 0
    forecasts: int = 0
    fallbacks: int = 0
    drift_alarms: int = 0

    def as_dict(self) -> dict:
        return {
            "ticks": self.ticks,
            "rows": self.rows,
            "filled": self.filled,
            "gaps": self.gaps,
            "forecasts": self.forecasts,
            "fallbacks": self.fallbacks,
            "drift_alarms": self.drift_alarms,
        }


class _SeriesRuntime:
    __slots__ = ("pending_ticks", "issued", "monitor", "alarm_counted")

    def __init__(self, monitor: DriftMonitor):
        self.pending_ticks = 0
        self.issued: deque = deque(maxlen=_ISSUED_DEPTH)  # (at_count, future)
        self.monitor = monitor
        self.alarm_counted = False


class StreamingForecaster:
    """Rolling per-series state + cadence-driven re-forecasting.

    Parameters
    ----------
    service:
        The serving layer every forecast routes through.
    dataset / horizon:
        Model registry key (resolved exactly like
        :meth:`ForecastService.resolve_key`); window shapes come from
        the bundle's own config.
    cadence:
        Re-forecast every ``cadence`` ingested ticks once a key has a
        full window (``1`` = every tick).  ``0`` disables automatic
        triggering — forecasts happen only via :meth:`forecast`.
    policy / interval / max_gap / capacity:
        Forwarded to :class:`StreamIngestor` (gap handling and ring
        sizing).
    raw_values:
        Treat the stream as unscaled data: the bundle's scaler z-scales
        windows in and inverse-transforms forecasts out (service-side).
    fallback_naive:
        When a key's drift alarm is set, serve a last-value ("naive")
        forecast instead of the student until :meth:`reset_drift`.
    drift_window / drift_calibration / drift_threshold / drift_slack:
        Per-key :class:`DriftMonitor` parameters.
    copy_windows:
        Copy each window before submitting.  Off by default: the ring
        holds float64 while :meth:`ForecastService.submit` casts to
        float32 synchronously in the caller's thread, so the zero-copy
        view never outlives the call.  Turn on if a future service
        might hold the submitted array by reference.
    """

    def __init__(self, service: ForecastService, dataset: str | None = None,
                 horizon: int | None = None, *, cadence: int = 1,
                 policy: str = "error", interval: float = 1.0,
                 max_gap: int = 16, capacity: int | None = None,
                 raw_values: bool = False, fallback_naive: bool = False,
                 drift_window: int = 64, drift_calibration: int = 16,
                 drift_threshold: float = 8.0, drift_slack: float = 0.5,
                 copy_windows: bool = False):
        if cadence < 0:
            raise ValueError("cadence must be >= 0 (0 = on-demand only)")
        self.service = service
        self.model_key = service.resolve_key(dataset, horizon)
        config = service.config_for(self.model_key)
        self.input_len = config.history_length
        self.horizon_len = config.horizon
        self.num_variables = config.num_variables
        self.cadence = int(cadence)
        self.raw_values = bool(raw_values)
        self.fallback_naive = bool(fallback_naive)
        self.copy_windows = bool(copy_windows)
        self.ingestor = StreamIngestor(
            self.input_len, self.num_variables, interval=interval,
            policy=policy, max_gap=max_gap, capacity=capacity)
        self.stats = StreamStats()  # guarded-by: _lock
        self._drift_params = dict(
            window=drift_window, calibration=drift_calibration,
            threshold=drift_threshold, slack=drift_slack)
        self._runtimes: dict = {}  # guarded-by: _lock
        self._latest: dict = {}  # guarded-by: _lock
        # Re-entrant: a checkpoint triggered from inside append() calls
        # export_state() while the append still holds the lock.
        self._lock = threading.RLock()
        #: Successful append() calls so far — the WAL sequence number.
        self._seq = 0  # guarded-by: _lock
        #: Attached StreamSnapshotter (see repro.durable), or None.
        self._snapshotter = None  # guarded-by: _lock

    # ------------------------------------------------------------------
    # ingestion + triggering
    # ------------------------------------------------------------------
    def append(self, key, timestamp: float,
               values: np.ndarray) -> Future | None:
        """Ingest one tick (or a ``(T, N)`` run) for ``key``.

        Returns the forecast :class:`Future` when this tick crossed the
        cadence boundary (resolving to the ``(M, N)`` forecast), else
        ``None``.  The future is also cached — :meth:`latest` serves it
        without blocking the ingest path.
        """
        with self._lock:
            result = self.ingestor.append(key, timestamp, values)
            runtime = self._runtime(key)  # after ingest: no phantom keys
            state = self.ingestor.state(key)
            self.stats.ticks += result.observed
            self.stats.rows += result.rows
            self.stats.filled += result.filled
            if result.filled:
                self.stats.gaps += 1
            self._score_drift(runtime, state, result.observed)
            runtime.pending_ticks += result.rows
            future = None
            if (self.cadence > 0 and state.ready
                    and runtime.pending_ticks >= self.cadence):
                future = self._issue(key, runtime, state)
            self._seq += 1
            if self._snapshotter is not None:
                self._snapshotter.observe(key, timestamp, values, self._seq)
            return future

    def forecast(self, key) -> np.ndarray:
        """On-demand blocking re-forecast of ``key``'s current window."""
        with self._lock:
            state = self.ingestor.state(key)  # raises for unknown keys
            runtime = self._runtime(key)
            if not state.ready:
                raise ValueError(
                    f"stream {key!r} has {state.count} of {self.input_len} "
                    f"rows needed for a forecast")
            future = self._issue(key, runtime, state)
        # Wait outside the lock: the service worker resolves the future
        # without it, and concurrent appends must not queue behind us.
        return future.result()

    def latest(self, key, wait: bool = True) -> np.ndarray | None:
        """Most recent forecast for ``key`` (``None`` if never issued).

        With ``wait=False`` an unresolved in-flight forecast also
        returns ``None`` instead of blocking.
        """
        with self._lock:
            future = self._latest.get(key)
        if future is None or (not wait and not future.done()):
            return None
        return np.asarray(future.result())

    def _runtime(self, key) -> _SeriesRuntime:  # requires-lock: _lock
        runtime = self._runtimes.get(key)
        if runtime is None:
            runtime = _SeriesRuntime(DriftMonitor(**self._drift_params))
            self._runtimes[key] = runtime
        return runtime

    # requires-lock: _lock
    def _issue(self, key, runtime: _SeriesRuntime,
               state: SeriesState) -> Future:
        runtime.pending_ticks = 0
        issued_at = state.count
        self._note_alarm(runtime)
        if self.fallback_naive and runtime.monitor.alarmed:
            # Naive fallback: repeat the last observation across the
            # horizon.  Drift scoring keeps running against it, so the
            # monitor still reflects live quality after the switch.
            future: Future = Future()
            future.set_result(
                np.tile(state.last(), (self.horizon_len, 1)))
            self.stats.fallbacks += 1
        else:
            window = state.window(copy=self.copy_windows)
            future = self.service.submit(
                window, dataset=self.model_key[0],
                horizon=self.model_key[1], raw_values=self.raw_values)
        self.stats.forecasts += 1
        runtime.issued.appendleft((issued_at, future))
        self._latest[key] = future
        return future

    # ------------------------------------------------------------------
    # drift
    # ------------------------------------------------------------------
    # requires-lock: _lock
    def _score_drift(self, runtime: _SeriesRuntime, state: SeriesState,
                     observed: int) -> None:
        """Score newly realized rows against outstanding forecasts.

        A forecast issued when the series had ``a`` rows covers global
        rows ``a .. a + M - 1``; each just-appended observed row (gap
        fills are synthetic and skipped) is matched to the newest
        resolved forecast covering it.
        """
        if not runtime.issued or observed == 0:
            return
        # Rows older than the ring are gone; score what survived.
        observed = min(observed, state.capacity, state.count)
        realized = state.tail(observed)
        first_row = state.count - observed
        for offset in range(observed):
            row_index = first_row + offset
            prediction = self._covering_prediction(runtime, row_index)
            if prediction is None:
                continue
            runtime.monitor.update(realized[offset] - prediction)
        self._note_alarm(runtime)

    def _note_alarm(self, runtime: _SeriesRuntime) -> None:  # requires-lock: _lock
        """Count each alarm episode once, however it was raised."""
        if runtime.monitor.alarmed and not runtime.alarm_counted:
            runtime.alarm_counted = True
            self.stats.drift_alarms += 1

    def _covering_prediction(self, runtime: _SeriesRuntime,
                             row_index: int) -> np.ndarray | None:
        for issued_at, future in runtime.issued:  # newest first
            if not issued_at <= row_index < issued_at + self.horizon_len:
                continue
            if not future.done() or future.exception() is not None:
                continue
            return np.asarray(future.result())[row_index - issued_at]
        return None

    # ------------------------------------------------------------------
    # readouts
    # ------------------------------------------------------------------
    @property
    def seq(self) -> int:
        """Successful :meth:`append` calls so far (the WAL sequence)."""
        with self._lock:
            return self._seq

    @property
    def interval(self) -> float:
        """Expected tick spacing (the replay harness reads this — the
        sharded front end exposes it too, without a single ingestor)."""
        return self.ingestor.interval

    def keys(self) -> list:
        with self._lock:
            return self.ingestor.keys()

    def state(self, key) -> SeriesState:
        with self._lock:
            return self.ingestor.state(key)

    def drop(self, key) -> None:
        """Retire a series completely (ring buffer, drift monitor,
        cached forecast) — long-lived deployments with series churn
        must use this, not ``ingestor.drop``, to avoid leaking per-key
        runtime state."""
        with self._lock:
            self.ingestor.drop(key)
            self._runtimes.pop(key, None)
            self._latest.pop(key, None)

    def monitor(self, key) -> DriftMonitor:
        """The drift monitor for ``key`` (must have been ingested)."""
        with self._lock:
            if key not in self._runtimes:
                raise KeyError(f"unknown stream key {key!r}")
            return self._runtimes[key].monitor

    def alarmed_keys(self) -> list:
        with self._lock:
            alarmed = []
            for key, runtime in self._runtimes.items():
                self._note_alarm(runtime)
                if runtime.monitor.alarmed:
                    alarmed.append(key)
            return alarmed

    def reset_drift(self, key) -> None:
        """Clear ``key``'s alarm and re-calibrate its monitor."""
        with self._lock:
            if key not in self._runtimes:
                raise KeyError(f"unknown stream key {key!r}")
            runtime = self._runtimes[key]
            self._note_alarm(runtime)  # count the episode even if unseen
            runtime.monitor.reset()
            runtime.alarm_counted = False

    def snapshot(self) -> dict:
        """Composed stream- and serve-level counters (one coherent
        service snapshot, see :meth:`ForecastService.snapshot`).

        Taken under the forecaster lock so a concurrent ``append`` or
        ``drop`` can never produce a torn stats dict (e.g. a series
        count from before a drop paired with alarms from after it).
        """
        with self._lock:
            stream = self.stats.as_dict()
            stream["seq"] = self._seq
            stream["series"] = len(self.ingestor.keys())
            stream["alarmed"] = len(self.alarmed_keys())
        service = self.service.snapshot().as_dict()
        service["engine"] = self.service.engine
        service["precision"] = self.service.precision
        service["serve_threads"] = self.service.serve_threads
        return {"stream": stream, "service": service}

    # ------------------------------------------------------------------
    # durable state
    # ------------------------------------------------------------------
    def durable_config(self) -> dict:
        """The identity + policy knobs a snapshot must record.

        The recoverer compares the identity subset (shapes, grid, gap
        policy, ``raw_values``) strictly — restoring into a forecaster
        whose windows would differ is refused.  Cadence, fallback and
        drift parameters are policy knobs the restoring process may
        legitimately override.
        """
        capacity = self.ingestor.capacity
        if capacity is None:
            capacity = 2 * self.input_len  # the SeriesState default
        return {
            "dataset": self.model_key[0],
            "horizon": self.model_key[1],
            "input_len": self.input_len,
            "horizon_len": self.horizon_len,
            "num_variables": self.num_variables,
            "interval": self.ingestor.interval,
            "policy": self.ingestor.policy,
            "max_gap": self.ingestor.max_gap,
            "capacity": int(capacity),
            "raw_values": self.raw_values,
            "cadence": self.cadence,
            "fallback_naive": self.fallback_naive,
            "drift": dict(self._drift_params),
        }

    def export_state(self) -> dict:
        """One consistent, fully resolved view of the whole universe.

        Taken under the lock; every in-flight forecast future is waited
        on first (the service worker resolves them without this lock),
        so the exported arrays are concrete values, not promises.
        Futures that failed are dropped — they hold no state worth
        persisting.
        """
        with self._lock:
            entries = []
            for key in self.ingestor.keys():
                entry = self.ingestor.export_key(key)
                entry["key"] = key
                runtime = self._runtimes.get(key)
                if runtime is None:  # ingested but never scored/issued
                    runtime = _SeriesRuntime(
                        DriftMonitor(**self._drift_params))
                entry["pending_ticks"] = runtime.pending_ticks
                entry["alarm_counted"] = runtime.alarm_counted
                entry["drift"] = runtime.monitor.export_state()
                issued = []
                for issued_at, future in runtime.issued:  # newest first
                    if future.exception() is not None:
                        continue
                    issued.append((int(issued_at),
                                   np.asarray(future.result()).copy()))
                entry["issued"] = issued
                latest = self._latest.get(key)
                entry["latest"] = (
                    None if latest is None or latest.exception() is not None
                    else np.asarray(latest.result()).copy())
                entries.append(entry)
            return {
                "seq": self._seq,
                "config": self.durable_config(),
                "stream_stats": self.stats.as_dict(),
                "service_stats": self.service.snapshot().as_dict(),
                "entries": entries,
            }

    def import_state(self, state: dict) -> None:
        """Atomically replace all streaming state with an exported view.

        Everything is rebuilt and validated first; only then does the
        swap happen, so a malformed payload leaves the live state
        untouched (the fail-closed contract the recoverer relies on).
        Service counters are *not* touched here — see
        :meth:`ForecastService.restore_stats`.
        """
        with self._lock:
            entries: dict = {}
            runtimes: dict = {}
            latest: dict = {}
            for entry in state["entries"]:
                key = entry["key"]
                entries[key] = {
                    "series": entry["series"],
                    "last_timestamp": entry["last_timestamp"],
                    "gaps": entry["gaps"],
                }
                runtime = _SeriesRuntime(
                    DriftMonitor.from_state(entry["drift"]))
                runtime.pending_ticks = int(entry["pending_ticks"])
                runtime.alarm_counted = bool(entry["alarm_counted"])
                for issued_at, forecast in entry["issued"]:  # newest first
                    future: Future = Future()
                    future.set_result(np.asarray(forecast))
                    runtime.issued.append((int(issued_at), future))
                runtimes[key] = runtime
                if entry["latest"] is not None:
                    future = Future()
                    future.set_result(np.asarray(entry["latest"]))
                    latest[key] = future
            stats = StreamStats(**{
                field: int(state["stream_stats"][field])
                for field in StreamStats().as_dict()})
            seq = int(state["seq"])
            self.ingestor.import_entries(entries)  # validates, then swaps
            self._runtimes = runtimes
            self._latest = latest
            self.stats = stats
            self._seq = seq

    def clear(self) -> None:
        """Drop every series, counter and cached forecast (seq included).

        The recoverer calls this when an import fails partway — the
        fail-closed alternative to leaving half a universe behind.
        """
        with self._lock:
            self.ingestor.import_entries({})
            self._runtimes = {}
            self._latest = {}
            self.stats = StreamStats()  # guarded-by: _lock
            self._seq = 0

    def snapshot_to(self, path: str) -> str:
        """Write a durable snapshot of the full universe to ``path``.

        Convenience around :func:`repro.durable.snapshot.write_snapshot`
        — stamps the bundle's weight digest plus the live engine and
        precision so recovery can verify it is importing into a
        compatible serving process.  Returns the written path.
        """
        from ..durable.snapshot import write_snapshot
        from ..serve.artifact import ArtifactError, read_artifact_digest

        with self._lock:
            state = self.export_state()
            try:
                digest = read_artifact_digest(
                    self.service.path_for(self.model_key))
            except (KeyError, ArtifactError):
                digest = None
            return write_snapshot(path, state, artifact_digest=digest,
                                  engine=self.service.engine,
                                  precision=self.service.precision)

    def restore_from(self, source: str, *, replay_wal: bool = True,
                     strict_wal: bool = True, recoverer=None):
        """Recover this forecaster from ``source`` (snapshot or directory).

        Runs a :class:`repro.durable.recover.StatefulRecoverer` (pass
        your own via ``recoverer`` to inspect stages afterwards) and
        raises :class:`repro.durable.recover.RecoveryError` unless it
        reaches ``succeeded``.  Returns the final
        :class:`~repro.durable.recover.RecoveryState`.
        """
        from ..durable.recover import RecoveryError, StatefulRecoverer

        if recoverer is None:
            recoverer = StatefulRecoverer()
        state = recoverer.recover(source, self, replay_wal=replay_wal,
                                  strict_wal=strict_wal)
        if state.failure_reason is not None:
            raise RecoveryError(state)
        return state
