"""TimeKD reproduction — calibrated language models with privileged
knowledge distillation for multivariate time series forecasting.

Reproduces Liu et al., *Efficient Multivariate Time Series Forecasting
via Calibrated Language Models with Privileged Knowledge Distillation*
(ICDE 2025) from scratch on a numpy substrate.  Top-level re-exports
cover the quickstart path::

    from repro import TimeKDConfig, TimeKDForecaster
    from repro.data import load_dataset, make_forecasting_data

Sub-packages: :mod:`repro.nn` (autograd + layers), :mod:`repro.llm`
(backbones, tokenizer, calibrated LM), :mod:`repro.data` (datasets,
windows, prompts), :mod:`repro.core` (TimeKD), :mod:`repro.serve`
(deployable student artifacts + batched serving), :mod:`repro.stream`
(online ingestion + drift-aware re-forecasting), :mod:`repro.baselines`,
:mod:`repro.eval`, :mod:`repro.experiments`.
"""

from .core import TimeKDConfig, TimeKDForecaster, TimeKDTrainer

__version__ = "1.0.0"

__all__ = ["TimeKDConfig", "TimeKDForecaster", "TimeKDTrainer", "__version__"]
