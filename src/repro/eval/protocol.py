"""Standard train/evaluate protocol shared by all baselines.

TimeKD has its own two-phase trainer; every baseline trains with this
generic supervised loop (SmoothL1 objective, AdamW, gradient clipping,
best-validation selection) so comparisons are apples-to-apples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..baselines.base import ForecastModel
from ..data.loader import DataLoader
from ..data.windows import ForecastingData, WindowDataset
from ..nn import AdamW, clip_grad_norm, no_grad
from ..nn.functional import smooth_l1_loss
from ..nn.tensor import Tensor

__all__ = ["TrainSettings", "TrainReport", "train_forecast_model",
           "evaluate_forecast_model"]


@dataclass(frozen=True)
class TrainSettings:
    """Optimization knobs for the shared baseline protocol."""

    epochs: int = 5
    batch_size: int = 16
    learning_rate: float = 1e-3
    weight_decay: float = 1e-4
    grad_clip: float = 1.0
    max_batches_per_epoch: int | None = None
    seed: int = 0


@dataclass
class TrainReport:
    """What one training run produced."""

    train_losses: list[float]
    val_mse: list[float]
    train_seconds: float
    epochs_run: int


def train_forecast_model(
    model: ForecastModel,
    data: ForecastingData,
    settings: TrainSettings | None = None,
) -> TrainReport:
    """Train ``model`` on ``data.train``, selecting by ``data.val`` MSE."""
    settings = settings or TrainSettings()
    optimizer = AdamW(model.parameters(), lr=settings.learning_rate,
                      weight_decay=settings.weight_decay)
    train_losses: list[float] = []
    val_history: list[float] = []
    best_val = float("inf")
    best_state = None
    start = time.perf_counter()
    for epoch in range(settings.epochs):
        model.train()
        loader = DataLoader(data.train, batch_size=settings.batch_size,
                            shuffle=True, seed=settings.seed + epoch,
                            max_batches=settings.max_batches_per_epoch)
        epoch_loss, batches = 0.0, 0
        for history, future in loader:
            prediction = model(history.astype(np.float32))
            loss = smooth_l1_loss(prediction, Tensor(future.astype(np.float32)))
            model.zero_grad()
            loss.backward()
            clip_grad_norm(optimizer.parameters, settings.grad_clip)
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
        train_losses.append(epoch_loss / max(batches, 1))

        val = evaluate_forecast_model(model, data.val)["mse"]
        val_history.append(val)
        if val < best_val:
            best_val = val
            best_state = model.state_dict()
    if best_state is not None:
        model.load_state_dict(best_state)
    elapsed = time.perf_counter() - start
    return TrainReport(train_losses, val_history, elapsed, settings.epochs)


def evaluate_forecast_model(
    model: ForecastModel, dataset: WindowDataset, batch_size: int = 32
) -> dict[str, float]:
    """MSE/MAE over every window of ``dataset`` (batched; see trainer)."""
    model.eval()
    total_se, total_ae, count = 0.0, 0.0, 0
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    with no_grad():
        for history, future in loader:
            prediction = model(history.astype(np.float32))
            diff = prediction.data - future
            total_se += float((diff ** 2).sum())
            total_ae += float(np.abs(diff).sum())
            count += diff.size
    return {"mse": total_se / max(count, 1), "mae": total_ae / max(count, 1)}
