"""Result collection and paper-style table formatting."""

from __future__ import annotations

import csv
import io
import os
from typing import Iterable, Mapping

from ..persist import atomic_write_text

__all__ = ["format_table", "save_csv", "best_by", "relative_improvement"]


def format_table(rows: Iterable[Mapping], title: str = "") -> str:
    """Render dict rows as an aligned text table (paper-style)."""
    rows = [dict(r) for r in rows]
    if not rows:
        return f"{title}\n(empty)"
    columns = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)

    def cell(value) -> str:
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    widths = {c: len(c) for c in columns}
    rendered = []
    for row in rows:
        line = {c: cell(row.get(c, "")) for c in columns}
        rendered.append(line)
        for c in columns:
            widths[c] = max(widths[c], len(line[c]))

    header = "  ".join(c.ljust(widths[c]) for c in columns)
    separator = "  ".join("-" * widths[c] for c in columns)
    body = [
        "  ".join(line[c].ljust(widths[c]) for c in columns)
        for line in rendered
    ]
    parts = ([title, ""] if title else []) + [header, separator] + body
    return "\n".join(parts)


def save_csv(rows: Iterable[Mapping], path: str) -> str:
    """Persist dict rows to CSV, creating directories as needed.

    Published atomically: experiment sweeps overwrite their result
    tables in place, and a crash mid-write must not leave a torn CSV
    that a later aggregation step would silently half-read.
    """
    rows = [dict(r) for r in rows]
    if not rows:
        raise ValueError("no rows to save")
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    columns = list(rows[0].keys())
    buffer = io.StringIO(newline="")
    writer = csv.DictWriter(buffer, fieldnames=columns,
                            extrasaction="ignore")
    writer.writeheader()
    writer.writerows(rows)
    atomic_write_text(path, buffer.getvalue())
    return path


def best_by(rows: Iterable[Mapping], key: str,
            group: str | None = None) -> dict:
    """Row(s) with the minimum ``key``; grouped if ``group`` is given."""
    rows = [dict(r) for r in rows]
    if group is None:
        return min(rows, key=lambda r: r[key])
    winners: dict = {}
    for row in rows:
        bucket = row[group]
        if bucket not in winners or row[key] < winners[bucket][key]:
            winners[bucket] = row
    return winners


def relative_improvement(candidate: float, reference: float) -> float:
    """Positive when ``candidate`` improves (reduces) over ``reference``."""
    if reference == 0:
        return 0.0
    return (reference - candidate) / abs(reference)
