"""Resource-efficiency measurement (paper Table IV).

Reports the paper's four metrics for any model exposing the common
interface: trainable parameters (millions), training time per epoch
(seconds), peak memory of a training step (MiB, via tracemalloc — numpy
allocations are tracked), and inference speed (seconds per iteration at
batch size 1, averaged).
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["EfficiencyReport", "measure_efficiency"]


@dataclass
class EfficiencyReport:
    """Table-IV row for one model."""

    name: str
    trainable_params_m: float
    train_seconds_per_epoch: float
    peak_memory_mib: float
    inference_seconds_per_iter: float

    def as_row(self) -> dict[str, float | str]:
        return {
            "model": self.name,
            "trainable_params_M": round(self.trainable_params_m, 4),
            "train_s_per_epoch": round(self.train_seconds_per_epoch, 3),
            "memory_MiB": round(self.peak_memory_mib, 2),
            "inference_s_per_iter": round(self.inference_seconds_per_iter, 5),
        }


def measure_efficiency(
    name: str,
    trainable_params: int,
    train_epoch: Callable[[], None],
    infer_once: Callable[[], None],
    inference_repeats: int = 5,
) -> EfficiencyReport:
    """Measure the four Table-IV metrics.

    Parameters
    ----------
    name:
        Row label.
    trainable_params:
        Scalar count of trainable parameters.
    train_epoch:
        Zero-argument callable running one training epoch; it is wrapped
        with tracemalloc to capture the training-step memory peak.
    infer_once:
        Zero-argument callable running one batch-size-1 forward pass.
    inference_repeats:
        Averaging repeats for the inference timing.
    """
    # Respect an outer trace: stopping tracemalloc here would silently
    # kill a caller's own measurement, so only stop what we started and
    # reset the peak instead when tracing is already live.
    was_tracing = tracemalloc.is_tracing()
    if was_tracing:
        tracemalloc.reset_peak()
    else:
        tracemalloc.start()
    try:
        start = time.perf_counter()
        train_epoch()
        train_seconds = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not was_tracing:
            tracemalloc.stop()

    infer_once()  # warm-up
    start = time.perf_counter()
    for _ in range(inference_repeats):
        infer_once()
    inference_seconds = (time.perf_counter() - start) / inference_repeats

    return EfficiencyReport(
        name=name,
        trainable_params_m=trainable_params / 1e6,
        train_seconds_per_epoch=train_seconds,
        peak_memory_mib=peak / (1024 * 1024),
        inference_seconds_per_iter=inference_seconds,
    )
