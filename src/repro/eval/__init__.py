"""``repro.eval`` — metrics, shared training protocol, efficiency probes
and result formatting for the experiment suite."""

from .efficiency import EfficiencyReport, measure_efficiency
from .metrics import forecast_metrics, mae, mape, mse, rmse, smape
from .protocol import (
    TrainReport,
    TrainSettings,
    evaluate_forecast_model,
    train_forecast_model,
)
from .results import best_by, format_table, relative_improvement, save_csv

__all__ = [
    "EfficiencyReport",
    "measure_efficiency",
    "forecast_metrics",
    "mse",
    "mae",
    "rmse",
    "mape",
    "smape",
    "TrainSettings",
    "TrainReport",
    "train_forecast_model",
    "evaluate_forecast_model",
    "format_table",
    "save_csv",
    "best_by",
    "relative_improvement",
]
