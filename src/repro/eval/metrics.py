"""Forecast accuracy metrics (paper Eq. 31-32 and common extras)."""

from __future__ import annotations

import numpy as np

__all__ = ["mse", "mae", "rmse", "mape", "smape", "forecast_metrics"]


def _pair(prediction, target) -> tuple[np.ndarray, np.ndarray]:
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise ValueError(
            f"shape mismatch: {prediction.shape} vs {target.shape}")
    return prediction, target


def mse(prediction, target) -> float:
    """Mean squared error (paper Eq. 31)."""
    prediction, target = _pair(prediction, target)
    return float(((prediction - target) ** 2).mean())


def mae(prediction, target) -> float:
    """Mean absolute error (paper Eq. 32)."""
    prediction, target = _pair(prediction, target)
    return float(np.abs(prediction - target).mean())


def rmse(prediction, target) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(prediction, target)))


def mape(prediction, target, eps: float = 1e-8) -> float:
    """Mean absolute percentage error (guarding zero targets)."""
    prediction, target = _pair(prediction, target)
    denominator = np.maximum(np.abs(target), eps)
    return float((np.abs(prediction - target) / denominator).mean())


def smape(prediction, target, eps: float = 1e-8) -> float:
    """Symmetric MAPE in [0, 2]."""
    prediction, target = _pair(prediction, target)
    denominator = np.maximum(
        (np.abs(prediction) + np.abs(target)) / 2.0, eps)
    return float((np.abs(prediction - target) / denominator).mean())


def forecast_metrics(prediction, target) -> dict[str, float]:
    """The paper's metric pair plus the common extras, as a dict.

    Covers everything in ``__all__``: mse/mae (Eq. 31-32), rmse, and
    both percentage errors (``mape`` with its zero-target guard,
    ``smape``).
    """
    return {
        "mse": mse(prediction, target),
        "mae": mae(prediction, target),
        "rmse": rmse(prediction, target),
        "mape": mape(prediction, target),
        "smape": smape(prediction, target),
    }
