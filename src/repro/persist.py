"""Shared persistence idioms: atomic writes + content digests.

Three subsystems grew the same two idioms independently — the student
artifact bundles (:mod:`repro.serve.artifact`), the embedding store
(:mod:`repro.core.store`) and the durable streaming layer
(:mod:`repro.durable`):

* **atomic publication** — stage the bytes in a temp file in the
  target's directory, then ``os.replace`` into place, so a reader (or a
  crash) can only ever observe the whole file or no file;
* **content digests** — sha256 over sorted ``name + raw bytes`` of a
  named-array mapping, so corruption and tampering are detected at load
  time instead of surfacing as silently wrong numbers.

This module is the single home for both.  It deliberately depends on
nothing inside :mod:`repro` (stdlib + numpy only) so every layer — nn
serialization, artifact bundles, embedding caches, snapshots, sidecar
JSON — can use it without import cycles.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

import numpy as np

__all__ = [
    "arrays_digest",
    "atomic_replace",
    "atomic_save_array",
    "atomic_save_arrays",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
]


# ----------------------------------------------------------------------
# atomic publication
# ----------------------------------------------------------------------
class atomic_replace:
    """Context manager: stage writes to a temp file, publish on success.

    Yields a binary file handle; on clean exit the temp file is moved
    onto ``path`` with ``os.replace`` (atomic on POSIX), on error it is
    removed and the target left untouched.  ``fsync=True`` flushes the
    staged bytes to stable storage before the rename, surviving machine
    (not just process) crashes.
    """

    def __init__(self, path: str, *, suffix: str = ".tmp",
                 fsync: bool = False):
        self.path = path
        self.suffix = suffix
        self.fsync = fsync
        self._tmp: str | None = None
        self._handle = None

    def __enter__(self):
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, self._tmp = tempfile.mkstemp(dir=directory, suffix=self.suffix)
        self._handle = os.fdopen(fd, "wb")
        return self._handle

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            if exc_type is None:
                if self.fsync:
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
                self._handle.close()
                os.replace(self._tmp, self.path)
                return False
            self._handle.close()
        finally:
            if exc_type is not None and self._tmp is not None \
                    and os.path.exists(self._tmp):
                os.unlink(self._tmp)
        return False


def atomic_write_bytes(path: str, payload: bytes,
                       fsync: bool = False) -> None:
    """Write ``payload`` to ``path`` so readers see all of it or none."""
    with atomic_replace(path, fsync=fsync) as handle:
        handle.write(payload)


def atomic_write_json(path: str, payload, *, fsync: bool = False,
                      indent: int = 2) -> None:
    """Atomically write ``payload`` as pretty-printed JSON."""
    text = json.dumps(payload, indent=indent) + "\n"
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def atomic_write_text(path: str, text: str, *, fsync: bool = False,
                      encoding: str = "utf-8") -> None:
    """Atomically write ``text`` (CSV reports, rendered tables, logs)."""
    atomic_write_bytes(path, text.encode(encoding), fsync=fsync)


def atomic_save_array(path: str, array: np.ndarray) -> str:
    """Atomically write one array to ``path`` (npy).

    Like ``np.save``, a missing ``.npy`` extension is appended.
    Returns the written path.
    """
    if not path.endswith(".npy"):
        path = path + ".npy"
    with atomic_replace(path, suffix=".npy.tmp") as handle:
        np.save(handle, array)
    return path


def atomic_save_arrays(path: str, arrays: dict[str, np.ndarray]) -> str:
    """Atomically write a named-array mapping to ``path`` (npz).

    Like ``np.savez``, a missing ``.npz`` extension is appended —
    keeping save and load paths symmetric.  Returns the written path.
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    with atomic_replace(path, suffix=".npz.tmp") as handle:
        np.savez(handle, **arrays)
    return path


# ----------------------------------------------------------------------
# content digests
# ----------------------------------------------------------------------
def arrays_digest(arrays: dict, *, skip: tuple = ()) -> str:
    """sha256 hex digest of a named-array mapping.

    Entries are folded in sorted-name order as ``name bytes + raw array
    bytes`` so the digest is independent of dict ordering and memory
    layout; names in ``skip`` (e.g. the digest entry itself) are
    excluded.  This is the one digest convention shared by artifact
    bundles, stream snapshots and weight fingerprints.
    """
    digest = hashlib.sha256()
    skipped = set(skip)
    for name in sorted(arrays):
        if name in skipped:
            continue
        digest.update(str(name).encode("utf-8"))
        digest.update(np.ascontiguousarray(arrays[name]).tobytes())
    return digest.hexdigest()
