"""``repro.serve`` — deployable student artifacts and batched serving.

Two layers:

* :mod:`repro.serve.artifact` — one self-contained ``.npz`` bundle per
  deployable student (weights + resolved config + fitted scaler +
  provenance).  Restoring a bundle never constructs a trainer, a CLM or
  a dataset — the paper's "only the student runs at inference" story.
* :mod:`repro.serve.service` — :class:`ForecastService`, an LRU model
  registry over a bundle directory with a micro-batching queue that
  coalesces concurrent single-window requests into one batched forward.
"""

from .artifact import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    StudentArtifact,
    load_student_artifact,
    read_artifact_digest,
    read_artifact_info,
    save_student_artifact,
)
from .service import ForecastService, ServiceStats, scan_artifact_dir

__all__ = [
    "scan_artifact_dir",
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactError",
    "StudentArtifact",
    "load_student_artifact",
    "read_artifact_digest",
    "read_artifact_info",
    "save_student_artifact",
    "ForecastService",
    "ServiceStats",
]
