"""Self-contained student artifact bundles (the deployable unit).

The paper's deployment story is that *only the student* runs at
inference time.  A bundle is one versioned ``.npz`` file holding
everything a serving process needs to answer requests — the student
``state_dict``, the resolved :class:`TimeKDConfig`, the fitted
:class:`StandardScaler` statistics, and provenance metadata (dataset
name, embedding fingerprint, metrics) — so restoring a student never
touches a trainer, a CLM, or the original :class:`ForecastingData`.

Layout of the archive::

    __format__        int, bumped on breaking layout changes
    __config__        JSON of TimeKDConfig.to_dict()
    __meta__          JSON provenance dict
    __digest__        sha256 over the weight arrays (corruption check)
    scaler/mean|std|eps   fitted scaler statistics (optional)
    weights/<name>    one entry per student parameter
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import dataclass, field

import numpy as np

from ..core.config import TimeKDConfig
from ..core.student import StudentModel
from ..data.scaler import StandardScaler
from ..nn.serialization import load_arrays, save_arrays
from ..persist import arrays_digest

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactError",
    "StudentArtifact",
    "save_student_artifact",
    "load_student_artifact",
    "read_artifact_info",
    "read_artifact_digest",
]

#: Bump when the archive layout changes incompatibly.
ARTIFACT_FORMAT_VERSION = 1

_WEIGHT_PREFIX = "weights/"
_SCALER_PREFIX = "scaler/"


class ArtifactError(RuntimeError):
    """A student artifact bundle is unreadable, corrupt or mismatched."""


def _weights_digest(state: dict[str, np.ndarray]) -> str:
    # The shared name+bytes convention (repro.persist) — the same
    # digest the snapshot layer stamps, so provenance checks compose.
    return arrays_digest(state)


@dataclass
class StudentArtifact:
    """In-memory form of a student bundle.

    ``config`` is the fully resolved training config (shapes included),
    ``state`` the student ``state_dict``, ``scaler`` the fitted
    dataset scaler (None when the bundle was written without one), and
    ``metadata`` free-form provenance (dataset, fingerprint, metrics).
    """

    config: TimeKDConfig
    state: dict[str, np.ndarray]
    scaler: StandardScaler | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def dataset(self) -> str:
        return str(self.metadata.get("dataset", ""))

    @property
    def key(self) -> tuple[str, int]:
        """Registry key ``(dataset, horizon)`` used by the serve layer."""
        return (self.dataset, self.config.horizon)

    def build_student(self) -> StudentModel:
        """Instantiate a predict-ready student (eval mode, no trainer)."""
        student = StudentModel(self.config)
        try:
            student.load_state_dict(self.state)
        except (KeyError, ValueError) as error:
            raise ArtifactError(
                f"bundle weights do not match the bundled config "
                f"(tampered or incompatible artifact): {error}") from error
        student.eval()
        return student


def save_student_artifact(
    path: str,
    student: StudentModel,
    config: TimeKDConfig,
    scaler: StandardScaler | None = None,
    metadata: dict | None = None,
) -> None:
    """Write a deployable bundle for ``student`` to ``path`` (npz).

    ``metadata`` should carry provenance — at minimum the dataset name
    (the serve registry keys bundles by ``(dataset, horizon)``);
    fingerprints and metrics are recorded verbatim when provided.
    """
    state = student.state_dict()
    payload: dict[str, np.ndarray] = {
        "__format__": np.int64(ARTIFACT_FORMAT_VERSION),
        "__config__": np.array(json.dumps(config.to_dict())),
        "__meta__": np.array(json.dumps(metadata or {}, default=str)),
        "__digest__": np.array(_weights_digest(state)),
    }
    if scaler is not None:
        for name, value in scaler.state_dict().items():
            payload[_SCALER_PREFIX + name] = np.asarray(value)
    for name, value in state.items():
        payload[_WEIGHT_PREFIX + name] = value
    save_arrays(path, payload)


def read_artifact_info(path: str) -> tuple[TimeKDConfig, dict]:
    """Read only the config and metadata of a bundle (cheap registry scan)."""
    try:
        with np.load(path, allow_pickle=False) as archive:
            config = TimeKDConfig.from_dict(json.loads(str(archive["__config__"])))
            metadata = json.loads(str(archive["__meta__"]))
    except (OSError, KeyError, ValueError, zipfile.BadZipFile,
            json.JSONDecodeError) as error:
        raise ArtifactError(f"unreadable student artifact {path!r}: "
                            f"{error}") from error
    return config, metadata


def read_artifact_digest(path: str) -> str:
    """Read only a bundle's recorded weight digest (cheap identity check).

    The streaming snapshotter stamps this into every snapshot so
    recovery can refuse to import state produced against different
    weights — without paying a full bundle load.
    """
    try:
        with np.load(path, allow_pickle=False) as archive:
            return str(archive["__digest__"])
    except (OSError, KeyError, ValueError, zipfile.BadZipFile) as error:
        raise ArtifactError(f"cannot read digest of {path!r}: "
                            f"{error}") from error


def load_student_artifact(path: str) -> StudentArtifact:
    """Read a bundle written by :func:`save_student_artifact`.

    Raises :class:`ArtifactError` — with the underlying cause in the
    message — for truncated/corrupt archives, missing entries, format
    version mismatches, and weight digests that no longer match.
    """
    try:
        arrays = load_arrays(path)
    except (OSError, ValueError, zipfile.BadZipFile) as error:
        raise ArtifactError(
            f"cannot read student artifact {path!r} (corrupt or "
            f"truncated): {error}") from error
    try:
        version = int(arrays.pop("__format__"))
        config_json = str(arrays.pop("__config__"))
        meta_json = str(arrays.pop("__meta__"))
        digest = str(arrays.pop("__digest__"))
    except KeyError as error:
        raise ArtifactError(
            f"{path!r} is not a student artifact bundle: missing entry "
            f"{error}") from error
    if version != ARTIFACT_FORMAT_VERSION:
        raise ArtifactError(
            f"artifact format {version} of {path!r} is not supported "
            f"(this build reads format {ARTIFACT_FORMAT_VERSION})")
    try:
        config = TimeKDConfig.from_dict(json.loads(config_json))
        metadata = json.loads(meta_json)
    except (TypeError, ValueError) as error:
        raise ArtifactError(
            f"invalid config/metadata in {path!r}: {error}") from error

    state = {name[len(_WEIGHT_PREFIX):]: value
             for name, value in arrays.items()
             if name.startswith(_WEIGHT_PREFIX)}
    if not state:
        raise ArtifactError(f"{path!r} holds no student weights")
    if _weights_digest(state) != digest:
        raise ArtifactError(
            f"weight digest mismatch in {path!r}: the bundle is corrupt")

    scaler_state = {name[len(_SCALER_PREFIX):]: value
                    for name, value in arrays.items()
                    if name.startswith(_SCALER_PREFIX)}
    scaler = None
    if scaler_state:
        try:
            scaler = StandardScaler.from_state(scaler_state)
        except (KeyError, ValueError) as error:
            raise ArtifactError(
                f"invalid scaler state in {path!r}: {error}") from error
    return StudentArtifact(config=config, state=state, scaler=scaler,
                           metadata=metadata)
