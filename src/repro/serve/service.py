"""Batched student serving: LRU model registry + micro-batching queue.

:class:`ForecastService` is the process-level serving layer the ROADMAP
north-star asks for: it lazily loads student artifact bundles from a
directory, keeps at most ``max_models`` of them resident (LRU), and
coalesces concurrent single-window requests for the same model into one
batched student forward.  The student is batch-independent (RevIN is
per-instance, every matmul runs the same per-slice GEMM), so a coalesced
forward is *bitwise identical* to batch-1 serving — only faster, because
B windows share one pass of Python/layer overhead.

Batches for *different* models are independent, so the drain loop can
run them concurrently: with ``serve_threads > 1`` each round pops one
batch per resident model and dispatches them onto a small thread pool
(numpy GEMMs release the GIL).  A model's batches still execute in
strict FIFO order — one batch per key per round, with a barrier between
rounds — so result ordering stays deterministic.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace

import numpy as np

from ..core.student import StudentModel
from ..infer import CompiledStudent, resolve_engine, resolve_precision
from .artifact import (
    ArtifactError,
    StudentArtifact,
    load_student_artifact,
    read_artifact_info,
)

__all__ = ["ForecastService", "ServiceStats", "scan_artifact_dir"]


def scan_artifact_dir(artifact_dir: str) -> dict[tuple[str, int], str]:
    """Index a directory of ``.npz`` student bundles by ``(dataset, horizon)``.

    Two bundles claiming the same key keep the lexicographically last
    path (stable, and re-scans pick up replacements); unreadable files
    are skipped — a half-written bundle must not take a service down.
    Shared by :class:`ForecastService` and the shard router, so every
    worker of a sharded runtime sees the identical registry.
    """
    paths: dict[tuple[str, int], str] = {}
    if os.path.isdir(artifact_dir):
        for name in sorted(os.listdir(artifact_dir)):
            if not name.endswith(".npz"):
                continue
            path = os.path.join(artifact_dir, name)
            try:
                config, metadata = read_artifact_info(path)
            except ArtifactError:
                continue
            key = (str(metadata.get("dataset", "")), config.horizon)
            paths[key] = path
    return paths


@dataclass
class ServiceStats:
    """Counters exposed for benchmarks and monitoring (O(1) space).

    The ``plan_*`` fields aggregate the compiled engines' shape-plan
    caches across the *resident* models (zero on the module engine):
    ``plan_rebuilds`` counts full polymorphic compiles (scratch
    allocation + probe), while hits/misses/evictions track the cheap
    per-batch-size view bindings.  A healthy steady state shows
    rebuilds frozen at one per model and hits dwarfing misses.
    """

    requests: int = 0
    batches: int = 0
    served: int = 0
    max_coalesced: int = 0
    loads: int = 0
    evictions: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    plan_evictions: int = 0
    plan_rebuilds: int = 0
    #: Instantaneous gauges (not counters): requests still queued and
    #: requests popped into a running batch whose future is unresolved.
    #: The admission layer (repro.gateway) reads these to shed load
    #: before a saturated queue grows unboundedly.
    queue_depth: int = 0
    in_flight: int = 0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "served": self.served,
            "max_coalesced": self.max_coalesced,
            "loads": self.loads,
            "evictions": self.evictions,
            "mean_batch": self.served / self.batches if self.batches else 0.0,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "plan_evictions": self.plan_evictions,
            "plan_rebuilds": self.plan_rebuilds,
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ServiceStats":
        """Rebuild counters from :meth:`as_dict` output.

        Derived fields (``mean_batch``) and unknown keys are ignored, so
        snapshots from newer builds still restore what this one knows.
        """
        fields = {name: int(payload[name]) for name in (
            "requests", "batches", "served", "max_coalesced",
            "loads", "evictions") if name in payload}
        return cls(**fields)

    @classmethod
    def merge(cls, parts: list["ServiceStats"]) -> "ServiceStats":
        """Fold per-shard counters into one cluster view.

        Additive fields sum; ``max_coalesced`` takes the maximum (it is
        a high-water mark, not a count).  The result reads exactly like
        a single service's stats, so monitoring does not care whether a
        deployment is sharded.
        """
        merged = cls()
        for part in parts:
            merged.requests += part.requests
            merged.batches += part.batches
            merged.served += part.served
            merged.loads += part.loads
            merged.evictions += part.evictions
            merged.plan_hits += part.plan_hits
            merged.plan_misses += part.plan_misses
            merged.plan_evictions += part.plan_evictions
            merged.plan_rebuilds += part.plan_rebuilds
            merged.queue_depth += part.queue_depth
            merged.in_flight += part.in_flight
            merged.max_coalesced = max(merged.max_coalesced,
                                       part.max_coalesced)
        return merged


class _Request:
    __slots__ = ("history", "raw_values", "future")

    def __init__(self, history: np.ndarray, raw_values: bool):
        self.history = history
        self.raw_values = raw_values
        self.future: Future = Future()


class _LoadedModel:
    __slots__ = ("artifact", "student", "compiled")

    def __init__(self, artifact: StudentArtifact, student: StudentModel,
                 compiled: CompiledStudent | None = None):
        self.artifact = artifact
        self.student = student
        #: Tape-free engine for this entry (None on the module engine).
        self.compiled = compiled

    def predict(self, histories: np.ndarray) -> np.ndarray:
        if self.compiled is not None:
            return self.compiled.predict(histories)
        return self.student.predict(histories)


class ForecastService:
    """Serve student forecasts from a directory of artifact bundles.

    Parameters
    ----------
    artifact_dir:
        Directory scanned for ``.npz`` student bundles.  Each bundle is
        indexed by its ``(dataset, horizon)`` key; two bundles claiming
        the same key keep the lexicographically last path (stable, and
        re-scans pick up replacements).
    max_models:
        Resident-model cap; least-recently-used bundles are evicted.
    max_batch:
        Upper bound on how many queued requests one forward coalesces.
        Compiled engines are built with this as their batch capacity,
        so the serve path never recompiles: every coalesced batch size
        binds views of the one load-time plan.
    engine:
        Inference engine for the batched forwards: ``"module"`` (the
        autograd student under ``no_grad``) or ``"compiled"`` (a
        tape-free :class:`repro.infer.CompiledStudent` built per LRU
        entry at load time).  At default precision the engines are
        bitwise identical — switching never changes a served forecast,
        only its cost.
    precision:
        Numeric mode for compiled engines (``"float32"``, ``"mixed"``,
        ``"int8"``; see :data:`repro.infer.PRECISIONS`).  Reduced modes
        are error-budget-gated at load time and require
        ``engine="compiled"``.
    serve_threads:
        Worker threads draining the queue.  ``1`` (default) keeps the
        single-threaded drain; ``N > 1`` runs up to N *different
        models'* batches concurrently per round.  Requests for one
        model are never executed concurrently or reordered.

    Requests enter through :meth:`submit` (returns a
    :class:`~concurrent.futures.Future`) or the blocking :meth:`predict`.
    A drain loop batches everything pending per model into one forward,
    so N concurrent clients cost one pass of layer overhead instead of N.
    """

    #: Lock discipline, machine-checked by ``repro lint``: ``_wake`` is
    #: a Condition wrapping ``_lock``, so holding either guards the
    #: shared state.
    GUARDED_BY = {
        "stats": ("_lock", "_wake"),
        "_paths": ("_lock", "_wake"),
        "_models": ("_lock", "_wake"),
        "_pending": ("_lock", "_wake"),
        "_queue_depth": ("_lock", "_wake"),
        "_in_flight": ("_lock", "_wake"),
        "_paused": ("_lock", "_wake"),
        "_closed": ("_lock", "_wake"),
    }

    def __init__(self, artifact_dir: str, max_models: int = 4,
                 max_batch: int = 64, engine: str = "module",
                 precision: str = "float32", serve_threads: int = 1):
        if max_models < 1:
            raise ValueError("max_models must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if serve_threads < 1:
            raise ValueError("serve_threads must be >= 1")
        self.artifact_dir = artifact_dir
        self.max_models = int(max_models)
        self.max_batch = int(max_batch)
        self.engine = resolve_engine(engine)
        self.precision = resolve_precision(precision)
        if self.precision != "float32" and self.engine != "compiled":
            raise ValueError(
                f"precision={self.precision!r} requires engine='compiled' "
                f"(the module path is float32-only)")
        self.serve_threads = int(serve_threads)
        self.stats = ServiceStats()

        self._paths: dict[tuple[str, int], str] = {}
        self._models: OrderedDict[tuple[str, int], _LoadedModel] = OrderedDict()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._pending: OrderedDict[tuple[str, int], list[_Request]] = OrderedDict()
        # Live gauges (see ServiceStats.queue_depth / in_flight).
        self._queue_depth = 0
        self._in_flight = 0
        self._paused = False
        self._closed = False
        self._pool = (ThreadPoolExecutor(
            max_workers=self.serve_threads,
            thread_name_prefix="forecast-batch")
            if self.serve_threads > 1 else None)
        self.scan()
        self._worker = threading.Thread(
            target=self._serve_loop, name="forecast-service", daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def scan(self) -> dict[tuple[str, int], str]:
        """(Re)index the artifact directory; returns the key → path map."""
        paths = scan_artifact_dir(self.artifact_dir)
        with self._lock:
            self._paths = paths
        return dict(paths)

    def keys(self) -> list[tuple[str, int]]:
        with self._lock:
            return list(self._paths)

    def path_for(self, key: tuple[str, int]) -> str:
        """Bundle path registered for ``key``."""
        with self._lock:
            path = self._paths.get(key)
        if path is None:
            raise KeyError(f"no artifact registered for {key!r}")
        return path

    def resolve_key(self, dataset: str | None = None,
                    horizon: int | None = None) -> tuple[str, int]:
        with self._lock:
            keys = list(self._paths)
        if dataset is None and horizon is None and len(keys) == 1:
            return keys[0]
        matches = [k for k in keys
                   if (dataset is None or k[0] == dataset)
                   and (horizon is None or k[1] == horizon)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise KeyError(
                f"no artifact for dataset={dataset!r} horizon={horizon!r} "
                f"in {self.artifact_dir!r}; available: {sorted(keys)}")
        raise KeyError(
            f"ambiguous request dataset={dataset!r} horizon={horizon!r}; "
            f"matches {sorted(matches)} — pass both dataset and horizon")

    def config_for(self, key: tuple[str, int]):
        """Resolved :class:`TimeKDConfig` of the bundle behind ``key``.

        Loads the model lazily (it is about to be used anyway), so the
        config and the served weights always come from the same bundle.
        """
        return self._get_model(key).artifact.config

    def snapshot(self) -> ServiceStats:
        """Consistent copy of the counters.

        The worker threads mutate :attr:`stats` under the service lock;
        reading the live dataclass field-by-field can interleave with a
        batch completing.  ``snapshot()`` copies everything under the
        same lock and folds in the resident compiled engines' plan-cache
        counters, so derived values (like ``mean_batch``) are computed
        from one coherent state.
        """
        with self._lock:
            stats = replace(self.stats)
            stats.queue_depth = self._queue_depth
            stats.in_flight = self._in_flight
            engines = [m.compiled for m in self._models.values()
                       if m.compiled is not None]
        for engine in engines:
            plan = engine.plan_stats()
            stats.plan_hits += plan["hits"]
            stats.plan_misses += plan["misses"]
            stats.plan_evictions += plan["evictions"]
            stats.plan_rebuilds += plan["rebuilds"]
        return stats

    def queue_depth(self) -> int:
        """Requests accepted by :meth:`submit` but not yet popped into a
        batch.  A gauge, not a counter — safe to poll at request rate."""
        with self._lock:
            return self._queue_depth

    def in_flight(self) -> int:
        """Requests popped into a running batch whose future has not
        resolved yet (the work the drain loop is committed to)."""
        with self._lock:
            return self._in_flight

    def pressure(self) -> tuple[int, int]:
        """One consistent ``(queue_depth, in_flight)`` reading.

        The admission controller needs both gauges from the same
        instant — reading them through two lock acquisitions could see
        a batch counted twice (still queued in one read, already in
        flight in the next) and over-shed at the boundary.
        """
        with self._lock:
            return self._queue_depth, self._in_flight

    def restore_stats(self, payload: dict) -> None:
        """Fold a recovered snapshot's service counters into this process.

        Counters are cumulative across incarnations: additive fields
        merge by addition and ``max_coalesced`` by maximum, so a
        monitoring pipeline sees one continuous history over a crash.
        ``plan_*`` counters are skipped — they are derived live from the
        resident engines' caches and restoring stale ones would double
        count.
        """
        restored = ServiceStats.from_dict(payload)
        with self._lock:
            self.stats.requests += restored.requests
            self.stats.batches += restored.batches
            self.stats.served += restored.served
            self.stats.loads += restored.loads
            self.stats.evictions += restored.evictions
            self.stats.max_coalesced = max(
                self.stats.max_coalesced, restored.max_coalesced)

    def _get_model(self, key: tuple[str, int]) -> _LoadedModel:
        """Fetch (loading lazily, LRU-evicting) the model for ``key``."""
        with self._lock:
            model = self._models.get(key)
            if model is not None:
                self._models.move_to_end(key)
                return model
            path = self._paths.get(key)
        if path is None:
            raise KeyError(f"no artifact registered for {key!r}")
        artifact = load_student_artifact(path)
        student = artifact.build_student()
        # max_batch doubles as the engine's batch capacity: the one
        # compile stall happens here, at load time, and no coalesced
        # batch size can ever trigger a rebuild on the request path.
        compiled = (CompiledStudent(student, precision=self.precision,
                                    max_batch=self.max_batch)
                    if self.engine == "compiled" else None)
        model = _LoadedModel(artifact, student, compiled)
        with self._lock:
            existing = self._models.get(key)
            if existing is not None:  # lost a concurrent load race
                self._models.move_to_end(key)
                return existing
            self._models[key] = model
            self._models.move_to_end(key)
            self.stats.loads += 1
            while len(self._models) > self.max_models:
                self._models.popitem(last=False)
                self.stats.evictions += 1
        return model

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(self, history: np.ndarray, dataset: str | None = None,
               horizon: int | None = None,
               raw_values: bool = False) -> Future:
        """Enqueue one ``(H, N)`` window; resolves to a ``(M, N)`` forecast.

        ``raw_values=True`` treats the window as unscaled data: the
        bundled scaler z-scales it on the way in and inverse-transforms
        the forecast on the way out.
        """
        key = self.resolve_key(dataset, horizon)
        model = self._get_model(key)
        config = model.artifact.config
        history = np.asarray(history, dtype=np.float32)
        expected = (config.history_length, config.num_variables)
        if history.shape != expected:
            raise ValueError(
                f"request window for {key!r} must have shape {expected}, "
                f"got {history.shape}")
        if raw_values and model.artifact.scaler is None:
            raise ValueError(
                f"artifact for {key!r} was saved without a scaler; "
                "raw-value requests are unavailable")
        request = _Request(history, raw_values)
        with self._wake:
            if self._closed:
                raise RuntimeError("ForecastService is closed")
            self._pending.setdefault(key, []).append(request)
            self.stats.requests += 1
            self._queue_depth += 1
            self._wake.notify()
        return request.future

    def predict(self, history: np.ndarray, dataset: str | None = None,
                horizon: int | None = None,
                raw_values: bool = False) -> np.ndarray:
        """Blocking single-window convenience around :meth:`submit`."""
        return self.submit(history, dataset=dataset, horizon=horizon,
                           raw_values=raw_values).result()

    # ------------------------------------------------------------------
    # worker
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Hold the worker so queued requests accumulate (benchmarking)."""
        with self._wake:
            self._paused = True

    def resume(self) -> None:
        with self._wake:
            self._paused = False
            self._wake.notify_all()

    def _serve_loop(self) -> None:
        while True:
            with self._wake:
                while (self._paused or not self._pending) and not self._closed:
                    self._wake.wait()
                if not self._pending:
                    return  # closed and drained
                # One round: one batch each for up to serve_threads
                # distinct models.  A key reappears only in a later
                # round (after the barrier below), so one model's
                # batches never run concurrently or out of order.
                rounds = []
                for key in list(self._pending)[: self.serve_threads]:
                    queue = self._pending[key]
                    batch = queue[: self.max_batch]
                    del queue[: len(batch)]
                    if not queue:
                        del self._pending[key]
                    self.stats.batches += 1
                    self.stats.served += len(batch)
                    self.stats.max_coalesced = max(
                        self.stats.max_coalesced, len(batch))
                    self._queue_depth -= len(batch)
                    self._in_flight += len(batch)
                    rounds.append((key, batch))
            if self._pool is not None and len(rounds) > 1:
                done = [self._pool.submit(self._run_guarded, key, batch)
                        for key, batch in rounds]
                for future in done:
                    future.result()  # _run_guarded never raises
            else:
                for key, batch in rounds:
                    self._run_guarded(key, batch)

    def _run_guarded(self, key: tuple[str, int],
                     batch: list[_Request]) -> None:
        try:
            self._run_batch(key, batch)
        except BaseException as error:  # noqa: BLE001 — fail futures
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(error)
        finally:
            # Every future in the batch is resolved (result or error) by
            # this point, so the requests leave the in-flight gauge.
            with self._lock:
                self._in_flight -= len(batch)

    def _run_batch(self, key: tuple[str, int], batch: list[_Request]) -> None:
        model = self._get_model(key)
        scaler = model.artifact.scaler
        histories = []
        for request in batch:
            window = request.history
            if request.raw_values:
                window = scaler.transform(window).astype(np.float32)
            histories.append(window)
        predictions = model.predict(np.stack(histories))
        for request, prediction in zip(batch, predictions):
            if request.raw_values:
                prediction = scaler.inverse_transform(prediction)
            request.future.set_result(prediction)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the worker after draining already-queued requests."""
        with self._wake:
            if self._closed:
                return
            self._closed = True
            self._wake.notify_all()
        self._worker.join()
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "ForecastService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
