"""Consistent-hash router over a fleet of shared-nothing workers.

:class:`ShardRouter` presents the same surface as one
:class:`~repro.serve.service.ForecastService` — ``submit``/``predict``,
key resolution, stats snapshot, pause/resume/close — while fanning the
work out to per-shard :class:`~repro.shard.worker.ShardWorker` queues.
Request routing is by *model key*: all traffic for one ``(dataset,
horizon)`` bundle lands on the shard that owns it, so that bundle is
resident (and its compiled plan warm) on exactly one LRU instead of
being duplicated N times.  The streaming layer routes by *stream key*
instead (see :mod:`repro.shard.stream`); both go through the same
:class:`~repro.shard.ring.HashRing`, so assignment is deterministic
and stable across processes.

Because the student forward is batch-independent and every worker loads
the identical immutable bundle, which worker answers a request can
never change the forecast — sharding moves *where* the work happens,
bitwise never *what* it computes.  ``snapshot()`` merges per-shard
counters into one cluster view, so monitoring reads a sharded
deployment exactly like a single service.
"""

from __future__ import annotations

from ..serve.service import ServiceStats, scan_artifact_dir
from .ring import DEFAULT_VNODES, HashRing
from .worker import ShardWorker

__all__ = ["ShardRouter"]


class ShardRouter:
    """Route requests across ``workers`` shared-nothing shards.

    Parameters
    ----------
    artifact_dir:
        Bundle directory shared (read-only) by every worker.
    workers:
        Shard count.  ``1`` is a degenerate but valid ring — useful for
        testing the routed path against the direct one.
    vnodes:
        Virtual nodes per shard on the ring (balance knob).
    **service_kwargs:
        Forwarded to every worker's :class:`ForecastService`.
    """

    def __init__(self, artifact_dir: str, workers: int = 1,
                 vnodes: int = DEFAULT_VNODES, **service_kwargs):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.artifact_dir = artifact_dir
        self.ring = HashRing(workers, vnodes=vnodes)
        self.workers = [ShardWorker(shard, artifact_dir, **service_kwargs)
                        for shard in range(int(workers))]
        self._paths = scan_artifact_dir(artifact_dir)

    # ------------------------------------------------------------------
    # registry (ForecastService surface)
    # ------------------------------------------------------------------
    def scan(self) -> dict[tuple[str, int], str]:
        """Re-index the artifact directory on the router and all workers."""
        for worker in self.workers:
            worker.service.scan()
        self._paths = scan_artifact_dir(self.artifact_dir)
        return dict(self._paths)

    def keys(self) -> list[tuple[str, int]]:
        return list(self._paths)

    def path_for(self, key: tuple[str, int]) -> str:
        path = self._paths.get(key)
        if path is None:
            raise KeyError(f"no artifact registered for {key!r}")
        return path

    def resolve_key(self, dataset: str | None = None,
                    horizon: int | None = None) -> tuple[str, int]:
        # Any worker resolves identically (same directory scan); asking
        # worker 0 keeps the error messages of the single-service path.
        return self.workers[0].service.resolve_key(dataset, horizon)

    def config_for(self, key: tuple[str, int]):
        return self.worker_for_model(key).service.config_for(key)

    def worker_for_model(self, key: tuple[str, int]) -> ShardWorker:
        """The worker owning a model key's request traffic."""
        return self.workers[self.ring.shard_for(key)]

    def worker_for_stream(self, key) -> ShardWorker:
        """The worker owning a stream key (``(tenant, series)``-style)."""
        return self.workers[self.ring.shard_for(key)]

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(self, history, dataset: str | None = None,
               horizon: int | None = None, raw_values: bool = False):
        """Enqueue one window on the owning shard; returns its Future."""
        key = self.resolve_key(dataset, horizon)
        return self.worker_for_model(key).service.submit(
            history, dataset=key[0], horizon=key[1], raw_values=raw_values)

    def predict(self, history, dataset: str | None = None,
                horizon: int | None = None, raw_values: bool = False):
        """Blocking single-window convenience around :meth:`submit`."""
        return self.submit(history, dataset=dataset, horizon=horizon,
                           raw_values=raw_values).result()

    # ------------------------------------------------------------------
    # cluster view
    # ------------------------------------------------------------------
    def snapshot(self) -> ServiceStats:
        """Per-shard counters merged into one cluster ``ServiceStats``."""
        return ServiceStats.merge(
            [worker.service.snapshot() for worker in self.workers])

    def queue_depth(self) -> int:
        """Cluster-wide queued-request gauge (sum over shards)."""
        return sum(worker.service.queue_depth() for worker in self.workers)

    def in_flight(self) -> int:
        """Cluster-wide in-flight-request gauge (sum over shards)."""
        return sum(worker.service.in_flight() for worker in self.workers)

    def pressure(self) -> tuple[int, int]:
        """Summed ``(queue_depth, in_flight)`` across shards.

        Each shard's pair is read atomically; the sum interleaves with
        other shards' drains, which only shifts load between the two
        gauges — the total the admission layer compares against its
        bound never double-counts a request.
        """
        depth = flight = 0
        for worker in self.workers:
            d, f = worker.service.pressure()
            depth += d
            flight += f
        return depth, flight

    def shard_snapshots(self) -> dict[int, ServiceStats]:
        """Unmerged per-shard counters (skew debugging, benchmarks)."""
        return {worker.shard: worker.service.snapshot()
                for worker in self.workers}

    def restore_stats(self, payload: dict) -> None:
        """Fold recovered cluster counters in (onto shard 0).

        Recovered totals are cluster-cumulative; attributing them to
        shard 0 keeps the merged view continuous across a crash without
        inventing a per-shard split the snapshot may not record.
        """
        self.workers[0].service.restore_stats(payload)

    # ------------------------------------------------------------------
    # uniform service attributes
    # ------------------------------------------------------------------
    @property
    def engine(self) -> str:
        return self.workers[0].service.engine

    @property
    def precision(self) -> str:
        return self.workers[0].service.precision

    @property
    def serve_threads(self) -> int:
        return self.workers[0].service.serve_threads

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def pause(self) -> None:
        for worker in self.workers:
            worker.service.pause()

    def resume(self) -> None:
        for worker in self.workers:
            worker.service.resume()

    def close(self) -> None:
        for worker in self.workers:
            worker.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
