"""Sharded streaming front end: route ticks, keep the parity contract.

:class:`ShardedStreamingForecaster` looks like one
:class:`~repro.stream.forecaster.StreamingForecaster` but owns N of
them — one per :class:`~repro.shard.worker.ShardWorker`, each with its
own ring buffers, drift monitors, ingest lock, sequence counter and
micro-batch queue.  Ticks route by stream key through the router's
:class:`~repro.shard.ring.HashRing`, so a key's entire history lives on
exactly one shard and per-key ordering needs no cross-shard locking.
Drain is naturally parallel: each shard's service thread coalesces and
executes its own batches, so N workers give N concurrent student
forwards without sharing a lock.

**Why sharding cannot change a forecast.**  The per-worker engine is
the unmodified :class:`StreamingForecaster`; routing only decides
*which* instance ingests a tick.  A key's window content, cadence
boundaries and drift state depend only on that key's own ticks — which
all land on one shard, in arrival order — and the student forward is
batch-independent, so what other keys share the shard's batches is
value-irrelevant.  Hence an N-worker replay is **bitwise identical** to
the 1-worker (and the unsharded) run, which is exactly what
``--verify`` asserts end to end.
"""

from __future__ import annotations

from ..stream.forecaster import StreamingForecaster, StreamStats
from .router import ShardRouter

__all__ = ["ShardedStreamingForecaster"]


class ShardedStreamingForecaster:
    """Per-key routing over per-shard :class:`StreamingForecaster`\\ s.

    Parameters
    ----------
    router:
        The :class:`ShardRouter` whose workers host the shards.  The
        router is adopted, not copied — ``close()`` closes it.
    dataset / horizon:
        Model registry key, resolved like the unsharded forecaster.
    **forecaster_kwargs:
        Forwarded verbatim to every per-shard
        :class:`StreamingForecaster` (cadence, gap policy, drift
        parameters, ...), so all shards run the identical policy.
    """

    def __init__(self, router: ShardRouter, dataset: str | None = None,
                 horizon: int | None = None, **forecaster_kwargs):
        self.router = router
        self.shards: list[StreamingForecaster] = []
        for worker in router.workers:
            forecaster = StreamingForecaster(
                worker.service, dataset, horizon, **forecaster_kwargs)
            worker.forecaster = forecaster
            self.shards.append(forecaster)
        template = self.shards[0]
        self.model_key = template.model_key
        self.input_len = template.input_len
        self.horizon_len = template.horizon_len
        self.num_variables = template.num_variables
        self.cadence = template.cadence
        self.raw_values = template.raw_values

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_for(self, key) -> int:
        """Ring assignment of a stream key (stable across processes)."""
        return self.router.ring.shard_for(key)

    def _owner(self, key) -> StreamingForecaster:
        return self.shards[self.shard_for(key)]

    # ------------------------------------------------------------------
    # StreamingForecaster surface
    # ------------------------------------------------------------------
    def append(self, key, timestamp, values):
        """Ingest one tick on the owning shard (same contract as the
        unsharded :meth:`StreamingForecaster.append`)."""
        return self._owner(key).append(key, timestamp, values)

    def forecast(self, key):
        return self._owner(key).forecast(key)

    def latest(self, key, wait: bool = True):
        return self._owner(key).latest(key, wait=wait)

    def state(self, key):
        return self._owner(key).state(key)

    def monitor(self, key):
        return self._owner(key).monitor(key)

    def reset_drift(self, key) -> None:
        self._owner(key).reset_drift(key)

    def drop(self, key) -> None:
        self._owner(key).drop(key)

    def keys(self) -> list:
        found = []
        for shard in self.shards:
            found.extend(shard.keys())
        return found

    def alarmed_keys(self) -> list:
        alarmed = []
        for shard in self.shards:
            alarmed.extend(shard.alarmed_keys())
        return alarmed

    @property
    def service(self) -> ShardRouter:
        """The cluster-facing service surface (the router)."""
        return self.router

    @property
    def seq(self) -> int:
        """Total accepted ticks across all shards.

        Per-shard WAL sequences stay independent (each shard logs its
        own ticks); the sum is the cluster-level ingest counter.
        """
        return sum(shard.seq for shard in self.shards)

    @property
    def interval(self) -> float:
        return self.shards[0].interval

    def durable_config(self) -> dict:
        """Identity + policy knobs (uniform across shards by construction)."""
        return self.shards[0].durable_config()

    # ------------------------------------------------------------------
    # cluster view
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Merged stream + service counters for the whole cluster.

        Reads like an unsharded snapshot (same keys, summed counters)
        with a ``workers`` field added; per-shard breakdowns come from
        :meth:`shard_snapshots` when skew matters.
        """
        merged = StreamStats()
        seq = series = alarmed = 0
        for shard in self.shards:
            part = shard.snapshot()["stream"]
            merged.ticks += part["ticks"]
            merged.rows += part["rows"]
            merged.filled += part["filled"]
            merged.gaps += part["gaps"]
            merged.forecasts += part["forecasts"]
            merged.fallbacks += part["fallbacks"]
            merged.drift_alarms += part["drift_alarms"]
            seq += part["seq"]
            series += part["series"]
            alarmed += part["alarmed"]
        stream = merged.as_dict()
        stream["seq"] = seq
        stream["series"] = series
        stream["alarmed"] = alarmed
        stream["workers"] = len(self.shards)
        service = self.router.snapshot().as_dict()
        service["engine"] = self.router.engine
        service["precision"] = self.router.precision
        service["serve_threads"] = self.router.serve_threads
        return {"stream": stream, "service": service}

    def shard_snapshots(self) -> dict[int, dict]:
        """Unmerged per-shard snapshots keyed by shard label."""
        return {index: shard.snapshot()
                for index, shard in enumerate(self.shards)}

    def clear(self) -> None:
        """Fail-closed wipe of every shard (recovery uses this)."""
        for shard in self.shards:
            shard.clear()

    def restore_from(self, directory: str, *, replay_wal: bool = True,
                     strict_wal: bool = True, recoverer=None):
        """Recover the whole cluster from ``directory``'s chains.

        Runs a :class:`repro.durable.shard.ShardedRecoverer` (pass your
        own via ``recoverer`` to inspect stages afterwards); handles
        resharding when the directory was written by a different worker
        count.  Raises :class:`repro.durable.recover.RecoveryError`
        unless recovery reaches ``succeeded``.
        """
        from ..durable.recover import RecoveryError
        from ..durable.shard import ShardedRecoverer

        if recoverer is None:
            recoverer = ShardedRecoverer()
        state = recoverer.recover(directory, self, replay_wal=replay_wal,
                                  strict_wal=strict_wal)
        if state.failure_reason is not None:
            raise RecoveryError(state)
        return state

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self.router.close()

    def __enter__(self) -> "ShardedStreamingForecaster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
