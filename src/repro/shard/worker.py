"""One shared-nothing shard of the serving runtime.

A :class:`ShardWorker` owns everything request-path state used to live
directly in the process-wide :class:`~repro.serve.service.ForecastService`
— the LRU model registry, the micro-batch queue, the compiled-engine
plan caches and the drain thread.  Workers share *nothing* mutable:
they read the same artifact directory (bundles are immutable published
files) but never touch each other's locks, queues or caches, so N
workers drain N queues on N threads with zero cross-shard coordination.
That independence is also what makes the scale story honest — adding a
worker adds a full serving pipeline, not a lane behind a shared lock.
"""

from __future__ import annotations

from ..serve.service import ForecastService

__all__ = ["ShardWorker"]


class ShardWorker:
    """Shard-local :class:`ForecastService` plus its streaming engine.

    Parameters
    ----------
    shard:
        This worker's label on the ring (``0 .. workers-1``).
    artifact_dir:
        The shared (read-only) bundle directory; every worker indexes
        the same artifacts, so any worker can serve any model key.
    **service_kwargs:
        Forwarded to :class:`ForecastService` (``max_models``,
        ``max_batch``, ``engine``, ``precision``, ``serve_threads``).

    ``forecaster`` is attached by
    :class:`repro.shard.stream.ShardedStreamingForecaster` when the
    deployment streams; pure request/response serving leaves it None.
    """

    def __init__(self, shard: int, artifact_dir: str, **service_kwargs):
        if shard < 0:
            raise ValueError("shard labels must be non-negative")
        self.shard = int(shard)
        self.service = ForecastService(artifact_dir, **service_kwargs)
        #: Per-shard StreamingForecaster (None until a stream attaches).
        self.forecaster = None

    def close(self) -> None:
        self.service.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardWorker(shard={self.shard}, "
                f"engine={self.service.engine!r})")
