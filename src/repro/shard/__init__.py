"""``repro.shard`` — shared-nothing horizontal scale-out.

Four pieces, layered:

* :mod:`repro.shard.ring` — :class:`HashRing`, a deterministic
  consistent-hash ring with virtual nodes (stable ``key → shard``,
  minimal movement on resize).
* :mod:`repro.shard.worker` — :class:`ShardWorker`, one shard's
  self-contained serving pipeline (own LRU registry, micro-batch
  queue, compiled-plan caches, drain thread).
* :mod:`repro.shard.router` — :class:`ShardRouter`, the
  ``ForecastService``-shaped front door that fans requests to workers
  and merges their stats into a cluster view.
* :mod:`repro.shard.stream` — :class:`ShardedStreamingForecaster`,
  the streaming front end routing ticks by stream key with the bitwise
  replay-parity contract intact.

Per-shard durability (shard-labeled snapshots/WALs, staged recovery,
resharding) lives in :mod:`repro.durable.shard`.
"""

from .ring import DEFAULT_VNODES, HashRing
from .router import ShardRouter
from .stream import ShardedStreamingForecaster
from .worker import ShardWorker

__all__ = [
    "DEFAULT_VNODES",
    "HashRing",
    "ShardRouter",
    "ShardWorker",
    "ShardedStreamingForecaster",
]
