"""Deterministic consistent-hash ring with virtual nodes.

The sharded runtime needs a stable ``key → shard`` assignment with two
properties a plain ``hash(key) % N`` cannot give:

* **process stability** — the same key must land on the same shard in
  every process, every run, every Python version.  Points come from
  ``blake2b`` (not the salted builtin ``hash``) over a canonical JSON
  encoding of the key (:func:`repro.durable.keys.encode_key`, the same
  encoding the WAL uses), so assignment is a pure function of the key
  and the ring shape.
* **minimal movement** — growing ``N → N+1`` shards must not reshuffle
  the world.  Each shard projects ``vnodes`` points onto a 64-bit ring;
  a key belongs to the first point at or after its own hash (wrapping).
  Adding a shard inserts only that shard's points, so the only keys
  that move are the ones now falling in the new shard's arcs — on
  average ``1/(N+1)`` of them; removing a shard moves only its own keys.

With enough virtual nodes (the default 64 per shard) the arcs average
out and shards stay within a small factor of the fair share — the
property tests in ``tests/test_shard_properties.py`` pin both bounds.
"""

from __future__ import annotations

import bisect
import hashlib
import json

from ..durable.keys import encode_key

__all__ = ["DEFAULT_VNODES", "HashRing"]

#: Virtual nodes per shard; enough for ±balance without slowing lookups.
DEFAULT_VNODES = 64


def _point(token: str) -> int:
    """Map a token to a 64-bit ring position (keyless blake2b)."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


def key_point(key) -> int:
    """Ring position of a stream key (canonical-JSON encoded)."""
    token = json.dumps(encode_key(key), sort_keys=True,
                       separators=(",", ":"))
    return _point("key:" + token)


class HashRing:
    """Consistent assignment of stream keys to shard labels ``0..N-1``.

    Parameters
    ----------
    shards:
        Initial shard count; labels ``0 .. shards-1`` are placed.
    vnodes:
        Virtual nodes per shard.  More vnodes → tighter balance,
        linearly more memory and ``log``-factor slower lookups.
    """

    def __init__(self, shards: int, vnodes: int = DEFAULT_VNODES):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        #: Sorted ``(point, shard)`` pairs; ties break by shard label so
        #: even a point collision resolves identically everywhere.
        self._ring: list[tuple[int, int]] = []
        self._shards: set[int] = set()
        for shard in range(int(shards)):
            self.add_shard(shard)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def shards(self) -> list[int]:
        """Sorted shard labels currently on the ring."""
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard) -> bool:
        return shard in self._shards

    def add_shard(self, shard: int) -> None:
        """Place ``shard``'s virtual nodes (moves only keys it now owns)."""
        shard = int(shard)
        if shard < 0:
            raise ValueError("shard labels must be non-negative")
        if shard in self._shards:
            raise ValueError(f"shard {shard} is already on the ring")
        for vnode in range(self.vnodes):
            entry = (_point(f"shard:{shard}/vnode:{vnode}"), shard)
            bisect.insort(self._ring, entry)
        self._shards.add(shard)

    def remove_shard(self, shard: int) -> None:
        """Drop ``shard`` (its keys redistribute; nobody else moves)."""
        shard = int(shard)
        if shard not in self._shards:
            raise ValueError(f"shard {shard} is not on the ring")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._ring = [entry for entry in self._ring if entry[1] != shard]
        self._shards.remove(shard)

    # ------------------------------------------------------------------
    # assignment
    # ------------------------------------------------------------------
    def shard_for(self, key) -> int:
        """The shard owning ``key`` — stable across processes and runs."""
        point = key_point(key)
        index = bisect.bisect_right(self._ring, (point, 2**64))
        if index == len(self._ring):
            index = 0  # wrap past the highest point
        return self._ring[index][1]

    def partition(self, keys) -> dict[int, list]:
        """Group ``keys`` by owning shard (shards with no keys omitted)."""
        groups: dict[int, list] = {}
        for key in keys:
            groups.setdefault(self.shard_for(key), []).append(key)
        return groups
