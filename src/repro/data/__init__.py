"""``repro.data`` — datasets, windowing and prompt construction.

Seeded synthetic stand-ins for ETT/Weather/Exchange/PEMS, the standard
chronological split + sliding-window protocol, dataset-level scaling, and
the Figure-2 prompt factory.
"""

from .datasets import DATASETS, DatasetSpec, dataset_names, load_dataset
from .loader import DataLoader
from .prompts import PromptFactory
from .scaler import StandardScaler
from .series import MultivariateTimeSeries
from .synthetic import (
    ETT_COLUMNS,
    generate_ett,
    generate_exchange,
    generate_pems,
    generate_weather,
)
from .windows import ForecastingData, WindowDataset, make_forecasting_data

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "DataLoader",
    "PromptFactory",
    "StandardScaler",
    "MultivariateTimeSeries",
    "ETT_COLUMNS",
    "generate_ett",
    "generate_exchange",
    "generate_pems",
    "generate_weather",
    "ForecastingData",
    "WindowDataset",
    "make_forecasting_data",
]
