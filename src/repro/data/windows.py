"""Sliding-window forecasting datasets and chronological splits.

Follows the standard TSlib protocol the paper's baselines use: the series
is split chronologically into train/val/test segments; each split yields
``(history, future)`` window pairs of shape ``(H, N)`` / ``(M, N)``; the
validation and test splits may look back across their left border for
history (never for targets), so no future information ever leaks into
training.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .scaler import StandardScaler
from .series import MultivariateTimeSeries

__all__ = ["WindowDataset", "ForecastingData", "make_forecasting_data"]


@dataclass
class WindowDataset:
    """Sliding (history, future) windows over a contiguous value matrix."""

    values: np.ndarray
    history_length: int
    horizon: int

    def __post_init__(self):
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 2:
            raise ValueError("values must be (T, N)")
        window = self.history_length + self.horizon
        if len(self.values) < window:
            raise ValueError(
                f"series of length {len(self.values)} too short for "
                f"window {window}")

    def __len__(self) -> int:
        return len(self.values) - self.history_length - self.horizon + 1

    def __getitem__(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        start = index
        mid = start + self.history_length
        stop = mid + self.horizon
        return self.values[start:mid], self.values[mid:stop]

    def batch(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Gather windows into ``(B, H, N)`` and ``(B, M, N)`` arrays."""
        histories, futures = [], []
        for index in indices:
            history, future = self[int(index)]
            histories.append(history)
            futures.append(future)
        return np.stack(histories), np.stack(futures)


@dataclass
class ForecastingData:
    """Scaled train/val/test window datasets plus the fitted scaler."""

    train: WindowDataset
    val: WindowDataset
    test: WindowDataset
    scaler: StandardScaler
    num_variables: int
    frequency_minutes: int
    name: str = ""


def make_forecasting_data(
    series: MultivariateTimeSeries,
    history_length: int = 96,
    horizon: int = 96,
    splits: tuple[float, float, float] = (0.7, 0.1, 0.2),
    train_fraction: float = 1.0,
) -> ForecastingData:
    """Prepare a series for supervised forecasting.

    Parameters
    ----------
    series:
        Raw multivariate series.
    history_length / horizon:
        ``H`` and ``M`` of paper Definition 1 (input 96 throughout the
        paper's evaluation).
    splits:
        Chronological train/val/test fractions (must sum to 1).
    train_fraction:
        Keep only the first fraction of the *training windows* — used by
        the few-shot (Table V) and scalability (Figure 7) experiments.
        The fraction is applied in window units, not raw rows: a split
        with ``W`` windows keeps ``max(1, round(W * fraction))`` of
        them, so ``len(train)`` scales linearly with the fraction even
        for short series where the ``H + M`` window overhead dominates.
    """
    if abs(sum(splits) - 1.0) > 1e-6:
        raise ValueError("splits must sum to 1")
    total = series.length
    train_end = int(total * splits[0])
    val_end = train_end + int(total * splits[1])

    scaler = StandardScaler().fit(series.values[:train_end])
    scaled = scaler.transform(series.values)

    lookback = history_length
    train_values = scaled[:train_end]
    val_values = scaled[train_end - lookback:val_end]
    test_values = scaled[val_end - lookback:]

    if train_fraction < 1.0:
        window = history_length + horizon
        num_windows = len(train_values) - window + 1
        keep_windows = max(1, int(round(num_windows * train_fraction)))
        # First k windows span the first (k - 1) + H + M rows.
        train_values = train_values[: keep_windows - 1 + window]

    return ForecastingData(
        train=WindowDataset(train_values, history_length, horizon),
        val=WindowDataset(val_values, history_length, horizon),
        test=WindowDataset(test_values, history_length, horizon),
        scaler=scaler,
        num_variables=series.num_variables,
        frequency_minutes=series.frequency_minutes,
        name=series.name,
    )
