"""Mini-batch iteration over window datasets."""

from __future__ import annotations

import numpy as np

from .windows import WindowDataset

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate ``(history, future)`` batches from a :class:`WindowDataset`.

    Parameters
    ----------
    dataset:
        Source windows.
    batch_size:
        Windows per batch; the final partial batch is kept.
    shuffle:
        Reshuffle indices each epoch (training).
    seed:
        RNG seed for shuffling.
    max_batches:
        Optional cap on batches per epoch — the knob the scaled-down
        benchmarks use to bound epoch cost.
    """

    def __init__(self, dataset: WindowDataset, batch_size: int = 16,
                 shuffle: bool = False, seed: int = 0,
                 max_batches: int | None = None):
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.max_batches = max_batches
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        full = (len(self.dataset) + self.batch_size - 1) // self.batch_size
        if self.max_batches is not None:
            return min(full, self.max_batches)
        return full

    def __iter__(self):
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        count = 0
        for start in range(0, len(indices), self.batch_size):
            if self.max_batches is not None and count >= self.max_batches:
                return
            batch = indices[start:start + self.batch_size]
            yield self.dataset.batch(batch)
            count += 1
