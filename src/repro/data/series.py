"""Container type for multivariate time series (paper Definition 1)."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

__all__ = ["MultivariateTimeSeries"]

_FINITE_MODES = ("warn", "strict", "ignore")


@dataclass
class MultivariateTimeSeries:
    """A time-ordered matrix of observations ``(T, N)``.

    Attributes
    ----------
    values:
        Observation matrix; rows are time steps, columns are variables.
    columns:
        Variable names (e.g. ``HUFL`` ... ``OT`` for ETT).
    frequency_minutes:
        Sampling interval, used when rendering prompts.
    name:
        Dataset identifier.
    validate_finite:
        What to do about NaN/inf observations: ``"warn"`` (default)
        emits a :class:`UserWarning` at construction so ingestion
        errors surface at the boundary instead of as NaN forecasts,
        ``"strict"`` raises, ``"ignore"`` skips the check.
    """

    values: np.ndarray
    columns: list[str] = field(default_factory=list)
    frequency_minutes: int = 60
    name: str = ""
    validate_finite: str = "warn"

    def __post_init__(self):
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 2:
            raise ValueError(f"values must be 2-D (T, N), got {self.values.shape}")
        if not self.columns:
            self.columns = [f"var{i}" for i in range(self.values.shape[1])]
        if len(self.columns) != self.values.shape[1]:
            raise ValueError("columns length must match the variable axis")
        if self.validate_finite not in _FINITE_MODES:
            raise ValueError(
                f"validate_finite must be one of {_FINITE_MODES}, "
                f"got {self.validate_finite!r}")
        if self.validate_finite != "ignore":
            finite = np.isfinite(self.values)
            if not finite.all():
                bad = int((~finite).sum())
                message = (
                    f"series {self.name!r} contains {bad} non-finite "
                    f"value(s) out of {self.values.size}")
                if self.validate_finite == "strict":
                    raise ValueError(message)
                warnings.warn(message, stacklevel=2)

    @property
    def length(self) -> int:
        return self.values.shape[0]

    @property
    def num_variables(self) -> int:
        return self.values.shape[1]

    def __len__(self) -> int:
        return self.length

    def slice(self, start: int, stop: int) -> "MultivariateTimeSeries":
        """Contiguous sub-series ``[start:stop)`` sharing metadata."""
        return MultivariateTimeSeries(
            self.values[start:stop].copy(),
            columns=list(self.columns),
            frequency_minutes=self.frequency_minutes,
            name=self.name,
            validate_finite=self.validate_finite,
        )

    def head_fraction(self, fraction: float) -> "MultivariateTimeSeries":
        """First ``fraction`` of the series (few-shot / scalability runs)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        stop = max(1, int(self.length * fraction))
        return self.slice(0, stop)
