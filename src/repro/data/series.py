"""Container type for multivariate time series (paper Definition 1)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MultivariateTimeSeries"]


@dataclass
class MultivariateTimeSeries:
    """A time-ordered matrix of observations ``(T, N)``.

    Attributes
    ----------
    values:
        Observation matrix; rows are time steps, columns are variables.
    columns:
        Variable names (e.g. ``HUFL`` ... ``OT`` for ETT).
    frequency_minutes:
        Sampling interval, used when rendering prompts.
    name:
        Dataset identifier.
    """

    values: np.ndarray
    columns: list[str] = field(default_factory=list)
    frequency_minutes: int = 60
    name: str = ""

    def __post_init__(self):
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 2:
            raise ValueError(f"values must be 2-D (T, N), got {self.values.shape}")
        if not self.columns:
            self.columns = [f"var{i}" for i in range(self.values.shape[1])]
        if len(self.columns) != self.values.shape[1]:
            raise ValueError("columns length must match the variable axis")

    @property
    def length(self) -> int:
        return self.values.shape[0]

    @property
    def num_variables(self) -> int:
        return self.values.shape[1]

    def __len__(self) -> int:
        return self.length

    def slice(self, start: int, stop: int) -> "MultivariateTimeSeries":
        """Contiguous sub-series ``[start:stop)`` sharing metadata."""
        return MultivariateTimeSeries(
            self.values[start:stop].copy(),
            columns=list(self.columns),
            frequency_minutes=self.frequency_minutes,
            name=self.name,
        )

    def head_fraction(self, fraction: float) -> "MultivariateTimeSeries":
        """First ``fraction`` of the series (few-shot / scalability runs)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        stop = max(1, int(self.length * fraction))
        return self.slice(0, stop)
