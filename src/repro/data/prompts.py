"""Bridging windows to prompts (paper Definition 2).

The :class:`PromptFactory` renders per-variable historical (``P_HD``) and
ground-truth (``P_GT``) prompts for a window pair, matching the templates
of paper Figure 2 and tagging token modalities for calibrated attention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..llm.tokenizer import PromptTokenizer, TokenizedPrompt
from ..llm.vocab import Vocabulary

__all__ = ["PromptFactory"]


@dataclass
class PromptFactory:
    """Produce batched prompts for ``(H, N)`` / ``(M, N)`` windows.

    Parameters
    ----------
    vocab:
        Token vocabulary shared with the CLM backbone.
    frequency_minutes:
        Sampling interval announced in the template.
    value_stride:
        Downsampling stride for prompt values (CPU-budget knob; 1
        reproduces the paper exactly).
    """

    vocab: Vocabulary
    frequency_minutes: int = 15
    value_stride: int = 4

    def __post_init__(self):
        self._tokenizer = PromptTokenizer(
            vocab=self.vocab,
            frequency_minutes=self.frequency_minutes,
            value_stride=self.value_stride,
        )

    def historical(self, history: np.ndarray, horizon: int) -> TokenizedPrompt:
        """``P_HD`` for every variable of one window, shape ``(N, S)``."""
        return self._tokenizer.batch_historical(history, horizon)

    def ground_truth(self, history: np.ndarray,
                     future: np.ndarray) -> TokenizedPrompt:
        """``P_GT`` (privileged) for every variable, shape ``(N, S')``."""
        return self._tokenizer.batch_ground_truth(history, future)
