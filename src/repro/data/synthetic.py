"""Synthetic generators that stand in for the paper's public datasets.

Each generator matches the schema (variable count, column names, sampling
interval) and the qualitative structure of its real counterpart:

* :func:`generate_ett` — electricity-transformer loads: three useful/
  useless load pairs with daily + weekly periodicity plus an oil
  temperature driven by a lagged mixture of the loads;
* :func:`generate_weather` — 21 meteorological indicators with a shared
  diurnal driver and physically motivated couplings;
* :func:`generate_exchange` — correlated FX random walks (daily);
* :func:`generate_pems` — graph-diffused traffic flows on a random
  sensor network built with :mod:`networkx` (morning/evening peaks).

All generators are fully seeded and deterministic.
"""

from __future__ import annotations

import numpy as np

try:
    import networkx as nx
except ImportError:  # pragma: no cover - networkx is a hard dependency
    nx = None

from .series import MultivariateTimeSeries

__all__ = [
    "generate_ett",
    "generate_weather",
    "generate_exchange",
    "generate_pems",
    "ETT_COLUMNS",
]

ETT_COLUMNS = ["HUFL", "HULL", "MUFL", "MULL", "LUFL", "LULL", "OT"]

_WEATHER_COLUMNS = [
    "p", "T", "Tpot", "Tdew", "rh", "VPmax", "VPact", "VPdef", "sh",
    "H2OC", "rho", "wv", "max_wv", "wd", "rain", "raining", "SWDR",
    "PAR", "max_PAR", "Tlog", "CO2",
]

_EXCHANGE_COLUMNS = ["AUD", "GBP", "CAD", "CHF", "CNY", "JPY", "NZD", "SGD"]


def _ar1(rng: np.random.Generator, length: int, coefficient: float,
         scale: float) -> np.ndarray:
    noise = rng.normal(scale=scale, size=length)
    out = np.zeros(length)
    for i in range(1, length):
        out[i] = coefficient * out[i - 1] + noise[i]
    return out


def _daily_profile(length: int, steps_per_day: int, phase: float,
                   amplitude: float, harmonics: int = 2) -> np.ndarray:
    t = np.arange(length)
    profile = np.zeros(length)
    for k in range(1, harmonics + 1):
        profile += (amplitude / k) * np.sin(
            2 * np.pi * k * t / steps_per_day + k * phase)
    return profile


def generate_ett(
    length: int = 4000,
    frequency_minutes: int = 15,
    seed: int = 0,
    noise_scale: float = 0.3,
    name: str = "ETT",
) -> MultivariateTimeSeries:
    """Electricity-transformer-style series: 6 loads + oil temperature.

    The oil temperature ``OT`` responds to a lagged mixture of the load
    channels, reproducing the cross-variable dependency that makes ETT a
    canonical MTSF benchmark.
    """
    rng = np.random.default_rng(seed)
    steps_per_day = int(24 * 60 / frequency_minutes)
    steps_per_week = steps_per_day * 7
    loads = []
    for i in range(6):
        phase = rng.uniform(0, 2 * np.pi)
        daily = _daily_profile(length, steps_per_day, phase, amplitude=1.0)
        weekly = _daily_profile(length, steps_per_week, phase / 2, amplitude=0.4,
                                harmonics=1)
        level = rng.uniform(-0.5, 0.5)
        loads.append(level + daily + weekly + _ar1(rng, length, 0.85, noise_scale))
    loads = np.stack(loads, axis=1)

    lag = max(1, steps_per_day // 24)
    weights = rng.dirichlet(np.ones(6))
    mixed = loads @ weights
    oil = np.empty(length)
    oil[:lag] = mixed[:lag]
    oil[lag:] = mixed[:-lag]
    oil = 0.7 * oil + _ar1(rng, length, 0.95, noise_scale / 2) + 1.0

    values = np.concatenate([loads, oil[:, None]], axis=1)
    return MultivariateTimeSeries(
        values, columns=list(ETT_COLUMNS),
        frequency_minutes=frequency_minutes, name=name)


def generate_weather(
    length: int = 4000,
    frequency_minutes: int = 10,
    seed: int = 10,
    name: str = "Weather",
) -> MultivariateTimeSeries:
    """21 weather indicators sharing a diurnal temperature driver."""
    rng = np.random.default_rng(seed)
    steps_per_day = int(24 * 60 / frequency_minutes)
    temperature = (
        _daily_profile(length, steps_per_day, phase=0.3, amplitude=1.2)
        + _ar1(rng, length, 0.98, 0.05)
    )
    columns = list(_WEATHER_COLUMNS)
    series = []
    for i, column in enumerate(columns):
        coupling = rng.uniform(-0.8, 0.8)
        phase = rng.uniform(0, 2 * np.pi)
        own = _daily_profile(length, steps_per_day, phase, amplitude=0.5)
        noise = _ar1(rng, length, 0.9, 0.2)
        series.append(coupling * temperature + own + noise + rng.uniform(-1, 1))
    values = np.stack(series, axis=1)
    values[:, columns.index("T")] = temperature  # keep the driver itself
    return MultivariateTimeSeries(
        values, columns=columns, frequency_minutes=frequency_minutes, name=name)


def generate_exchange(
    length: int = 2000,
    seed: int = 20,
    name: str = "Exchange",
) -> MultivariateTimeSeries:
    """Eight correlated FX random walks sampled daily."""
    rng = np.random.default_rng(seed)
    num = len(_EXCHANGE_COLUMNS)
    base = rng.normal(size=(num, num))
    covariance = 0.5 * np.eye(num) + 0.5 * (base @ base.T) / num
    scale = np.sqrt(np.diag(covariance))
    correlation = covariance / np.outer(scale, scale)
    chol = np.linalg.cholesky(correlation + 1e-6 * np.eye(num))
    innovations = rng.normal(scale=0.01, size=(length, num)) @ chol.T
    drift = rng.normal(scale=1e-4, size=num)
    values = np.cumsum(innovations + drift, axis=0) + rng.uniform(0.5, 1.5, size=num)
    return MultivariateTimeSeries(
        values, columns=list(_EXCHANGE_COLUMNS),
        frequency_minutes=24 * 60, name=name)


def generate_pems(
    length: int = 3000,
    num_sensors: int = 32,
    frequency_minutes: int = 5,
    seed: int = 30,
    name: str = "PEMS",
) -> MultivariateTimeSeries:
    """Graph-diffused traffic flows on a random geometric sensor network.

    Two ingredients make the data *spatially* predictable, as real PEMS
    loop-detector data is:

    * rush-hour demand with double daily peaks (shared, weakly scaled
      per sensor);
    * random **incidents**: a sensor's capacity drops for a while and
      the resulting congestion wave diffuses along road-graph edges over
      the following ticks — so a sensor's future depends on its
      *neighbours'* recent past, the dependency the channel-dependent
      models exploit (paper Section V-B2).
    """
    if nx is None:  # pragma: no cover
        raise RuntimeError("networkx is required for PEMS generation")
    rng = np.random.default_rng(seed)
    # directed corridor: a ring road with random chords — congestion
    # travels downstream with a fixed per-hop delay
    graph = nx.random_geometric_graph(num_sensors, radius=0.35, seed=seed)
    upstream = np.roll(np.arange(num_sensors), 1)  # ring edges i-1 -> i
    chords = {i: [j for j in graph.neighbors(i) if j != upstream[i]][:1]
              for i in range(num_sensors)}

    steps_per_day = int(24 * 60 / frequency_minutes)
    t = np.arange(length)
    morning = np.exp(-0.5 * ((t % steps_per_day - steps_per_day * 8 / 24)
                             / (steps_per_day / 24)) ** 2)
    evening = np.exp(-0.5 * ((t % steps_per_day - steps_per_day * 18 / 24)
                             / (steps_per_day / 24)) ** 2)
    profile = 0.3 + morning + 0.8 * evening

    capacity = rng.uniform(0.8, 1.2, size=num_sensors)
    incident_rate = 3.0 / steps_per_day  # ~3 incidents/sensor/day
    propagation_lag = 4                  # ticks for a wave to reach downstream
    decay = 0.80
    flows = np.zeros((length, num_sensors))
    # impulse register: waves hop downstream with < 1 gain, so the ring
    # stays stable while a sensor's spike still *precedes* its
    # downstream neighbour's by `propagation_lag` ticks
    wave = np.zeros((length, num_sensors))
    congestion = np.zeros(num_sensors)
    for i in range(length):
        shocks = (rng.random(num_sensors) < incident_rate) * \
            rng.uniform(1.0, 2.5, size=num_sensors)
        wave[i] = shocks
        if i >= propagation_lag:
            # per-node in-gain is capped at 0.6 + 0.3 < 1 so the wave
            # operator's spectral radius stays below 1 (no blow-up)
            arrived = wave[i - propagation_lag]
            wave[i] += 0.6 * arrived[upstream]
            for node, extra in chords.items():
                for j in extra:
                    wave[i, node] += 0.3 * arrived[j]
        congestion = decay * congestion + wave[i]
        flows[i] = (capacity * profile[i]
                    + 0.3 * congestion
                    + rng.normal(scale=0.05, size=num_sensors))
    columns = [f"sensor{i:03d}" for i in range(num_sensors)]
    return MultivariateTimeSeries(
        flows, columns=columns, frequency_minutes=frequency_minutes, name=name)
