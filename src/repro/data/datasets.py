"""Named dataset registry mirroring the paper's eight benchmarks.

``load_dataset("ETTm1")`` etc. return seeded synthetic series whose
schema matches the originals (see DESIGN.md substitution table):

=========  ======  ==========  =====================
name       vars    interval    family
=========  ======  ==========  =====================
ETTm1      7       15 min      electricity (ETT)
ETTm2      7       15 min      electricity (ETT)
ETTh1      7       60 min      electricity (ETT)
ETTh2      7       60 min      electricity (ETT)
Weather    21      10 min      meteorology
Exchange   8       1 day       economy
PEMS04     32*     5 min       traffic (graph)
PEMS08     24*     5 min       traffic (graph)
=========  ======  ==========  =====================

``*`` sensor counts are scaled down from 307/170 for the 1-CPU budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .series import MultivariateTimeSeries
from .synthetic import generate_ett, generate_exchange, generate_pems, generate_weather

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry: metadata plus the generator closure."""

    name: str
    num_variables: int
    frequency_minutes: int
    default_length: int
    family: str
    builder: Callable[[int, int], MultivariateTimeSeries]


def _ett_builder(frequency_minutes: int, seed: int, noise_scale: float):
    def build(length: int, seed_offset: int) -> MultivariateTimeSeries:
        return generate_ett(
            length=length,
            frequency_minutes=frequency_minutes,
            seed=seed + seed_offset,
            noise_scale=noise_scale,
        )

    return build


def _weather_builder(seed: int):
    def build(length: int, seed_offset: int) -> MultivariateTimeSeries:
        return generate_weather(length=length, seed=seed + seed_offset)

    return build


def _exchange_builder(seed: int):
    def build(length: int, seed_offset: int) -> MultivariateTimeSeries:
        return generate_exchange(length=length, seed=seed + seed_offset)

    return build


def _pems_builder(num_sensors: int, seed: int):
    def build(length: int, seed_offset: int) -> MultivariateTimeSeries:
        return generate_pems(
            length=length, num_sensors=num_sensors, seed=seed + seed_offset)

    return build


DATASETS: dict[str, DatasetSpec] = {
    "ETTm1": DatasetSpec("ETTm1", 7, 15, 4000, "electricity",
                         _ett_builder(15, seed=101, noise_scale=0.30)),
    "ETTm2": DatasetSpec("ETTm2", 7, 15, 4000, "electricity",
                         _ett_builder(15, seed=202, noise_scale=0.15)),
    "ETTh1": DatasetSpec("ETTh1", 7, 60, 3000, "electricity",
                         _ett_builder(60, seed=303, noise_scale=0.30)),
    "ETTh2": DatasetSpec("ETTh2", 7, 60, 3000, "electricity",
                         _ett_builder(60, seed=404, noise_scale=0.20)),
    "Weather": DatasetSpec("Weather", 21, 10, 3500, "weather",
                           _weather_builder(seed=505)),
    "Exchange": DatasetSpec("Exchange", 8, 24 * 60, 2200, "economy",
                            _exchange_builder(seed=606)),
    "PEMS04": DatasetSpec("PEMS04", 32, 5, 3000, "traffic",
                          _pems_builder(num_sensors=32, seed=707)),
    "PEMS08": DatasetSpec("PEMS08", 24, 5, 3000, "traffic",
                          _pems_builder(num_sensors=24, seed=808)),
}


def dataset_names() -> list[str]:
    return list(DATASETS)


def load_dataset(
    name: str, length: int | None = None, seed_offset: int = 0
) -> MultivariateTimeSeries:
    """Build the named dataset.

    Parameters
    ----------
    name:
        One of :func:`dataset_names`.
    length:
        Override the default number of time steps (smaller for quick
        tests and benchmarks).
    seed_offset:
        Shifts the generator seed; used to create held-out replicas.
    """
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; available: {dataset_names()}")
    spec = DATASETS[name]
    series = spec.builder(length or spec.default_length, seed_offset)
    series.name = name
    return series
