"""Dataset-level standardization."""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler"]


class StandardScaler:
    """Per-variable z-normalization fitted on the training split.

    Matches the standard MTSF protocol: statistics come from the train
    segment only and are applied to validation/test to avoid leakage.
    """

    def __init__(self, eps: float = 1e-8):
        self.eps = eps
        self.mean: np.ndarray | None = None
        self.std: np.ndarray | None = None

    def fit(self, values: np.ndarray) -> "StandardScaler":
        values = np.asarray(values, dtype=np.float64)
        self.mean = values.mean(axis=0)
        self.std = values.std(axis=0)
        self.std = np.where(self.std < self.eps, 1.0, self.std)
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return (np.asarray(values, dtype=np.float64) - self.mean) / self.std

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return np.asarray(values, dtype=np.float64) * self.std + self.mean

    def _check_fitted(self) -> None:
        if self.mean is None or self.std is None:
            raise RuntimeError("scaler used before fit()")
