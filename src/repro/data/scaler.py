"""Dataset-level standardization."""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler"]


class StandardScaler:
    """Per-variable z-normalization fitted on the training split.

    Matches the standard MTSF protocol: statistics come from the train
    segment only and are applied to validation/test to avoid leakage.
    """

    def __init__(self, eps: float = 1e-8):
        self.eps = eps
        self.mean: np.ndarray | None = None
        self.std: np.ndarray | None = None

    def fit(self, values: np.ndarray) -> "StandardScaler":
        values = np.asarray(values, dtype=np.float64)
        self.mean = values.mean(axis=0)
        self.std = values.std(axis=0)
        self.std = np.where(self.std < self.eps, 1.0, self.std)
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return (np.asarray(values, dtype=np.float64) - self.mean) / self.std

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return np.asarray(values, dtype=np.float64) * self.std + self.mean

    # ------------------------------------------------------------------
    # state export / restore (deployable artifact bundles)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Fitted statistics as plain arrays (for artifact bundles)."""
        self._check_fitted()
        return {
            "mean": np.asarray(self.mean, dtype=np.float64),
            "std": np.asarray(self.std, dtype=np.float64),
            "eps": np.float64(self.eps),
        }

    @classmethod
    def from_state(cls, state: dict[str, np.ndarray]) -> "StandardScaler":
        """Rebuild a fitted scaler from :meth:`state_dict` output."""
        scaler = cls(eps=float(state["eps"]))
        scaler.mean = np.asarray(state["mean"], dtype=np.float64)
        scaler.std = np.asarray(state["std"], dtype=np.float64)
        if scaler.mean.shape != scaler.std.shape:
            raise ValueError(
                f"scaler state mean/std shapes differ: "
                f"{scaler.mean.shape} vs {scaler.std.shape}")
        return scaler

    def _check_fitted(self) -> None:
        if self.mean is None or self.std is None:
            raise RuntimeError("scaler used before fit()")
