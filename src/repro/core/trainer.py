"""Two-phase TimeKD training (paper Algorithms 1 and 2).

Phase A trains the cross-modality teacher on the reconstruction task;
Phase B distills it into the student while optimizing the forecasting
loss.  The frozen CLM's prompt embeddings are computed once per window
and replayed from the :class:`EmbeddingStore` across epochs.
"""

from __future__ import annotations

import os
import re
import zipfile

import numpy as np

from ..data.prompts import PromptFactory
from ..data.windows import ForecastingData, WindowDataset
from ..llm import CalibratedLanguageModel, Vocabulary, get_pretrained
from ..llm.tokenizer import TokenizedPrompt
from ..nn import AdamW, clip_grad_norm, no_grad
from ..nn import init as nn_init
from ..nn.functional import mae_loss, mse_loss, smooth_l1_loss
from ..nn.tensor import Tensor
from .config import TimeKDConfig
from .distill import pkd_loss
from .store import EmbeddingStore, embedding_fingerprint, weights_digest
from .student import StudentModel, evaluate_student
from .teacher import CrossModalityTeacher

__all__ = ["TimeKDTrainer"]


class TimeKDTrainer:
    """Train a TimeKD teacher/student pair on prepared forecasting data.

    Parameters
    ----------
    config:
        Full TimeKD configuration (shapes, switches, optimization).
    data:
        Output of :func:`repro.data.make_forecasting_data`.
    clm:
        Optionally inject a prebuilt frozen CLM (shared across
        experiments to amortize pretraining); built on demand otherwise.
    """

    def __init__(self, config: TimeKDConfig, data: ForecastingData,
                 clm: CalibratedLanguageModel | None = None):
        if config.num_variables != data.num_variables:
            config = config.with_updates(num_variables=data.num_variables)
        if config.frequency_minutes != data.frequency_minutes:
            config = config.with_updates(frequency_minutes=data.frequency_minutes)
        self.config = config
        self.data = data
        nn_init.seed_everything(config.seed)

        self.vocab = Vocabulary()
        if config.use_clm:
            if clm is None:
                backbone = get_pretrained(
                    config.llm_name, vocab=self.vocab,
                    steps=config.llm_pretrain_steps)
                clm = CalibratedLanguageModel(
                    backbone, delta=config.calibration_delta)
            else:
                clm.delta = config.calibration_delta
            self.clm = clm
        else:
            self.clm = None

        self.prompt_factory = PromptFactory(
            vocab=self.vocab,
            frequency_minutes=data.frequency_minutes,
            value_stride=config.prompt_value_stride,
        )
        self.teacher = CrossModalityTeacher(config, clm=self.clm)
        self.student = StudentModel(config)
        if config.share_projection_head:
            # Figure 3 "Shared": one Linear(D -> M) decodes both the
            # teacher's privileged embeddings and the student's features.
            self.student.head = self.teacher.recon_head
        self.store = EmbeddingStore(capacity=len(data.train))
        self.history: dict[str, list[float]] = {
            "teacher_loss": [], "student_loss": [], "val_mse": []}
        self._best_student_state: dict | None = None

    # ------------------------------------------------------------------
    # prompt embedding with storage
    # ------------------------------------------------------------------
    def _flatten_prompt(self, prompts: list[TokenizedPrompt]) -> TokenizedPrompt:
        return TokenizedPrompt(
            np.concatenate([p.token_ids for p in prompts], axis=0),
            np.concatenate([p.modality for p in prompts], axis=0),
        )

    def _compute_clm_embeddings(
        self, dataset: WindowDataset, indices: list[int],
        with_privileged: bool,
    ) -> tuple[np.ndarray | None, np.ndarray]:
        """CLM last-token embeddings for the given window indices."""
        gt_prompts, hd_prompts = [], []
        for index in indices:
            history, future = dataset[index]
            hd_prompts.append(
                self.prompt_factory.historical(history, self.config.horizon))
            if with_privileged:
                gt_prompts.append(
                    self.prompt_factory.ground_truth(history, future))
        num_vars = self.config.num_variables
        hd_flat = self._flatten_prompt(hd_prompts)
        gt_flat = self._flatten_prompt(gt_prompts) if gt_prompts else None
        gt, hd = self.teacher.encode_prompts(gt_flat, hd_flat, num_vars)
        return gt, hd

    def _teacher_inputs(
        self, dataset: WindowDataset, indices: np.ndarray,
        history: np.ndarray, future: np.ndarray, cache: bool,
    ) -> tuple[np.ndarray | None, np.ndarray]:
        """Embeddings feeding the teacher, via the store when possible."""
        config = self.config
        if not config.use_clm:
            gt, hd = self.teacher.embed_values(history, future)
            return (gt if config.use_privileged_info else None), hd
        if cache:
            return self.store.get_batch(
                indices,
                lambda missing: self._compute_clm_embeddings(
                    dataset, missing, config.use_privileged_info),
            )
        return self._compute_clm_embeddings(
            dataset, [int(i) for i in indices], config.use_privileged_info)

    # ------------------------------------------------------------------
    # embedding precompute + disk cache (paper "Embeddings Storage")
    # ------------------------------------------------------------------
    def _should_precompute(self) -> bool:
        if not self.config.use_clm:
            return False
        if self.config.precompute_embeddings is None:
            # Auto: with capped epochs only a small shuffled subset of
            # windows is ever visited, so lazy filling is cheaper.
            return self.config.max_batches_per_epoch is None
        return bool(self.config.precompute_embeddings)

    def embedding_fingerprint(self) -> str:
        """Digest of everything the stored train embeddings depend on."""
        config = self.config
        return embedding_fingerprint(
            dataset=self.data.name,
            split="train",
            num_windows=len(self.data.train),
            history_length=config.history_length,
            horizon=config.horizon,
            num_variables=config.num_variables,
            frequency_minutes=config.frequency_minutes,
            prompt_value_stride=config.prompt_value_stride,
            llm_name=config.llm_name,
            llm_pretrain_steps=config.llm_pretrain_steps,
            llm_weights=weights_digest(self.clm.backbone),
            calibration_delta=config.calibration_delta,
            pooling=self.clm.pooling,
            use_privileged_info=config.use_privileged_info,
        )

    def _embedding_cache_path(self) -> str | None:
        """Cache file for the current store, or None when disabled.

        Raises a clear :class:`RuntimeError` when caching is configured
        but the store has no fingerprint yet (i.e.
        :meth:`prepare_embeddings` has not run) — the fingerprint names
        the file, so there is nothing meaningful to read or write.
        """
        directory = self.config.embedding_cache_dir
        if not directory or not self.config.use_clm:
            return None
        if self.store.fingerprint is None:
            raise RuntimeError(
                "embedding store has no fingerprint yet; call "
                "prepare_embeddings() (or fit()) before touching the "
                "disk cache")
        dataset = re.sub(r"[^A-Za-z0-9_.-]+", "_", self.data.name) or "data"
        return os.path.join(
            directory, f"{dataset}-train-{self.store.fingerprint}.npz")

    def prepare_embeddings(self) -> None:
        """Make the store ready for training epochs.

        Loads a fingerprint-matching ``.npz`` cache when one exists
        (stale fingerprints are recomputed, not trusted), then — in
        precompute mode — encodes every remaining train window in large
        CLM chunks so the training epochs are pure gather + forward.
        """
        if not self.config.use_clm:
            return
        self.store.fingerprint = self.embedding_fingerprint()
        path = self._embedding_cache_path()
        if path and os.path.exists(path):
            try:
                self.store = EmbeddingStore.load(
                    path, expected_fingerprint=self.store.fingerprint)
            except (OSError, ValueError, KeyError, zipfile.BadZipFile):
                # The cache is best-effort: a stale fingerprint
                # (StoreFingerprintMismatch is a ValueError) or a
                # corrupt/truncated file means re-encode, not crash.
                pass
        if self._should_precompute():
            dataset = self.data.train
            self.store.precompute(
                dataset,
                lambda chunk: self._compute_clm_embeddings(
                    dataset, chunk, self.config.use_privileged_info),
                chunk_size=self.config.precompute_chunk_size,
            )

    def save_embeddings(self) -> str | None:
        """Persist whatever the store holds to the configured cache dir.

        Returns the written path, or None when nothing was written
        (caching disabled, store empty/clean).  A store that was loaded
        from disk and gained no new windows is not rewritten.  Calling
        this before :meth:`prepare_embeddings` with caching configured
        raises a clear :class:`RuntimeError` instead of tripping an
        assert.
        """
        path = self._embedding_cache_path()
        if path and self.store.dirty and len(self.store) > 0:
            self.store.save(path)
            return path
        return None

    # ------------------------------------------------------------------
    # Phase A — Algorithm 1
    # ------------------------------------------------------------------
    def train_teacher(self) -> list[float]:
        """Train the teacher on reconstruction; returns per-epoch losses."""
        config = self.config
        optimizer = AdamW(self.teacher.parameters(), lr=config.learning_rate,
                          weight_decay=config.weight_decay)
        losses = []
        dataset = self.data.train
        for epoch in range(config.teacher_epochs):
            loader = _indexed_loader(dataset, config, seed=config.seed + epoch)
            epoch_loss, batches = 0.0, 0
            for indices, history, future in loader:
                gt, hd = self._teacher_inputs(
                    dataset, indices, history, future, cache=True)
                output = self.teacher(gt, hd)
                loss = smooth_l1_loss(
                    output.reconstruction, Tensor(future.astype(np.float32)))
                loss = loss * config.lambda_recon
                # Buffer-reusing zeroing: grads accumulate into the
                # same allocations every step (optim.py's contract).
                optimizer.zero_grad(set_to_none=False)
                loss.backward()
                clip_grad_norm(optimizer.parameters, config.grad_clip)
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
            self.history["teacher_loss"].append(losses[-1])
        return losses

    # ------------------------------------------------------------------
    # Phase B — Algorithm 2 + forecasting loss
    # ------------------------------------------------------------------
    def train_student(self) -> list[float]:
        """Distill the teacher into the student; returns epoch losses."""
        config = self.config
        optimizer = AdamW(self.student.parameters(), lr=config.learning_rate,
                          weight_decay=config.weight_decay)
        self.teacher.eval()
        losses = []
        dataset = self.data.train
        best_val = float("inf")
        for epoch in range(config.student_epochs):
            self.student.train()
            loader = _indexed_loader(dataset, config, seed=config.seed + 100 + epoch)
            epoch_loss, batches = 0.0, 0
            for indices, history, future in loader:
                with no_grad():
                    gt, hd = self._teacher_inputs(
                        dataset, indices, history, future, cache=True)
                    teacher_out = self.teacher(gt, hd)
                output = self.student(history.astype(np.float32))
                fcst = smooth_l1_loss(
                    output.prediction, Tensor(future.astype(np.float32)))
                loss = fcst * config.lambda_fcst
                distill = pkd_loss(
                    config,
                    teacher_out.attention.data,
                    teacher_out.embeddings.data,
                    output.attention,
                    output.features,
                )
                loss = loss + distill * config.lambda_pkd
                optimizer.zero_grad(set_to_none=False)
                loss.backward()
                clip_grad_norm(optimizer.parameters, config.grad_clip)
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
            self.history["student_loss"].append(losses[-1])

            val_mse = self.evaluate(self.data.val)["mse"]
            self.history["val_mse"].append(val_mse)
            if val_mse < best_val:
                best_val = val_mse
                self._best_student_state = self.student.state_dict()
        if self._best_student_state is not None:
            self.student.load_state_dict(self._best_student_state)
        return losses

    # ------------------------------------------------------------------
    # joint objective — paper Eq. 30
    # ------------------------------------------------------------------
    def train_joint(self) -> list[float]:
        """Optimize ``λr·L_recon + λp·L_PKD + λf·L_fcst`` in one loop.

        Teacher and student update together: PKD gradients flow into
        both, so the teacher's privileged features settle on the
        *predictable* component of the future — the LUPI mechanism the
        paper builds on.  A short teacher warm-up (``teacher_epochs``)
        first anchors the features to the reconstruction task.
        """
        config = self.config
        if config.teacher_epochs > 0:
            self.train_teacher()
        parameters = self.teacher.parameters() + self.student.parameters()
        optimizer = AdamW(parameters, lr=config.learning_rate,
                          weight_decay=config.weight_decay)
        losses = []
        dataset = self.data.train
        best_val = float("inf")
        for epoch in range(config.student_epochs):
            self.teacher.train()
            self.student.train()
            loader = _indexed_loader(dataset, config, seed=config.seed + 100 + epoch)
            epoch_loss, batches = 0.0, 0
            for indices, history, future in loader:
                gt, hd = self._teacher_inputs(
                    dataset, indices, history, future, cache=True)
                teacher_out = self.teacher(gt, hd)
                student_out = self.student(history.astype(np.float32))
                target = Tensor(future.astype(np.float32))
                loss = (
                    smooth_l1_loss(teacher_out.reconstruction, target)
                    * config.lambda_recon
                    + smooth_l1_loss(student_out.prediction, target)
                    * config.lambda_fcst
                    + pkd_loss(
                        config,
                        teacher_out.attention,
                        teacher_out.embeddings,
                        student_out.attention,
                        student_out.features,
                        detach_teacher=False,
                    ) * config.lambda_pkd
                )
                optimizer.zero_grad(set_to_none=False)
                loss.backward()
                clip_grad_norm(optimizer.parameters, config.grad_clip)
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
            self.history["student_loss"].append(losses[-1])

            val_mse = self.evaluate(self.data.val)["mse"]
            self.history["val_mse"].append(val_mse)
            if val_mse < best_val:
                best_val = val_mse
                self._best_student_state = self.student.state_dict()
        if self._best_student_state is not None:
            self.student.load_state_dict(self._best_student_state)
        return losses

    def fit(self) -> "TimeKDTrainer":
        """Train according to ``config.training_mode``.

        The frozen CLM's embeddings are prepared first (cache load and,
        in precompute mode, a one-pass encode of the train split), so
        the epochs below never touch the CLM once the store is warm.
        """
        if self.config.training_mode not in ("joint", "two-phase"):
            raise ValueError(
                f"unknown training_mode {self.config.training_mode!r}")
        self.prepare_embeddings()
        if self.config.training_mode == "joint":
            self.train_joint()
        else:
            self.train_teacher()
            self.train_student()
        self.save_embeddings()
        return self

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, dataset: WindowDataset, batch_size: int = 32) -> dict:
        """MSE/MAE of the student on every window of ``dataset``.

        Delegates to :func:`repro.core.student.evaluate_student`, the
        shared test protocol.
        """
        return evaluate_student(self.student, dataset,
                                batch_size=batch_size)


def _indexed_loader(dataset: WindowDataset, config: TimeKDConfig, seed: int):
    """Yield ``(indices, history, future)`` batches for one epoch."""
    rng = np.random.default_rng(seed)
    indices = np.arange(len(dataset))
    rng.shuffle(indices)
    max_batches = config.max_batches_per_epoch
    count = 0
    for start in range(0, len(indices), config.batch_size):
        if max_batches is not None and count >= max_batches:
            return
        batch = indices[start:start + config.batch_size]
        history, future = dataset.batch(batch)
        yield batch, history, future
        count += 1
