"""Cross-modality teacher model (paper Section IV-B, Algorithm 1).

The teacher consumes *privileged* ground-truth prompts plus historical
prompts, both encoded by a frozen Calibrated Language Model, purifies the
ground-truth embedding with Subtractive Cross Attention, and reconstructs
the ground-truth window with a lightweight privileged Transformer.  Its
attention maps and output embeddings are what the student distills from.
"""

from __future__ import annotations

import numpy as np

from ..llm import CalibratedLanguageModel, TokenizedPrompt
from ..nn import Linear, Module, Tensor, TransformerEncoder
from .config import TimeKDConfig
from .sca import PlainSubtraction, SubtractiveCrossAttention

__all__ = ["CrossModalityTeacher", "TeacherOutput"]


class TeacherOutput:
    """Everything Algorithm 1 returns.

    Attributes
    ----------
    reconstruction:
        ``X̂_G`` — reconstructed ground truth ``(B, M, N)``.
    embeddings:
        ``E_GT`` — privileged embeddings ``(B, N, D)`` (Eq. 25 source).
    attention:
        ``A_PE`` — privileged Transformer attention ``(B, N, N)``
        (Eq. 24 source).
    """

    __slots__ = ("reconstruction", "embeddings", "attention")

    def __init__(self, reconstruction: Tensor, embeddings: Tensor,
                 attention: Tensor):
        self.reconstruction = reconstruction
        self.embeddings = embeddings
        self.attention = attention


class CrossModalityTeacher(Module):
    """CLM embeddings → SCA → privileged Transformer → reconstruction.

    Parameters
    ----------
    config:
        Shared TimeKD configuration (ablation switches honoured here:
        ``use_privileged_info``, ``use_clm``, ``use_sca``).
    clm:
        Frozen calibrated language model; required when
        ``config.use_clm`` is True.
    """

    def __init__(self, config: TimeKDConfig,
                 clm: CalibratedLanguageModel | None = None):
        super().__init__()
        self.config = config
        self.clm = clm
        if config.use_clm:
            if clm is None:
                raise ValueError("use_clm=True requires a CalibratedLanguageModel")
            llm_dim = clm.dim
            self.gt_projection = Linear(llm_dim, config.d_model)
            self.hd_projection = Linear(llm_dim, config.d_model)
        else:
            # `w/o CLM` ablation: embed raw values per variable instead.
            self.gt_projection = Linear(
                config.history_length + config.horizon, config.d_model)
            self.hd_projection = Linear(config.history_length, config.d_model)

        if config.use_sca:
            self.sca = SubtractiveCrossAttention(config.d_model, config.ffn_dim)
        else:
            self.sca = PlainSubtraction(config.d_model)

        self.encoder = TransformerEncoder(
            dim=config.d_model,
            num_heads=config.num_heads,
            num_layers=config.num_layers,
            ffn_dim=config.ffn_dim,
            dropout=config.dropout,
        )
        self.recon_head = Linear(config.d_model, config.horizon)

    # ------------------------------------------------------------------
    # prompt encoding (frozen CLM; results are cacheable)
    # ------------------------------------------------------------------
    def encode_prompts(
        self,
        gt_prompt: TokenizedPrompt | None,
        hd_prompt: TokenizedPrompt,
        num_variables: int,
    ) -> tuple[np.ndarray | None, np.ndarray]:
        """Run the frozen CLM over batched prompts.

        Prompts arrive flattened as ``(B*N, S)``; returns raw last-token
        embeddings ``(B, N, D_llm)`` as plain arrays (constants — the
        CLM is frozen, so these can be stored and reused across epochs,
        the paper's "embeddings storage").
        """
        if not self.config.use_clm:
            raise RuntimeError("encode_prompts is only used when use_clm=True")
        hd = self.clm(hd_prompt).data
        hd = hd.reshape(-1, num_variables, hd.shape[-1])
        if gt_prompt is None:
            return None, hd
        gt = self.clm(gt_prompt).data
        gt = gt.reshape(-1, num_variables, gt.shape[-1])
        return gt, hd

    def embed_values(self, history: np.ndarray,
                     future: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """`w/o CLM` path: raw per-variable value vectors as "embeddings".

        Returns arrays shaped ``(B, N, H+M)`` and ``(B, N, H)`` that the
        value projections consume in :meth:`forward`.
        """
        history = np.asarray(history, dtype=np.float32)
        future = np.asarray(future, dtype=np.float32)
        gt = np.concatenate([history, future], axis=1).swapaxes(1, 2)
        hd = history.swapaxes(1, 2)
        return gt, hd

    # ------------------------------------------------------------------
    # forward (Algorithm 1, lines 2-5)
    # ------------------------------------------------------------------
    def forward(self, gt_embedding: np.ndarray | None,
                hd_embedding: np.ndarray) -> TeacherOutput:
        """Reconstruct the ground truth from (projected) prompt embeddings.

        Parameters
        ----------
        gt_embedding / hd_embedding:
            Raw CLM last-token embeddings ``(B, N, D_llm)`` (or raw value
            vectors for the ``w/o CLM`` ablation).  ``gt_embedding`` is
            None under the ``w/o PI`` ablation, in which case the teacher
            degenerates to the "traditional teacher" of paper Figure 1.
        """
        hd = self.hd_projection(Tensor(np.asarray(hd_embedding, np.float32)))
        if gt_embedding is None or not self.config.use_privileged_info:
            refined = hd
        else:
            gt = self.gt_projection(Tensor(np.asarray(gt_embedding, np.float32)))
            refined = self.sca(gt, hd)

        encoded, attention = self.encoder(refined, return_attention=True)
        reconstruction = self.recon_head(encoded).swapaxes(1, 2)  # (B, M, N)
        return TeacherOutput(reconstruction, encoded, attention)
