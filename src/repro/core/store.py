"""Embedding storage (paper Figure 3, "Embeddings Storage").

The CLM is frozen, so its last-token embeddings per training window are
constants.  Computing them once and replaying across epochs is what makes
the LLM-based teacher affordable — the paper calls this out explicitly
("to avoid repetitive processing with the frozen CLMs, we store the
subtracted embeddings").
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["EmbeddingStore"]


class EmbeddingStore:
    """Cache of per-window CLM embeddings keyed by window index."""

    def __init__(self):
        self._gt: dict[int, np.ndarray] = {}
        self._hd: dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._hd)

    def has(self, index: int) -> bool:
        return index in self._hd

    def put(self, index: int, gt: np.ndarray | None, hd: np.ndarray) -> None:
        if gt is not None:
            self._gt[index] = np.asarray(gt, dtype=np.float32)
        self._hd[index] = np.asarray(hd, dtype=np.float32)

    def get(self, index: int) -> tuple[np.ndarray | None, np.ndarray]:
        return self._gt.get(index), self._hd[index]

    def get_batch(
        self,
        indices: np.ndarray,
        compute: Callable[[list[int]], tuple[np.ndarray | None, np.ndarray]],
    ) -> tuple[np.ndarray | None, np.ndarray]:
        """Fetch embeddings for ``indices``, computing the missing ones.

        ``compute(missing)`` must return batched ``(gt, hd)`` arrays of
        shape ``(len(missing), N, D)`` (``gt`` may be None).
        """
        indices = [int(i) for i in indices]
        missing = [i for i in indices if not self.has(i)]
        if missing:
            gt_new, hd_new = compute(missing)
            for row, index in enumerate(missing):
                self.put(index,
                         None if gt_new is None else gt_new[row],
                         hd_new[row])
        gts, hds = [], []
        any_gt = True
        for index in indices:
            gt, hd = self.get(index)
            if gt is None:
                any_gt = False
            gts.append(gt)
            hds.append(hd)
        gt_batch = np.stack(gts) if any_gt else None
        return gt_batch, np.stack(hds)

    def clear(self) -> None:
        self._gt.clear()
        self._hd.clear()
