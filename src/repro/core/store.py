"""Embedding storage (paper Figure 3, "Embeddings Storage").

The CLM is frozen, so its last-token embeddings per training window are
constants.  Computing them once and replaying across epochs is what makes
the LLM-based teacher affordable — the paper calls this out explicitly
("to avoid repetitive processing with the frozen CLMs, we store the
subtracted embeddings").

The store keeps embeddings in contiguous preallocated ``(num_windows, N,
D)`` float32 arrays so a training batch is a single fancy-index gather
(no per-window Python loops, no per-batch ``np.stack``).  It supports an
explicit :meth:`precompute` pass that encodes an entire split in large
CLM chunks up front, and ``.npz`` persistence keyed by a fingerprint of
everything the embeddings depend on (dataset, prompt config, CLM
weights/delta/pooling), so repeated experiments over the same split skip
CLM re-encoding entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Callable

import numpy as np

from ..persist import arrays_digest, atomic_save_arrays

__all__ = [
    "EmbeddingStore",
    "StoreFingerprintMismatch",
    "embedding_fingerprint",
    "weights_digest",
]

#: Bump when the on-disk layout or the meaning of a fingerprint changes.
STORE_FORMAT_VERSION = 1


class StoreFingerprintMismatch(ValueError):
    """A cached store was produced under a different configuration."""


def embedding_fingerprint(**fields) -> str:
    """Deterministic digest of everything the stored embeddings depend on.

    Callers pass the dataset identity (name, split, window count), the
    prompt configuration and the CLM identity (name, weights digest,
    delta, pooling) as keyword arguments; any change yields a new
    fingerprint and therefore a cache miss.
    """
    payload = json.dumps(
        {"store_format": STORE_FORMAT_VERSION, **fields},
        sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def weights_digest(module) -> str:
    """Digest of a module's parameters (captures the frozen CLM weights)."""
    state = {name: parameter.data
             for name, parameter in module.named_parameters()}
    return arrays_digest(state)[:16]


class EmbeddingStore:
    """Contiguous cache of per-window CLM embeddings indexed by window.

    Parameters
    ----------
    capacity:
        Number of windows the store will hold (``len(dataset)``).  The
        backing arrays grow on demand, so 0 (unknown) is accepted; sizing
        up front avoids reallocation during lazy filling.
    fingerprint:
        Digest of the configuration that produced the embeddings; carried
        through :meth:`save`/:meth:`load` to reject stale caches.
    """

    def __init__(self, capacity: int = 0, fingerprint: str | None = None):
        self.fingerprint = fingerprint
        self._capacity = int(capacity)
        self._hd: np.ndarray | None = None
        self._gt: np.ndarray | None = None
        self._has = np.zeros(self._capacity, dtype=bool)
        self._has_gt = np.zeros(self._capacity, dtype=bool)
        #: True when the contents diverge from the last save/load.
        self.dirty = False

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._has.sum())

    @property
    def capacity(self) -> int:
        return self._capacity

    def has(self, index: int) -> bool:
        return 0 <= index < self._capacity and bool(self._has[index])

    def _ensure(self, min_capacity: int, row_shape: tuple[int, ...]) -> None:
        """Allocate or grow the contiguous backing arrays."""
        if self._hd is not None and row_shape != self._hd.shape[1:]:
            raise ValueError(
                f"embedding shape {row_shape} does not match stored "
                f"shape {self._hd.shape[1:]}")
        capacity = max(min_capacity, self._capacity)
        if self._hd is None:
            capacity = max(capacity, 1)
            self._hd = np.zeros((capacity, *row_shape), dtype=np.float32)
        elif min_capacity > self._capacity:
            capacity = max(min_capacity, 2 * self._capacity)
            grown = np.zeros((capacity, *row_shape), dtype=np.float32)
            grown[: self._capacity] = self._hd
            self._hd = grown
            if self._gt is not None:
                grown = np.zeros((capacity, *row_shape), dtype=np.float32)
                grown[: self._capacity] = self._gt
                self._gt = grown
        if capacity > len(self._has):
            for name in ("_has", "_has_gt"):
                mask = np.zeros(capacity, dtype=bool)
                old = getattr(self, name)
                mask[: len(old)] = old
                setattr(self, name, mask)
        self._capacity = capacity

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def put(self, index: int, gt: np.ndarray | None, hd: np.ndarray) -> None:
        if index < 0:
            raise IndexError(f"window index must be non-negative, got {index}")
        hd = np.asarray(hd, dtype=np.float32)
        self._ensure(index + 1, hd.shape)
        self._hd[index] = hd
        self._has[index] = True
        if gt is not None:
            if self._gt is None:
                self._gt = np.zeros_like(self._hd)
            self._gt[index] = np.asarray(gt, dtype=np.float32)
            self._has_gt[index] = True
        self.dirty = True

    def put_batch(self, indices, gt: np.ndarray | None,
                  hd: np.ndarray) -> None:
        """Vectorized :meth:`put` for aligned ``(B, N, D)`` batches."""
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size == 0:
            return
        if int(idx.min()) < 0:
            raise IndexError("window indices must be non-negative")
        hd = np.asarray(hd, dtype=np.float32)
        self._ensure(int(idx.max()) + 1, hd.shape[1:])
        self._hd[idx] = hd
        self._has[idx] = True
        if gt is not None:
            if self._gt is None:
                self._gt = np.zeros_like(self._hd)
            self._gt[idx] = np.asarray(gt, dtype=np.float32)
            self._has_gt[idx] = True
        self.dirty = True

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, index: int) -> tuple[np.ndarray | None, np.ndarray]:
        if not self.has(index):
            raise KeyError(index)
        gt = self._gt[index] if self._gt is not None and self._has_gt[index] \
            else None
        return gt, self._hd[index]

    def get_batch(
        self,
        indices,
        compute: Callable[[list[int]], tuple[np.ndarray | None, np.ndarray]]
        | None = None,
    ) -> tuple[np.ndarray | None, np.ndarray]:
        """Fetch embeddings for ``indices``, computing the missing ones.

        ``compute(missing)`` must return batched ``(gt, hd)`` arrays of
        shape ``(len(missing), N, D)`` (``gt`` may be None).  The gather
        itself is a single fancy-index read from the contiguous arrays.

        Raises
        ------
        KeyError
            If windows are missing and no ``compute`` callback is given.
        RuntimeError
            If the batch mixes windows cached with and without
            ground-truth embeddings — an inconsistent cache state that
            would otherwise silently drop privileged information.
        """
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size and int(idx.min()) < 0:
            raise IndexError("window indices must be non-negative")
        if self._hd is None or idx.size == 0:
            missing = [int(i) for i in idx]
        else:
            in_range = idx < self._capacity
            missing_mask = ~in_range
            missing_mask[in_range] |= ~self._has[idx[in_range]]
            missing = [int(i) for i in idx[missing_mask]]
        if missing:
            if compute is None:
                raise KeyError(f"windows not cached: {missing[:8]}...")
            gt_new, hd_new = compute(missing)
            self.put_batch(missing, gt_new, hd_new)

        hd_batch = self._hd[idx]
        has_gt = self._has_gt[idx]
        if self._gt is not None and bool(has_gt.all()):
            gt_batch = self._gt[idx]
        elif not has_gt.any():
            gt_batch = None
        else:
            raise RuntimeError(
                "inconsistent embedding cache: batch mixes windows cached "
                "with and without ground-truth embeddings")
        return gt_batch, hd_batch

    # ------------------------------------------------------------------
    # one-pass precompute
    # ------------------------------------------------------------------
    def precompute(
        self,
        dataset,
        encoder: Callable[[list[int]], tuple[np.ndarray | None, np.ndarray]],
        chunk_size: int = 64,
    ) -> int:
        """Encode every not-yet-cached window of ``dataset`` up front.

        ``encoder`` has the same contract as ``compute`` in
        :meth:`get_batch`; it is called with chunks of ``chunk_size``
        window indices so the CLM runs large batches instead of
        per-minibatch fragments.  Returns the number of windows encoded.
        """
        todo = [i for i in range(len(dataset)) if not self.has(i)]
        for start in range(0, len(todo), max(int(chunk_size), 1)):
            chunk = todo[start: start + max(int(chunk_size), 1)]
            gt, hd = encoder(chunk)
            self.put_batch(chunk, gt, hd)
        return len(todo)

    def clear(self) -> None:
        self._hd = None
        self._gt = None
        self._has = np.zeros(self._capacity, dtype=bool)
        self._has_gt = np.zeros(self._capacity, dtype=bool)
        self.dirty = False

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Write the store to ``path`` (``.npz``), atomically."""
        if self._hd is None:
            raise RuntimeError("cannot save an empty EmbeddingStore")
        payload = {
            "hd": self._hd,
            "has": self._has,
            "has_gt": self._has_gt,
            "fingerprint": np.array(self.fingerprint or ""),
        }
        if self._gt is not None:
            payload["gt"] = self._gt
        atomic_save_arrays(path, payload)
        self.dirty = False

    @classmethod
    def load(cls, path: str,
             expected_fingerprint: str | None = None) -> "EmbeddingStore":
        """Restore a store saved with :meth:`save`.

        Raises :class:`StoreFingerprintMismatch` when the cache was
        produced under a different configuration than
        ``expected_fingerprint``.
        """
        with np.load(path, allow_pickle=False) as data:
            fingerprint = str(data["fingerprint"])
            if expected_fingerprint is not None \
                    and fingerprint != expected_fingerprint:
                raise StoreFingerprintMismatch(
                    f"cache at {path} has fingerprint {fingerprint!r}, "
                    f"expected {expected_fingerprint!r}")
            store = cls(capacity=len(data["has"]), fingerprint=fingerprint)
            store._hd = np.ascontiguousarray(data["hd"], dtype=np.float32)
            store._has = data["has"].astype(bool)
            store._has_gt = data["has_gt"].astype(bool)
            if "gt" in data.files:
                store._gt = np.ascontiguousarray(data["gt"], dtype=np.float32)
        store.dirty = False
        return store
