"""Reversible Instance Normalization (Kim et al., ICLR 2022).

The student model normalizes each history window per instance and
variable, and de-normalizes its forecasts with the same statistics —
mitigating the train/test distribution shift the paper cites RevIN for.
"""

from __future__ import annotations

import numpy as np

from ..nn import Module, Parameter, Tensor
from ..nn import init

__all__ = ["RevIN"]


class RevIN(Module):
    """Per-instance, per-variable normalization with learnable affine.

    Operates on ``(B, T, N)`` tensors; statistics are computed over the
    time axis during :meth:`normalize` and reused by :meth:`denormalize`.
    """

    def __init__(self, num_variables: int, eps: float = 1e-5,
                 affine: bool = True):
        super().__init__()
        self.num_variables = num_variables
        self.eps = eps
        self.affine = affine
        if affine:
            self.gamma = Parameter(init.ones((num_variables,)))
            self.beta = Parameter(init.zeros((num_variables,)))
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def normalize(self, x: Tensor) -> Tensor:
        """Normalize ``(B, T, N)`` over time; remember the statistics."""
        mean = x.data.mean(axis=1, keepdims=True)
        std = np.sqrt(x.data.var(axis=1, keepdims=True) + self.eps)
        self._mean, self._std = mean, std
        out = (x - Tensor(mean)) / Tensor(std)
        if self.affine:
            out = out * self.gamma + self.beta
        return out

    def denormalize(self, y: Tensor) -> Tensor:
        """Invert :meth:`normalize` on forecasts ``(B, M, N)``."""
        if self._mean is None or self._std is None:
            raise RuntimeError("denormalize called before normalize")
        out = y
        if self.affine:
            out = (out - self.beta) / (self.gamma + self.eps)
        return out * Tensor(self._std) + Tensor(self._mean)

    def forward(self, x: Tensor, mode: str = "norm") -> Tensor:
        if mode == "norm":
            return self.normalize(x)
        if mode == "denorm":
            return self.denormalize(x)
        raise ValueError(f"unknown mode {mode!r}")
