"""Configuration for the TimeKD framework.

Every ablation in paper Figure 6 and Table III corresponds to one field
here, so experiment code toggles components declaratively.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace

__all__ = ["TimeKDConfig"]


@dataclass(frozen=True)
class TimeKDConfig:
    """Hyperparameters and component switches for TimeKD.

    Model-shape defaults follow the paper (Section V-A4): hidden
    dimension 64, 2 transformer layers; the LLM depth is the backbone's
    own depth (the paper uses 12 GPT-2 layers; our tiny backbones use
    2-3, see DESIGN.md).

    Ablation switches (paper Figure 6):

    * ``use_privileged_info`` — ``w/o PI`` when False: the teacher sees
      only the historical prompt (the "traditional teacher" of Fig. 1).
    * ``calibration_delta`` — ``w/o CA`` when 0: vanilla attention mask.
    * ``use_clm`` — ``w/o CLM`` when False: the teacher embeds raw
      values with a linear layer instead of the frozen language model.
    * ``use_sca`` — ``w/o SCA`` when False: plain subtraction
      ``L_GT - L_HD`` replaces subtractive cross attention.
    * ``use_correlation_distillation`` — ``w/o CD`` when False.
    * ``use_feature_distillation`` — ``w/o FD`` when False.
    """

    # problem shape
    history_length: int = 96
    horizon: int = 24
    num_variables: int = 7
    frequency_minutes: int = 15

    # model shape
    d_model: int = 64
    num_heads: int = 4
    num_layers: int = 2
    ffn_dim: int = 128
    dropout: float = 0.0

    # language model
    llm_name: str = "gpt2-tiny"
    llm_pretrain_steps: int = 120
    calibration_delta: float = 1.0
    prompt_value_stride: int = 4

    # embedding pipeline (paper Figure 3 "Embeddings Storage").
    # ``precompute_embeddings`` selects the one-pass precompute of the
    # whole train split at ``fit()`` start: True forces it, False keeps
    # the lazy per-batch fill, None (auto) precomputes only when epochs
    # are uncapped (with ``max_batches_per_epoch`` set, an epoch touches
    # a small shuffled subset and lazy filling is cheaper).
    precompute_embeddings: bool | None = None
    # Directory for fingerprinted ``.npz`` embedding caches; None
    # disables disk persistence.
    embedding_cache_dir: str | None = None
    # Windows per CLM chunk during the precompute pass.
    precompute_chunk_size: int = 64

    # loss weights (paper Eq. 26 and Eq. 30)
    lambda_recon: float = 1.0
    lambda_pkd: float = 1.0
    lambda_fcst: float = 1.0
    lambda_correlation: float = 0.2
    lambda_feature: float = 0.1

    # Share the linear projection head between the teacher's
    # reconstruction and the student's forecast (the "Shared" element of
    # paper Figure 3).  With a shared head, feature distillation becomes
    # directly actionable: student features that imitate E_GT are decoded
    # by the very head that reconstructs the (denoised) ground truth.
    share_projection_head: bool = True

    # component switches (Figure 6 ablations)
    use_privileged_info: bool = True
    use_clm: bool = True
    use_sca: bool = True
    use_correlation_distillation: bool = True
    use_feature_distillation: bool = True

    # optimization.  ``training_mode`` selects between the paper's joint
    # objective (Eq. 30: reconstruction + PKD + forecasting in one loop)
    # and the sequential Algorithms 1+2 ("two-phase").
    training_mode: str = "joint"
    teacher_epochs: int = 3
    student_epochs: int = 5
    batch_size: int = 16
    learning_rate: float = 1e-3
    weight_decay: float = 1e-4
    grad_clip: float = 1.0
    max_batches_per_epoch: int | None = None
    seed: int = 0

    def with_updates(self, **changes) -> "TimeKDConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """Plain-dict form of every field (JSON-serializable)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, values: dict) -> "TimeKDConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys raise a :class:`ValueError` (a bundle written by an
        incompatible version must fail loudly, not half-apply); missing
        keys fall back to field defaults so older bundles keep loading
        after new fields are added.
        """
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(values) - known)
        if unknown:
            raise ValueError(
                f"unknown TimeKDConfig fields {unknown}; the source was "
                "probably written by an incompatible version")
        return cls(**values)

    def ablation(self, name: str) -> "TimeKDConfig":
        """Config for a named paper-Figure-6 variant.

        ``name`` is one of ``w/o PI``, ``w/o CA``, ``w/o CLM``,
        ``w/o SCA``, ``w/o CD``, ``w/o FD`` (case-insensitive, with or
        without the ``w/o `` prefix).
        """
        key = name.lower().replace("w/o", "").strip()
        mapping = {
            "pi": {"use_privileged_info": False},
            "ca": {"calibration_delta": 0.0},
            "clm": {"use_clm": False},
            "sca": {"use_sca": False},
            "cd": {"use_correlation_distillation": False},
            "fd": {"use_feature_distillation": False},
        }
        if key not in mapping:
            raise KeyError(f"unknown ablation {name!r}; one of {list(mapping)}")
        return self.with_updates(**mapping[key])
