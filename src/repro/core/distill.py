"""Privileged Knowledge Distillation losses (paper Section IV-D).

Both losses are SmoothL1 between teacher and student internals:

* correlation distillation (Eq. 24) aligns the head-averaged last-layer
  attention maps of the privileged and time-series Transformers;
* feature distillation (Eq. 25) aligns the privileged embeddings with
  the student's encoder output.

Teacher quantities are detached — Algorithm 2 updates only the student.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor
from ..nn.functional import smooth_l1_loss
from .config import TimeKDConfig

__all__ = [
    "correlation_distillation_loss",
    "feature_distillation_loss",
    "pkd_loss",
]


def _as_target(value, detach: bool) -> Tensor:
    if isinstance(value, Tensor):
        return value.detach() if detach else value
    return Tensor(np.asarray(value, dtype=np.float32))


def correlation_distillation_loss(
    teacher_attention, student_attention: Tensor,
    detach_teacher: bool = True,
) -> Tensor:
    """``L_cd`` — SmoothL1 between ``A_PE`` and ``A_TSE`` (Eq. 24).

    With ``detach_teacher=False`` (joint training, Eq. 30) the gradient
    also flows into the teacher, aligning both attention maps.
    """
    target = _as_target(teacher_attention, detach_teacher)
    return smooth_l1_loss(student_attention, target)


def feature_distillation_loss(
    teacher_features, student_features: Tensor,
    detach_teacher: bool = True,
) -> Tensor:
    """``L_fd`` — SmoothL1 between ``E_GT`` and ``T_H`` (Eq. 25)."""
    target = _as_target(teacher_features, detach_teacher)
    return smooth_l1_loss(student_features, target)


def pkd_loss(
    config: TimeKDConfig,
    teacher_attention,
    teacher_features,
    student_attention: Tensor,
    student_features: Tensor,
    detach_teacher: bool = True,
) -> Tensor:
    """``L_PKD = λ_c L_cd + λ_e L_fd`` (Eq. 26), honouring ablations."""
    total = Tensor(np.zeros((), dtype=np.float32))
    if config.use_correlation_distillation:
        total = total + correlation_distillation_loss(
            teacher_attention, student_attention,
            detach_teacher=detach_teacher) * config.lambda_correlation
    if config.use_feature_distillation:
        total = total + feature_distillation_loss(
            teacher_features, student_features,
            detach_teacher=detach_teacher) * config.lambda_feature
    return total
