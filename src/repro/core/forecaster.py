"""Public TimeKD API: fit / predict / evaluate / inspect / save.

:class:`TimeKDForecaster` is the entry point downstream users interact
with (see ``examples/quickstart.py``)::

    from repro import TimeKDConfig, TimeKDForecaster
    from repro.data import load_dataset, make_forecasting_data

    data = make_forecasting_data(load_dataset("ETTm1"), horizon=24)
    model = TimeKDForecaster(TimeKDConfig(horizon=24))
    model.fit(data)
    forecast = model.predict(history_window)

Deployment round-trip: :meth:`TimeKDForecaster.save` writes a
self-contained artifact bundle (weights + config + scaler + provenance)
and :meth:`TimeKDForecaster.from_artifact` restores a predict-ready
forecaster from it without constructing a trainer, a CLM or a dataset.
"""

from __future__ import annotations

import numpy as np

from ..data.scaler import StandardScaler
from ..data.windows import ForecastingData, WindowDataset
from ..llm import CalibratedLanguageModel
from ..nn import no_grad
from .config import TimeKDConfig
from .student import StudentModel, evaluate_student
from .trainer import TimeKDTrainer

__all__ = ["TimeKDForecaster"]


def _resolve_engine_precision(engine: str, precision: str) -> tuple[str, str]:
    """Validate the engine/precision pair, failing fast on conflicts."""
    from ..infer import resolve_engine, resolve_precision

    engine = resolve_engine(engine)
    precision = resolve_precision(precision)
    if precision != "float32" and engine != "compiled":
        raise ValueError(
            f"precision={precision!r} requires engine='compiled' "
            f"(the module path is float32-only)")
    return engine, precision


class TimeKDForecaster:
    """High-level TimeKD forecaster.

    Only the student runs at inference time; the teacher and the frozen
    CLM exist during :meth:`fit` and can be dropped afterwards
    (:meth:`compact`), mirroring the paper's deployment story.  A
    forecaster restored with :meth:`from_artifact` never has them at
    all.
    """

    def __init__(self, config: TimeKDConfig | None = None,
                 clm: CalibratedLanguageModel | None = None):
        self.config = config or TimeKDConfig()
        self._injected_clm = clm
        self._clm_released = False
        self.trainer: TimeKDTrainer | None = None
        self._student: StudentModel | None = None
        self._compiled: dict = {}
        self._scaler: StandardScaler | None = None
        #: Provenance of the bundle this forecaster was restored from
        #: (empty for fitted forecasters until :meth:`save`).
        self.artifact_metadata: dict = {}

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, data: ForecastingData) -> "TimeKDForecaster":
        """Train teacher and student on prepared forecasting data."""
        if self._clm_released:
            raise RuntimeError(
                "fit() after compact(): the injected CLM was released; "
                "construct a new forecaster (or inject a CLM again) to "
                "retrain")
        self.trainer = TimeKDTrainer(self.config, data, clm=self._injected_clm)
        self.config = self.trainer.config  # may absorb data shape updates
        self.trainer.fit()
        self._student = self.trainer.student
        self._compiled.clear()  # stale: compiled against the old weights
        self._scaler = data.scaler
        return self

    @property
    def student(self) -> StudentModel:
        self._check_fitted()
        return self._student

    @property
    def scaler(self) -> StandardScaler | None:
        """Fitted dataset scaler (from :meth:`fit` or the loaded bundle)."""
        return self._scaler

    @property
    def teacher(self):
        self._check_trainer()
        return self.trainer.teacher

    @property
    def history(self) -> dict[str, list[float]]:
        self._check_trainer()
        return self.trainer.history

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def compile(self, force: bool = False, precision: str = "float32"):
        """Tape-free :class:`repro.infer.CompiledStudent` of the student.

        Compiled once per precision mode and cached (``fit()``
        invalidates the cache).  The engine snapshots derived constants
        at compile time, so after mutating student weights — in place or
        via ``load_state_dict`` — recompile with ``force=True`` or the
        cached engine serves stale forecasts.  Reduced-precision modes
        (``"mixed"``, ``"int8"``) are gated by the engine's compile-time
        error budget — see :class:`repro.infer.ErrorBudget`.
        """
        from ..infer import CompiledStudent, resolve_precision

        self._check_fitted()
        precision = resolve_precision(precision)
        if precision not in self._compiled or force:
            self._student.eval()
            self._compiled[precision] = CompiledStudent(
                self._student, precision=precision)
        return self._compiled[precision]

    def predict(self, history: np.ndarray, raw_values: bool = False,
                engine: str = "module",
                precision: str = "float32") -> np.ndarray:
        """Forecast ``(B, M, N)`` (or ``(M, N)``) from history windows.

        With ``raw_values=True`` the input is interpreted in original
        data units: the fitted scaler z-scales it before the student
        forward and inverse-transforms the forecast back, so callers
        never touch the training-time normalization.

        ``engine="compiled"`` routes through the cached
        :meth:`compile` engine — bitwise identical to the module
        forward, several times faster per window.  ``precision``
        selects the compiled engine's numeric mode and requires the
        compiled engine for the reduced modes.
        """
        self._check_fitted()
        engine, precision = _resolve_engine_precision(engine, precision)
        history = np.asarray(history, dtype=np.float32)
        squeeze = history.ndim == 2
        if raw_values:
            if self._scaler is None:
                raise RuntimeError(
                    "raw_values=True needs a fitted scaler; this "
                    "forecaster has none (bundle saved without one)")
            history = self._scaler.transform(history).astype(np.float32)
        if engine == "compiled":
            prediction = self.compile(precision=precision).predict(history)
        else:
            prediction = self._student.predict(history)
        if raw_values:
            prediction = self._scaler.inverse_transform(prediction)
        return prediction[0] if squeeze else prediction

    def evaluate(self, dataset: WindowDataset, batch_size: int = 32,
                 engine: str = "module", precision: str = "float32") -> dict:
        """Student MSE/MAE over a window dataset (test protocol).

        Works for fitted and artifact-restored forecasters alike — only
        the student runs.  ``engine="compiled"`` evaluates through the
        cached compiled engine (identical metrics, faster);
        ``precision`` selects its numeric mode.
        """
        self._check_fitted()
        engine, precision = _resolve_engine_precision(engine, precision)
        if engine == "compiled":
            engine = self.compile(precision=precision)
        return evaluate_student(self._student, dataset,
                                batch_size=batch_size, engine=engine)

    def evaluate_splits(self) -> dict[str, dict]:
        """Metrics on the fitted data's val and test splits."""
        self._check_trainer()
        return {
            "val": self.evaluate(self.trainer.data.val),
            "test": self.evaluate(self.trainer.data.test),
        }

    # ------------------------------------------------------------------
    # interpretability (Figures 8 and 9)
    # ------------------------------------------------------------------
    def attention_maps(self, history: np.ndarray,
                       future: np.ndarray) -> dict[str, np.ndarray]:
        """Head-averaged attention of both Transformers (Figure 8).

        Returns ``{"privileged": A_PE, "student": A_TSE}`` as
        ``(N, N)`` arrays averaged over the batch.
        """
        teacher_out, student_out = self._run_both(history, future)
        return {
            "privileged": teacher_out.attention.data.mean(axis=0),
            "student": student_out.attention.data.mean(axis=0),
        }

    def feature_maps(self, history: np.ndarray,
                     future: np.ndarray) -> dict[str, np.ndarray]:
        """Self-relation feature matrices ``F F^T`` (Figure 9)."""
        teacher_out, student_out = self._run_both(history, future)
        teacher_features = teacher_out.embeddings.data.mean(axis=0)
        student_features = student_out.features.data.mean(axis=0)
        return {
            "privileged": teacher_features @ teacher_features.T,
            "student": student_features @ student_features.T,
        }

    def _run_both(self, history: np.ndarray, future: np.ndarray):
        self._check_trainer()
        trainer = self.trainer
        history = np.asarray(history, dtype=np.float32)
        if history.ndim == 2:
            history = history[None]
        future = np.asarray(future, dtype=np.float32)
        if future.ndim == 2:
            future = future[None]
        # Training may leave either model in train() mode (dropout
        # active); these are analysis forwards and must be deterministic.
        teacher_was_training = trainer.teacher.training
        student_was_training = trainer.student.training
        trainer.teacher.eval()
        trainer.student.eval()
        try:
            with no_grad():
                if self.config.use_clm:
                    dataset = _SingleWindowDataset(history, future)
                    gt, hd = trainer._compute_clm_embeddings(
                        dataset, list(range(len(history))),
                        self.config.use_privileged_info)
                else:
                    gt, hd = trainer.teacher.embed_values(history, future)
                    if not self.config.use_privileged_info:
                        gt = None
                teacher_out = trainer.teacher(gt, hd)
                student_out = trainer.student(history)
        finally:
            trainer.teacher.train(teacher_was_training)
            trainer.student.train(student_was_training)
        return teacher_out, student_out

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str, metadata: dict | None = None) -> None:
        """Write a self-contained deployable artifact bundle.

        The bundle holds the student ``state_dict``, the resolved
        config, the fitted scaler statistics, and provenance (dataset
        name, embedding fingerprint, plus anything in ``metadata``) —
        everything :meth:`from_artifact` needs.
        """
        from ..serve.artifact import save_student_artifact

        self._check_fitted()
        provenance: dict = {}
        if self.trainer is not None:
            provenance["dataset"] = self.trainer.data.name
            if self.trainer.store.fingerprint is not None:
                provenance["embedding_fingerprint"] = \
                    self.trainer.store.fingerprint
        else:
            provenance.update(self.artifact_metadata)
        provenance.update(metadata or {})
        save_student_artifact(path, self._student, self.config,
                              scaler=self._scaler, metadata=provenance)
        self.artifact_metadata = provenance

    @classmethod
    def from_artifact(cls, path: str) -> "TimeKDForecaster":
        """Restore a predict-ready forecaster from a saved bundle.

        This is the deployment path: no trainer is constructed, no CLM
        is pretrained or loaded, and no :class:`ForecastingData` is
        required — the bundle carries the config and scaler itself.
        Raises :class:`repro.serve.ArtifactError` for corrupt or
        mismatched bundles.
        """
        from ..serve.artifact import load_student_artifact

        artifact = load_student_artifact(path)
        forecaster = cls(artifact.config)
        forecaster._student = artifact.build_student()
        forecaster._scaler = artifact.scaler
        forecaster.artifact_metadata = dict(artifact.metadata)
        return forecaster

    # Alias matching the serve-layer vocabulary.
    load_student = from_artifact

    def compact(self) -> None:
        """Drop teacher/CLM references — keep only the student.

        Clears every CLM handle, including the one injected at
        construction, so the frozen language model becomes unreachable
        and its memory is actually reclaimed.
        """
        self._check_fitted()
        if self.trainer is not None:
            self.trainer.teacher = None
            self.trainer.clm = None
            self.trainer.store.clear()
        self._clm_released = self._injected_clm is not None
        self._injected_clm = None

    def _check_fitted(self) -> None:
        if self._student is None:
            raise RuntimeError(
                "forecaster used before fit() / from_artifact()")

    def _check_trainer(self) -> None:
        self._check_fitted()
        if self.trainer is None:
            raise RuntimeError(
                "this forecaster was restored from an artifact bundle; "
                "teacher/trainer APIs (history, attention_maps, "
                "feature_maps, evaluate_splits) need a fit() run")


class _SingleWindowDataset:
    """Adapter exposing (history, future) pairs like a WindowDataset."""

    def __init__(self, history: np.ndarray, future: np.ndarray):
        self._history = history
        self._future = future

    def __len__(self) -> int:
        return len(self._history)

    def __getitem__(self, index: int):
        return self._history[index], self._future[index]
