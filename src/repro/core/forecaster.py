"""Public TimeKD API: fit / predict / evaluate / inspect / save.

:class:`TimeKDForecaster` is the entry point downstream users interact
with (see ``examples/quickstart.py``)::

    from repro import TimeKDConfig, TimeKDForecaster
    from repro.data import load_dataset, make_forecasting_data

    data = make_forecasting_data(load_dataset("ETTm1"), horizon=24)
    model = TimeKDForecaster(TimeKDConfig(horizon=24))
    model.fit(data)
    forecast = model.predict(history_window)
"""

from __future__ import annotations

import numpy as np

from ..data.windows import ForecastingData, WindowDataset
from ..llm import CalibratedLanguageModel
from ..nn import load_module, no_grad, save_module
from .config import TimeKDConfig
from .trainer import TimeKDTrainer

__all__ = ["TimeKDForecaster"]


class TimeKDForecaster:
    """High-level TimeKD forecaster.

    Only the student runs at inference time; the teacher and the frozen
    CLM exist during :meth:`fit` and can be dropped afterwards
    (:meth:`compact`), mirroring the paper's deployment story.
    """

    def __init__(self, config: TimeKDConfig | None = None,
                 clm: CalibratedLanguageModel | None = None):
        self.config = config or TimeKDConfig()
        self._injected_clm = clm
        self._clm_released = False
        self.trainer: TimeKDTrainer | None = None

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, data: ForecastingData) -> "TimeKDForecaster":
        """Train teacher and student on prepared forecasting data."""
        if self._clm_released:
            raise RuntimeError(
                "fit() after compact(): the injected CLM was released; "
                "construct a new forecaster (or inject a CLM again) to "
                "retrain")
        self.trainer = TimeKDTrainer(self.config, data, clm=self._injected_clm)
        self.config = self.trainer.config  # may absorb data shape updates
        self.trainer.fit()
        return self

    @property
    def student(self):
        self._check_fitted()
        return self.trainer.student

    @property
    def teacher(self):
        self._check_fitted()
        return self.trainer.teacher

    @property
    def history(self) -> dict[str, list[float]]:
        self._check_fitted()
        return self.trainer.history

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def predict(self, history: np.ndarray) -> np.ndarray:
        """Forecast ``(B, M, N)`` (or ``(M, N)``) from history windows."""
        self._check_fitted()
        history = np.asarray(history, dtype=np.float32)
        squeeze = history.ndim == 2
        prediction = self.student.predict(history)
        return prediction[0] if squeeze else prediction

    def evaluate(self, dataset: WindowDataset) -> dict:
        """Student MSE/MAE over a window dataset (test protocol)."""
        self._check_fitted()
        return self.trainer.evaluate(dataset)

    def evaluate_splits(self) -> dict[str, dict]:
        """Metrics on the fitted data's val and test splits."""
        self._check_fitted()
        return {
            "val": self.trainer.evaluate(self.trainer.data.val),
            "test": self.trainer.evaluate(self.trainer.data.test),
        }

    # ------------------------------------------------------------------
    # interpretability (Figures 8 and 9)
    # ------------------------------------------------------------------
    def attention_maps(self, history: np.ndarray,
                       future: np.ndarray) -> dict[str, np.ndarray]:
        """Head-averaged attention of both Transformers (Figure 8).

        Returns ``{"privileged": A_PE, "student": A_TSE}`` as
        ``(N, N)`` arrays averaged over the batch.
        """
        self._check_fitted()
        teacher_out, student_out = self._run_both(history, future)
        return {
            "privileged": teacher_out.attention.data.mean(axis=0),
            "student": student_out.attention.data.mean(axis=0),
        }

    def feature_maps(self, history: np.ndarray,
                     future: np.ndarray) -> dict[str, np.ndarray]:
        """Self-relation feature matrices ``F F^T`` (Figure 9)."""
        self._check_fitted()
        teacher_out, student_out = self._run_both(history, future)
        teacher_features = teacher_out.embeddings.data.mean(axis=0)
        student_features = student_out.features.data.mean(axis=0)
        return {
            "privileged": teacher_features @ teacher_features.T,
            "student": student_features @ student_features.T,
        }

    def _run_both(self, history: np.ndarray, future: np.ndarray):
        trainer = self.trainer
        history = np.asarray(history, dtype=np.float32)
        if history.ndim == 2:
            history = history[None]
        future = np.asarray(future, dtype=np.float32)
        if future.ndim == 2:
            future = future[None]
        with no_grad():
            if self.config.use_clm:
                dataset = _SingleWindowDataset(history, future)
                gt, hd = trainer._compute_clm_embeddings(
                    dataset, list(range(len(history))),
                    self.config.use_privileged_info)
            else:
                gt, hd = trainer.teacher.embed_values(history, future)
                if not self.config.use_privileged_info:
                    gt = None
            teacher_out = trainer.teacher(gt, hd)
            student_out = trainer.student(history)
        return teacher_out, student_out

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Persist the deployable student weights."""
        self._check_fitted()
        save_module(self.student, path)

    def load(self, path: str, data: ForecastingData) -> "TimeKDForecaster":
        """Restore a saved student for inference over ``data``'s shapes.

        A trainer shell is built (without running fit) so evaluation
        utilities keep working.
        """
        self.trainer = TimeKDTrainer(self.config, data, clm=self._injected_clm)
        self.config = self.trainer.config
        load_module(self.trainer.student, path)
        return self

    def compact(self) -> None:
        """Drop teacher/CLM references — keep only the student.

        Clears every CLM handle, including the one injected at
        construction, so the frozen language model becomes unreachable
        and its memory is actually reclaimed.
        """
        self._check_fitted()
        self.trainer.teacher = None
        self.trainer.clm = None
        self.trainer.store.clear()
        self._clm_released = self._injected_clm is not None
        self._injected_clm = None

    def _check_fitted(self) -> None:
        if self.trainer is None:
            raise RuntimeError("forecaster used before fit() / load()")


class _SingleWindowDataset:
    """Adapter exposing (history, future) pairs like a WindowDataset."""

    def __init__(self, history: np.ndarray, future: np.ndarray):
        self._history = history
        self._future = future

    def __len__(self) -> int:
        return len(self._history)

    def __getitem__(self, index: int):
        return self._history[index], self._future[index]
