"""``repro.core`` — the TimeKD framework (the paper's contribution).

Cross-modality teacher (CLM + SCA + privileged Transformer), lightweight
student (RevIN + inverted embedding + TSTEncoder), privileged knowledge
distillation, and the public :class:`TimeKDForecaster` API.
"""

from .config import TimeKDConfig
from .distill import (
    correlation_distillation_loss,
    feature_distillation_loss,
    pkd_loss,
)
from .forecaster import TimeKDForecaster
from .revin import RevIN
from .sca import PlainSubtraction, SubtractiveCrossAttention
from .store import (
    EmbeddingStore,
    StoreFingerprintMismatch,
    embedding_fingerprint,
    weights_digest,
)
from .student import StudentModel, StudentOutput
from .teacher import CrossModalityTeacher, TeacherOutput
from .trainer import TimeKDTrainer

__all__ = [
    "TimeKDConfig",
    "TimeKDForecaster",
    "TimeKDTrainer",
    "CrossModalityTeacher",
    "TeacherOutput",
    "StudentModel",
    "StudentOutput",
    "RevIN",
    "SubtractiveCrossAttention",
    "PlainSubtraction",
    "EmbeddingStore",
    "StoreFingerprintMismatch",
    "embedding_fingerprint",
    "weights_digest",
    "correlation_distillation_loss",
    "feature_distillation_loss",
    "pkd_loss",
]
