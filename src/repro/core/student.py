"""The lightweight student model (paper Section IV-C).

Pipeline: RevIN → inverted (variate-wise) embedding → Pre-LN time-series
Transformer ``TSTEncoder`` → projection head.  At test time this is the
*only* model that runs (paper Section IV-E), which is where TimeKD's
inference efficiency comes from.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Tensor, TransformerEncoder
from .config import TimeKDConfig
from .revin import RevIN

__all__ = ["StudentModel", "StudentOutput", "evaluate_student"]


def evaluate_student(student: "StudentModel", dataset,
                     batch_size: int = 32, engine: str = "module") -> dict:
    """MSE/MAE of a student over every window of ``dataset``.

    The shared test protocol behind ``TimeKDTrainer.evaluate`` and
    ``TimeKDForecaster.evaluate``: the models are batch-independent
    (RevIN is per-instance), so batched evaluation matches the paper's
    batch-size-1 protocol numerically while staying CPU-feasible.

    ``engine`` selects the forward implementation — ``"module"`` (the
    autograd modules under ``no_grad``), ``"compiled"`` (a tape-free
    :class:`repro.infer.CompiledStudent`, bitwise identical), or an
    already-compiled engine instance to reuse across calls.
    """
    from ..data.loader import DataLoader
    from ..infer import CompiledStudent, resolve_engine
    from ..nn import no_grad

    student.eval()
    if isinstance(engine, CompiledStudent):
        predict = engine.predict
    elif resolve_engine(engine) == "compiled":
        predict = CompiledStudent(student).predict
    else:
        predict = student.predict
    total_se, total_ae, count = 0.0, 0.0, 0
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    with no_grad():
        for history, future in loader:
            prediction = predict(history.astype(np.float32))
            diff = prediction - future
            total_se += float((diff ** 2).sum())
            total_ae += float(np.abs(diff).sum())
            count += diff.size
    return {"mse": total_se / max(count, 1),
            "mae": total_ae / max(count, 1)}


class StudentOutput:
    """Forecast plus the internals distillation needs.

    Attributes
    ----------
    prediction:
        De-normalized forecasts ``(B, M, N)``.
    features:
        ``T_H`` — encoder output tokens ``(B, N, D)`` (Eq. 25 target).
    attention:
        ``A_TSE`` — head-averaged last-layer attention ``(B, N, N)``
        (Eq. 24 target); ``None`` when the forward ran with
        ``need_attention=False`` (inference hot path).
    """

    __slots__ = ("prediction", "features", "attention")

    def __init__(self, prediction: Tensor, features: Tensor, attention: Tensor):
        self.prediction = prediction
        self.features = features
        self.attention = attention


class StudentModel(Module):
    """RevIN + inverted embedding + TSTEncoder + projection.

    The inverted embedding (Eq. 18, following iTransformer) treats each
    *variable's whole history* as one token, so attention runs across
    variables and the attention map is directly comparable with the
    teacher's privileged Transformer for correlation distillation.
    """

    def __init__(self, config: TimeKDConfig):
        super().__init__()
        self.config = config
        self.revin = RevIN(config.num_variables)
        self.inverted_embedding = Linear(config.history_length, config.d_model)
        self.encoder = TransformerEncoder(
            dim=config.d_model,
            num_heads=config.num_heads,
            num_layers=config.num_layers,
            ffn_dim=config.ffn_dim,
            dropout=config.dropout,
        )
        self.head = Linear(config.d_model, config.horizon)

    def forward(self, history: np.ndarray | Tensor,
                need_attention: bool = True) -> StudentOutput:
        """Forecast ``(B, M, N)`` from a history window ``(B, H, N)``.

        ``need_attention`` controls the last-layer attention head
        average — a distillation-only output.  The trainer keeps the
        default; ``predict``/serving pass ``False``, so the inference
        hot path never pays for it (the forecast is unaffected either
        way: the averaged map is a side output, not an input to the
        prediction).
        """
        x = history if isinstance(history, Tensor) else Tensor(history)
        if x.ndim == 2:
            x = x.reshape(1, *x.shape)
        normalized = self.revin.normalize(x)
        tokens = self.inverted_embedding(normalized.swapaxes(1, 2))  # (B, N, D)
        if need_attention:
            encoded, attention = self.encoder(tokens, return_attention=True)
        else:
            encoded, attention = self.encoder(tokens), None
        projected = self.head(encoded)  # (B, N, M)
        prediction = self.revin.denormalize(projected.swapaxes(1, 2))
        return StudentOutput(prediction, encoded, attention)

    def predict(self, history: np.ndarray) -> np.ndarray:
        """Numpy-in / numpy-out convenience used at inference time."""
        from ..nn import no_grad

        with no_grad():
            output = self.forward(history, need_attention=False)
        return output.prediction.data
