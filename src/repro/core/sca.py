"""Subtractive Cross Attention (paper Section IV-B2, Eq. 8-9).

SCA removes the *textual* information doped into the ground-truth
last-token embeddings: it measures, channel-by-channel, what the
ground-truth embedding shares with the historical embedding (whose text
content is identical), aggregates that shared component, and subtracts
it before a LayerNorm + FFN refinement.
"""

from __future__ import annotations

from ..nn import LayerNorm, Linear, Module, Tensor
from ..nn.transformer import FeedForward

__all__ = ["SubtractiveCrossAttention", "PlainSubtraction"]


class SubtractiveCrossAttention(Module):
    """Channel-wise cross attention followed by subtraction.

    Given ground-truth embeddings ``L_GT`` and historical embeddings
    ``L_HD`` (both ``(B, N, D)``):

    1. ``M_C = softmax(LN(phi_q(L_GT))^T  @  LN(phi_k(L_HD)))`` — a
       ``(B, D, D)`` channel similarity matrix (Eq. 8);
    2. the shared component ``theta_c(phi_v(L_HD) @ M_C)`` is subtracted
       from ``L_GT`` and refined: ``FFN(LN(L_GT - ...))`` (Eq. 9).
    """

    def __init__(self, dim: int, ffn_dim: int | None = None):
        super().__init__()
        self.dim = dim
        self.query = Linear(dim, dim)
        self.key = Linear(dim, dim)
        self.value = Linear(dim, dim)
        self.norm_q = LayerNorm(dim)
        self.norm_k = LayerNorm(dim)
        self.combine = Linear(dim, dim)  # theta_c in Eq. 9
        self.norm_out = LayerNorm(dim)
        self.ffn = FeedForward(dim, ffn_dim or 2 * dim, activation="relu")
        self.last_similarity = None  # (B, D, D), for analysis

    def forward(self, gt_embedding: Tensor, hd_embedding: Tensor) -> Tensor:
        """Refine ``(B, N, D)`` ground-truth embeddings (Eq. 8-9)."""
        q = self.norm_q(self.query(gt_embedding))
        k = self.norm_k(self.key(hd_embedding))
        v = self.value(hd_embedding)

        similarity = q.swapaxes(-1, -2).matmul(k)  # (B, D, D)
        similarity = similarity.softmax(axis=-1)
        self.last_similarity = similarity.data

        shared = self.combine(v.matmul(similarity))  # (B, N, D)
        refined = self.norm_out(gt_embedding - shared)
        return self.ffn(refined) + refined


class PlainSubtraction(Module):
    """The ``w/o SCA`` ablation: direct embedding subtraction."""

    def __init__(self, dim: int):
        super().__init__()
        self.norm = LayerNorm(dim)

    def forward(self, gt_embedding: Tensor, hd_embedding: Tensor) -> Tensor:
        return self.norm(gt_embedding - hd_embedding)
