"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from .module import Module
from .tensor import Tensor

__all__ = ["Dropout"]


class Dropout(Module):
    """Randomly zero activations with probability ``p`` during training.

    Uses inverted scaling so evaluation is the identity function.
    """

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * Tensor(mask)
