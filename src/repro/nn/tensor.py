"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of the ``repro.nn`` substrate.  It provides a
:class:`Tensor` type that records a computation graph as operations are
applied and can back-propagate gradients with :meth:`Tensor.backward`.

The design follows the classic define-by-run tape:

* every differentiable operation returns a new :class:`Tensor` whose
  ``_backward`` closure knows how to route the output gradient to the
  operation inputs;
* :meth:`Tensor.backward` topologically sorts the graph and runs the
  closures in reverse order;
* broadcasting is supported for elementwise operations and batched matrix
  multiplication, with gradients reduced back to the input shapes by
  :func:`_unbroadcast`.

All tensors store ``float32`` data unless explicitly created otherwise;
this halves memory traffic on the CPU-only substrate used for the TimeKD
reproduction.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "tensor", "zeros", "ones"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording.

    Used during evaluation and when running the frozen language-model
    teacher so that activations are not retained.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape`` after broadcasting.

    Summation runs over the leading axes that were added by broadcasting
    and over any axis whose original extent was 1.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=np.float32) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got Tensor")
    array = np.asarray(value, dtype=dtype)
    return array


class Tensor:
    """A numpy-backed array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float32`` by default.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(self, data, requires_grad: bool = False, dtype=np.float32):
        self.data = _as_array(data, dtype=dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._op = ""

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        out = Tensor.__new__(Tensor)
        out.data = self.data
        out.grad = None
        out.requires_grad = False
        out._backward = None
        out._parents = ()
        out._op = "detach"
        return out

    def copy(self) -> "Tensor":
        """Return a detached deep copy."""
        return Tensor(self.data.copy())

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        out.requires_grad = requires
        out._op = op
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        else:
            out._parents = ()
            out._backward = None
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor.  Defaults
            to 1 for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------
    # elementwise arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(np.asarray(other, dtype=self.data.dtype))

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        data = a.data + b.data

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad, a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(grad, b.shape))

        return Tensor._make(data, (a, b), backward, "add")

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        data = a.data - b.data

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad, a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(-grad, b.shape))

        return Tensor._make(data, (a, b), backward, "sub")

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        data = a.data * b.data

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad * b.data, a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(grad * a.data, b.shape))

        return Tensor._make(data, (a, b), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        data = a.data / b.data

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad / b.data, a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(-grad * a.data / (b.data * b.data), b.shape))

        return Tensor._make(data, (a, b), backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        a = self
        data = -a.data

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(-grad)

        return Tensor._make(data, (a,), backward, "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        a = self
        data = a.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * exponent * a.data ** (exponent - 1))

        return Tensor._make(data, (a,), backward, "pow")

    # ------------------------------------------------------------------
    # transcendental / nonlinear primitives
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        a = self
        data = np.exp(a.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * data)

        return Tensor._make(data, (a,), backward, "exp")

    def log(self) -> "Tensor":
        a = self
        data = np.log(a.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad / a.data)

        return Tensor._make(data, (a,), backward, "log")

    def sqrt(self) -> "Tensor":
        a = self
        data = np.sqrt(a.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * 0.5 / np.maximum(data, 1e-12))

        return Tensor._make(data, (a,), backward, "sqrt")

    def tanh(self) -> "Tensor":
        a = self
        data = np.tanh(a.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * (1.0 - data * data))

        return Tensor._make(data, (a,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        a = self
        data = 1.0 / (1.0 + np.exp(-a.data))

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (a,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        a = self
        mask = a.data > 0
        data = a.data * mask

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * mask)

        return Tensor._make(data, (a,), backward, "relu")

    def abs(self) -> "Tensor":
        a = self
        sign = np.sign(a.data)
        data = np.abs(a.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * sign)

        return Tensor._make(data, (a,), backward, "abs")

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        data = a.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not a.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(ax % a.ndim for ax in axes):
                    g = np.expand_dims(g, ax)
            a._accumulate(np.broadcast_to(g, a.shape).copy())

        return Tensor._make(data, (a,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        if axis is None:
            count = a.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for ax in axes:
                count *= a.shape[ax % a.ndim]
        return a.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0), differentiable."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        data = a.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not a.requires_grad:
                return
            g = grad
            expanded = data
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(ax % a.ndim for ax in axes):
                    g = np.expand_dims(g, ax)
                    expanded = np.expand_dims(expanded, ax)
            mask = a.data == expanded
            counts = mask.sum(axis=axis, keepdims=True)
            a._accumulate(mask * g / counts)

        return Tensor._make(data, (a,), backward, "max")

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        data = a.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad.reshape(a.shape))

        return Tensor._make(data, (a,), backward, "reshape")

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        a = self
        data = a.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad.transpose(inverse))

        return Tensor._make(data, (a,), backward, "transpose")

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(tuple(axes))

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, key) -> "Tensor":
        a = self
        data = a.data[key]

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                full = np.zeros_like(a.data)
                np.add.at(full, key, grad)
                a._accumulate(full)

        return Tensor._make(data, (a,), backward, "getitem")

    # ------------------------------------------------------------------
    # linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        data = np.matmul(a.data, b.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                ga = np.matmul(grad, np.swapaxes(b.data, -1, -2))
                if a.ndim == 1:
                    ga = ga.sum(axis=tuple(range(ga.ndim - 1))) if ga.ndim > 1 else ga
                    a._accumulate(ga.reshape(a.shape))
                else:
                    a._accumulate(_unbroadcast(ga, a.shape))
            if b.requires_grad:
                gb = np.matmul(np.swapaxes(a.data, -1, -2), grad)
                if b.ndim == 1:
                    gb = gb.sum(axis=tuple(range(gb.ndim - 1))) if gb.ndim > 1 else gb
                    b._accumulate(gb.reshape(b.shape))
                else:
                    b._accumulate(_unbroadcast(gb, b.shape))

        return Tensor._make(data, (a, b), backward, "matmul")

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # composite / fused primitives used throughout the models
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax as a fused primitive."""
        a = self
        shifted = a.data - a.data.max(axis=axis, keepdims=True)
        exps = np.exp(shifted)
        data = exps / exps.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                dot = (grad * data).sum(axis=axis, keepdims=True)
                a._accumulate(data * (grad - dot))

        return Tensor._make(data, (a,), backward, "softmax")

    def log_softmax(self, axis: int = -1) -> "Tensor":
        a = self
        shifted = a.data - a.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        data = shifted - log_z
        soft = np.exp(data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

        return Tensor._make(data, (a,), backward, "log_softmax")

    def take(self, indices: np.ndarray, axis: int = 0) -> "Tensor":
        """Embedding-style gather along ``axis`` with integer indices."""
        a = self
        idx = np.asarray(indices)
        data = np.take(a.data, idx, axis=axis)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                full = np.zeros_like(a.data)
                if axis == 0:
                    np.add.at(full, idx, grad)
                else:  # pragma: no cover - only axis 0 used in practice
                    moved = np.moveaxis(full, axis, 0)
                    np.add.at(moved, idx, np.moveaxis(grad, axis, 0))
                a._accumulate(full)

        return Tensor._make(data, (a,), backward, "take")


# ----------------------------------------------------------------------
# free functions over tensors
# ----------------------------------------------------------------------
def tensor(data, requires_grad: bool = False) -> Tensor:
    """Create a tensor from array-like ``data``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    parts = list(tensors)
    data = np.concatenate([p.data for p in parts], axis=axis)
    sizes = [p.shape[axis] for p in parts]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for part, start, stop in zip(parts, offsets[:-1], offsets[1:]):
            if part.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                part._accumulate(grad[tuple(slicer)])

    return Tensor._make(data, parts, backward, "concatenate")


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stacking along a new ``axis``."""
    parts = list(tensors)
    data = np.stack([p.data for p in parts], axis=axis)

    def backward(grad: np.ndarray) -> None:
        moved = np.moveaxis(grad, axis, 0)
        for i, part in enumerate(parts):
            if part.requires_grad:
                part._accumulate(moved[i])

    return Tensor._make(data, parts, backward, "stack")


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable select; ``condition`` is a constant boolean array."""
    cond = np.asarray(condition, dtype=bool)
    if not isinstance(a, Tensor):
        a = Tensor(a)
    if not isinstance(b, Tensor):
        b = Tensor(b)
    data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * ~cond, b.shape))

    return Tensor._make(data, (a, b), backward, "where")
