"""Module system: parameter containers with recursive traversal.

Mirrors the familiar ``torch.nn.Module`` contract at the scale needed for
this reproduction: named parameter collection, train/eval mode, freezing,
and state-dict (de)serialization.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A tensor registered as a learnable parameter of a module."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(data, requires_grad=requires_grad)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically by :meth:`parameters`
    and :meth:`named_parameters`.
    """

    def __init__(self):
        self.training = True

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            if name == "training":
                continue
            path = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield path, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{path}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{path}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{path}.{i}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.grad = None

    def freeze(self) -> "Module":
        """Disable gradients on every parameter (used for frozen LLMs)."""
        for parameter in self.parameters():
            parameter.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        for parameter in self.parameters():
            parameter.requires_grad = True
        return self

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total scalar parameter count."""
        return sum(
            p.size
            for p in self.parameters()
            if not trainable_only or p.requires_grad
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=parameter.data.dtype)
            if value.shape != parameter.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {parameter.shape}"
                )
            parameter.data = value.copy()

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """A list of sub-modules that participates in parameter traversal."""

    def __init__(self, modules=()):
        super().__init__()
        self.items = list(modules)

    def append(self, module: Module) -> None:
        self.items.append(module)

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index):
        return self.items[index]

    def forward(self, *args, **kwargs):  # pragma: no cover - container only
        raise RuntimeError("ModuleList is a container and cannot be called")


class Sequential(Module):
    """Chain modules, feeding each output into the next module."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.items = list(modules)

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def forward(self, x):
        for module in self.items:
            x = module(x)
        return x
