"""Functional building blocks and loss functions.

All functions operate on :class:`repro.nn.tensor.Tensor` and are fully
differentiable.  The losses implement exactly the formulations used in the
TimeKD paper: SmoothL1 (Eq. 17), MSE (Eq. 31) and MAE (Eq. 32).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, where

__all__ = [
    "relu",
    "gelu",
    "silu",
    "softmax",
    "smooth_l1_loss",
    "mse_loss",
    "mae_loss",
    "huber_loss",
    "cross_entropy",
]

_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit, ``max(0, x)`` (Eq. 7)."""
    return x.relu()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation).

    Used by the GPT-2-style backbone feed-forward networks.
    """
    inner = (x + x * x * x * 0.044715) * _SQRT_2_OVER_PI
    return x * 0.5 * (inner.tanh() + 1.0)


def silu(x: Tensor) -> Tensor:
    """Sigmoid-weighted linear unit, used by the LLaMA-style SwiGLU FFN."""
    return x * x.sigmoid()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    return x.softmax(axis=axis)


def smooth_l1_loss(prediction: Tensor, target: Tensor, beta: float = 1.0) -> Tensor:
    """SmoothL1 loss (paper Eq. 17), reduced by mean.

    ``0.5 * d**2 / beta`` where ``|d| < beta`` and ``|d| - 0.5 * beta``
    elsewhere.  The paper uses ``beta = 1``.
    """
    if isinstance(target, np.ndarray):
        target = Tensor(target)
    diff = prediction - target
    abs_diff = diff.abs()
    quadratic = diff * diff * (0.5 / beta)
    linear = abs_diff - 0.5 * beta
    loss = where(abs_diff.data < beta, quadratic, linear)
    return loss.mean()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Alias kept for API parity with common DL frameworks."""
    return smooth_l1_loss(prediction, target, beta=delta)


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error (paper Eq. 31)."""
    if isinstance(target, np.ndarray):
        target = Tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def mae_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error (paper Eq. 32)."""
    if isinstance(target, np.ndarray):
        target = Tensor(target)
    return (prediction - target).abs().mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Token-level cross entropy for language-model pretraining.

    Parameters
    ----------
    logits:
        ``(..., vocab)`` unnormalized scores.
    targets:
        Integer array broadcastable to ``logits.shape[:-1]``; positions
        with value ``-1`` are ignored (padding).
    """
    targets = np.asarray(targets)
    log_probs = logits.log_softmax(axis=-1)
    flat = log_probs.reshape(-1, logits.shape[-1])
    idx = targets.reshape(-1)
    mask = idx >= 0
    safe_idx = np.where(mask, idx, 0)
    rows = np.arange(flat.shape[0])
    picked = flat[rows, safe_idx]
    weights = mask.astype(np.float32)
    total = float(weights.sum()) or 1.0
    return -(picked * Tensor(weights)).sum() * (1.0 / total)
