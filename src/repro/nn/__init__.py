"""``repro.nn`` — numpy autograd and neural-network substrate.

A from-scratch replacement for the PyTorch layer the paper's authors
used: reverse-mode autodiff (:mod:`repro.nn.tensor`), modules, attention,
Pre-LN transformers, optimizers and schedulers.
"""

from . import functional, init
from .attention import MultiHeadAttention, causal_mask
from .buffers import ScratchPool, donate, donate_parameters, quantize_per_channel
from .dropout import Dropout
from .embedding import Embedding, PositionalEncoding, SinusoidalPositionalEncoding
from .linear import Linear
from .module import Module, ModuleList, Parameter, Sequential
from .norm import LayerNorm, RMSNorm
from .optim import SGD, Adam, AdamW, Optimizer, clip_grad_norm
from .scheduler import CosineAnnealingLR, LRScheduler, StepLR, WarmupCosineLR
from .serialization import load_arrays, load_module, save_arrays, save_module
from .tensor import Tensor, concatenate, is_grad_enabled, no_grad, stack, tensor, where
from .transformer import FeedForward, PreLNEncoderLayer, TransformerEncoder

__all__ = [
    "functional",
    "init",
    "Tensor",
    "tensor",
    "no_grad",
    "is_grad_enabled",
    "concatenate",
    "stack",
    "where",
    "ScratchPool",
    "donate",
    "donate_parameters",
    "quantize_per_channel",
    "Parameter",
    "Module",
    "ModuleList",
    "Sequential",
    "Linear",
    "LayerNorm",
    "RMSNorm",
    "Embedding",
    "PositionalEncoding",
    "SinusoidalPositionalEncoding",
    "Dropout",
    "MultiHeadAttention",
    "causal_mask",
    "FeedForward",
    "PreLNEncoderLayer",
    "TransformerEncoder",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "WarmupCosineLR",
    "save_module",
    "load_module",
    "save_arrays",
    "load_arrays",
]
