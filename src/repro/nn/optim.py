"""First-order optimizers: SGD, Adam, AdamW — plus gradient clipping.

The paper trains with AdamW; SGD and Adam are provided for ablations and
tests.  Adam/AdamW keep preallocated moment and scratch buffers per
parameter and update them with in-place ufuncs, so a step allocates no
temporaries — on the CPU-only substrate the optimizer is memory-bound
and this roughly halves its cost.
"""

from __future__ import annotations

import math

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "clip_grad_norm"]


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clipping norm.  The squared norm accumulates in
    float64: a float32 dot product over a large parameter group both
    loses low-order bits and can overflow to ``inf`` (float32 tops out
    at ~3.4e38, i.e. gradient magnitudes of only ~1.8e19), which would
    silently zero every gradient via ``scale = max_norm / inf``.  The
    einsum accumulates through a small buffered cast — no full-size
    float64 temporary per step.
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    total = math.sqrt(sum(
        # repro: allow[dtype-hygiene] — float32 dot overflows to inf
        float(np.einsum("i,i->", g.ravel(), g.ravel(),
                        dtype=np.float64)) for g in grads))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for g in grads:
            np.multiply(g, scale, out=g)
    return total


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters, lr: float):
        self.parameters: list[Tensor] = [p for p in parameters if p.requires_grad]
        if not self.parameters:
            raise ValueError("optimizer received no trainable parameters")
        self.lr = lr

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Reset gradients before the next backward pass.

        ``set_to_none=False`` zeroes existing grad buffers in place
        instead of dropping them, so ``Tensor._accumulate`` adds into
        the same allocation every step — the allocation-free contract
        the rest of this module keeps.  (``None`` remains the default:
        it lets ``step()`` skip untouched parameters entirely.)
        """
        for p in self.parameters:
            if set_to_none:
                p.grad = None
            elif p.grad is not None:
                p.grad.fill(0.0)

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with allocation-free steps."""

    def __init__(self, parameters, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch = [np.empty_like(p.data) for p in self.parameters]
        self._update = [np.empty_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p, m, v, scratch, update in zip(
                self.parameters, self._m, self._v,
                self._scratch, self._update):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                np.multiply(p.data, self.weight_decay, out=scratch)
                scratch += grad
                grad = scratch
            # v <- beta2 * v + (1 - beta2) * grad^2
            v *= self.beta2
            np.multiply(grad, grad, out=update)
            update *= 1.0 - self.beta2
            v += update
            # m <- beta1 * m + (1 - beta1) * grad
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=update)
            m += update
            # p <- p - lr * (m / bias1) / (sqrt(v / bias2) + eps)
            np.divide(v, bias2, out=update)
            np.sqrt(update, out=update)
            update += self.eps
            np.divide(m, update, out=update)
            update *= self.lr / bias1
            p.data -= update


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019).

    This is the optimizer TimeKD uses (paper Section V-A4).
    """

    def __init__(self, parameters, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 1e-2):
        super().__init__(parameters, lr, betas=betas, eps=eps, weight_decay=0.0)
        self.decoupled_weight_decay = weight_decay

    def step(self) -> None:
        if self.decoupled_weight_decay:
            decay = self.lr * self.decoupled_weight_decay
            for p in self.parameters:
                if p.grad is not None:
                    p.data *= 1.0 - decay
        super().step()
