"""Buffer-donation helpers and preallocated scratch pools.

Compiled inference engines (:mod:`repro.infer`) run outside the autograd
substrate: they want the *raw* weight arrays of a fitted module and a set
of reusable scratch buffers sized for the current batch shape, so a
forward pass allocates nothing beyond its output.

Two pieces live here because they are engine-agnostic:

* :func:`donate` — hand a parameter's backing array to an engine.  The
  array is returned as-is (zero copy) whenever it already satisfies the
  engine contract (C-contiguous, requested dtype); otherwise a compliant
  copy is made once, at compile time.  Donated weights *share memory*
  with the module by default, so an engine compiled from a live module
  tracks in-place weight updates for free.
* :class:`ScratchPool` — named, shape-keyed ``np.empty`` buffers.
  ``take(name, shape)`` returns the same allocation for the same
  ``(name, shape)`` every call, which is exactly the per-batch-shape
  preallocation pattern a steady-state serving loop needs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["donate", "donate_parameters", "quantize_per_channel",
           "ScratchPool"]


def donate(array, dtype=np.float32, copy: bool = False) -> np.ndarray:
    """Return ``array`` as a C-contiguous ndarray of ``dtype``.

    Zero-copy when the input already complies (the buffer is *donated*
    to the caller — mutations remain visible to the donor); otherwise a
    single compliant copy is made.  ``copy=True`` forces a snapshot,
    decoupling the caller from later in-place weight updates.
    """
    out = np.ascontiguousarray(array, dtype=dtype)
    if copy and out is array:
        out = out.copy()
    return out


def donate_parameters(module, dtype=np.float32,
                      copy: bool = False) -> dict[str, np.ndarray]:
    """Donated backing arrays of every named parameter of ``module``."""
    return {name: donate(p.data, dtype=dtype, copy=copy)
            for name, p in module.named_parameters()}


def quantize_per_channel(
        weight: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Symmetric per-output-channel int8 quantization of a weight matrix.

    ``weight`` is a ``(fan_in, fan_out)`` projection; each output channel
    ``c`` gets its own scale ``max(|W[:, c]|) / 127`` so wide channels do
    not crush narrow ones.  Returns ``(q, scales, dequantized)`` where
    ``q`` is the ``int8`` code matrix, ``scales`` the per-channel
    ``float32`` step sizes, and ``dequantized = q * scales`` the
    ``float32`` reconstruction an engine can feed straight into the same
    GEMMs (numpy has no int8 BLAS path — the win is the 4x-smaller
    canonical weight form plus the explicit, checkable error bound:
    ``|W - dequantized| <= scales / 2`` per channel, by construction of
    round-to-nearest).
    """
    w = np.ascontiguousarray(weight, dtype=np.float32)
    amax = np.abs(w).max(axis=0)
    scales = np.where(amax > 0.0, amax / 127.0, 1.0).astype(np.float32)
    q = np.clip(np.rint(w / scales), -127.0, 127.0).astype(np.int8)
    return q, scales, q.astype(np.float32) * scales


class ScratchPool:
    """Reusable named scratch buffers keyed by ``(name, shape, dtype)``.

    ``take`` returns an *uninitialized* buffer (``np.empty`` semantics):
    callers must fully overwrite it.  Buffers persist across calls, so a
    hot loop that always asks for the same shapes allocates only on its
    first iteration.  One pool instance is single-threaded by contract —
    share pools only under an external lock.
    """

    def __init__(self):
        self._buffers: dict[tuple, np.ndarray] = {}

    def take(self, name: str, shape: tuple[int, ...],
             dtype=np.float32) -> np.ndarray:
        key = (name, tuple(shape), np.dtype(dtype))
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[key] = buffer
        return buffer

    def clear(self) -> None:
        """Drop every held buffer (frees steady-state scratch memory)."""
        self._buffers.clear()

    @property
    def nbytes(self) -> int:
        """Total bytes currently held across all buffers."""
        return sum(b.nbytes for b in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)
