"""Pre-LN Transformer encoder (Xiong et al. 2020).

Both the privileged Transformer ``PTEncoder`` (teacher, paper Eq. 10-14)
and the time-series Transformer ``TSTEncoder`` (student, Eq. 19-23) are
instances of :class:`TransformerEncoder`: same structure, separate
weights, as the paper specifies.
"""

from __future__ import annotations

import numpy as np

from .attention import MultiHeadAttention
from .dropout import Dropout
from .functional import gelu, relu
from .linear import Linear
from .module import Module, ModuleList
from .norm import LayerNorm
from .tensor import Tensor

__all__ = ["FeedForward", "PreLNEncoderLayer", "TransformerEncoder"]


class FeedForward(Module):
    """Position-wise two-layer FFN (paper Eq. 7)."""

    def __init__(self, dim: int, hidden_dim: int, activation: str = "relu",
                 dropout: float = 0.0):
        super().__init__()
        if activation not in ("relu", "gelu"):
            raise ValueError(f"unknown activation {activation!r}")
        self.fc1 = Linear(dim, hidden_dim)
        self.fc2 = Linear(hidden_dim, dim)
        self.activation = activation
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        act = relu if self.activation == "relu" else gelu
        return self.fc2(self.dropout(act(self.fc1(x))))


class PreLNEncoderLayer(Module):
    """One Pre-LN encoder block: LN→MHA→residual, LN→FFN→residual."""

    def __init__(self, dim: int, num_heads: int, ffn_dim: int,
                 activation: str = "relu", dropout: float = 0.0):
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.attention = MultiHeadAttention(dim, num_heads)
        self.norm2 = LayerNorm(dim)
        self.ffn = FeedForward(dim, ffn_dim, activation=activation, dropout=dropout)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor, attn_bias: np.ndarray | None = None,
                return_weights: bool = False):
        normed = self.norm1(x)
        if return_weights:
            attended, weights = self.attention(
                normed, attn_bias=attn_bias, return_weights=True)
        else:
            attended = self.attention(normed, attn_bias=attn_bias)
            weights = None
        x = x + self.dropout(attended)
        x = x + self.dropout(self.ffn(self.norm2(x)))
        if return_weights:
            return x, weights
        return x


class TransformerEncoder(Module):
    """Stack of Pre-LN encoder layers with a final LayerNorm.

    The forward pass can expose the head-averaged attention map of the
    *last* layer, which is exactly what TimeKD's correlation distillation
    consumes (paper Section IV-D1).
    """

    def __init__(self, dim: int, num_heads: int, num_layers: int,
                 ffn_dim: int | None = None, activation: str = "relu",
                 dropout: float = 0.0):
        super().__init__()
        ffn_dim = ffn_dim or 4 * dim
        self.layers = ModuleList([
            PreLNEncoderLayer(dim, num_heads, ffn_dim,
                              activation=activation, dropout=dropout)
            for _ in range(num_layers)
        ])
        self.final_norm = LayerNorm(dim)

    def forward(self, x: Tensor, attn_bias: np.ndarray | None = None,
                return_attention: bool = False):
        """Encode ``x``; optionally return the last layer's attention map.

        Returns ``encoded`` or ``(encoded, attention)`` where
        ``attention`` is a differentiable ``(batch, seq, seq)`` tensor.
        """
        attention = None
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            if return_attention and i == last:
                x, attention = layer(x, attn_bias=attn_bias, return_weights=True)
            else:
                x = layer(x, attn_bias=attn_bias)
        x = self.final_norm(x)
        if return_attention:
            return x, attention
        return x
