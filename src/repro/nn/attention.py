"""Multi-head attention with additive score biases.

The additive-bias hook is what the TimeKD calibrated attention (paper
Eq. 3-5) plugs into: the calibrated mask contributes ``-Delta`` to the
pre-softmax scores of cross-modality token pairs, while causal masking
contributes ``-inf`` above the diagonal.
"""

from __future__ import annotations

import math

import numpy as np

from .linear import Linear
from .module import Module
from .tensor import Tensor

__all__ = ["MultiHeadAttention", "causal_mask"]

NEG_INF = -1e9

_MASK_CACHE: dict[int, np.ndarray] = {}


def causal_mask(length: int) -> np.ndarray:
    """Additive causal bias: 0 on/below the diagonal, ``-inf`` above.

    Masks are cached by length and returned read-only — every CLM
    forward over same-length prompts reuses one array.
    """
    mask = _MASK_CACHE.get(length)
    if mask is None:
        mask = np.zeros((length, length), dtype=np.float32)
        mask[np.triu_indices(length, k=1)] = NEG_INF
        mask.setflags(write=False)
        _MASK_CACHE[length] = mask
    return mask


class MultiHeadAttention(Module):
    """Scaled dot-product attention over ``(batch, seq, dim)`` inputs.

    Parameters
    ----------
    dim:
        Model width; must be divisible by ``num_heads``.
    num_heads:
        Number of attention heads.
    bias:
        Whether the four projections carry additive biases.

    The forward pass optionally returns the post-softmax attention
    weights averaged across heads, which TimeKD's correlation
    distillation (Eq. 24) consumes.  ``last_attention`` is only
    materialized when those weights are requested (or when
    ``store_attention`` is set for inspection) — the head-average is
    pure overhead on the frozen-CLM hot path otherwise.
    """

    def __init__(self, dim: int, num_heads: int, bias: bool = True):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, bias=bias)
        self.k_proj = Linear(dim, dim, bias=bias)
        self.v_proj = Linear(dim, dim, bias=bias)
        self.out_proj = Linear(dim, dim, bias=bias)
        self.store_attention = False
        self.last_attention: np.ndarray | None = None

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, heads, seq, head_dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * head_dim)

    def forward(
        self,
        query: Tensor,
        key: Tensor | None = None,
        value: Tensor | None = None,
        attn_bias: np.ndarray | None = None,
        return_weights: bool = False,
    ):
        """Attend ``query`` over ``key``/``value``.

        Parameters
        ----------
        query / key / value:
            ``(batch, seq, dim)``; ``key``/``value`` default to ``query``
            (self-attention).
        attn_bias:
            Optional additive pre-softmax bias broadcastable to
            ``(batch, heads, q_len, k_len)`` — e.g. a causal or
            calibrated-modality mask.
        return_weights:
            Also return head-averaged attention ``(batch, q_len, k_len)``
            as a differentiable :class:`Tensor` — gradients flow through
            it, which correlation distillation requires.
        """
        key = query if key is None else key
        value = key if value is None else value

        q = self._split_heads(self.q_proj(query))
        k = self._split_heads(self.k_proj(key))
        v = self._split_heads(self.v_proj(value))

        scores = q.matmul(k.swapaxes(-1, -2)) * (1.0 / math.sqrt(self.head_dim))
        if attn_bias is not None:
            scores = scores + Tensor(np.asarray(attn_bias, dtype=np.float32))
        weights = scores.softmax(axis=-1)

        context = self._merge_heads(weights.matmul(v))
        output = self.out_proj(context)
        if return_weights:
            averaged = weights.mean(axis=1)
            self.last_attention = averaged.data
            return output, averaged
        if self.store_attention:
            self.last_attention = weights.data.mean(axis=1)
        return output
