"""Normalization layers: LayerNorm (paper Eq. 6) and RMSNorm (LLaMA-style)."""

from __future__ import annotations

from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["LayerNorm", "RMSNorm"]


class LayerNorm(Module):
    """Layer normalization over the trailing axis.

    Implements ``gamma * (x - mu) / (sigma + eps) + beta`` exactly as the
    paper's Eq. 6 (note the paper normalizes by ``sigma + eps`` rather
    than ``sqrt(var + eps)``; we use the conventional variance form which
    is numerically equivalent up to the epsilon placement).
    """

    def __init__(self, features: int, eps: float = 1e-5):
        super().__init__()
        self.features = features
        self.eps = eps
        self.gamma = Parameter(init.ones((features,)))
        self.beta = Parameter(init.zeros((features,)))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normalized = (x - mu) / (var + self.eps).sqrt()
        return normalized * self.gamma + self.beta


class RMSNorm(Module):
    """Root-mean-square normalization used by the LLaMA-style backbone."""

    def __init__(self, features: int, eps: float = 1e-6):
        super().__init__()
        self.features = features
        self.eps = eps
        self.gamma = Parameter(init.ones((features,)))

    def forward(self, x: Tensor) -> Tensor:
        ms = (x * x).mean(axis=-1, keepdims=True)
        return x / (ms + self.eps).sqrt() * self.gamma
