"""Normalization layers: LayerNorm (paper Eq. 6) and RMSNorm (LLaMA-style).

Both run as fused autograd primitives: the forward is a handful of numpy
ufuncs and the backward applies the closed-form normalization gradient,
instead of recording ~10 elementwise graph nodes per call.  Norms sit
inside every transformer block of both the frozen CLM and the trained
models, so this is one of the hottest paths in the repo.
"""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["LayerNorm", "RMSNorm"]


def _fused_layer_norm(x: Tensor, gamma: Parameter, beta: Parameter,
                      eps: float) -> Tensor:
    xd = x.data
    mu = xd.mean(axis=-1, keepdims=True)
    var = xd.var(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    xhat = (xd - mu) * inv
    data = xhat * gamma.data + beta.data

    def backward(grad: np.ndarray) -> None:
        lead = tuple(range(grad.ndim - 1))
        if gamma.requires_grad:
            gamma._accumulate((grad * xhat).sum(axis=lead))
        if beta.requires_grad:
            beta._accumulate(grad.sum(axis=lead))
        if x.requires_grad:
            g = grad * gamma.data
            g_mean = g.mean(axis=-1, keepdims=True)
            gx_mean = (g * xhat).mean(axis=-1, keepdims=True)
            x._accumulate(inv * (g - g_mean - xhat * gx_mean))

    return Tensor._make(data, (x, gamma, beta), backward, "layer_norm")


def _fused_rms_norm(x: Tensor, gamma: Parameter, eps: float) -> Tensor:
    xd = x.data
    ms = np.mean(xd * xd, axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(ms + eps)
    xhat = xd * inv
    data = xhat * gamma.data

    def backward(grad: np.ndarray) -> None:
        if gamma.requires_grad:
            gamma._accumulate(
                (grad * xhat).sum(axis=tuple(range(grad.ndim - 1))))
        if x.requires_grad:
            g = grad * gamma.data
            gx_mean = (g * xd).mean(axis=-1, keepdims=True)
            x._accumulate(inv * (g - xd * (gx_mean / (ms + eps))))

    return Tensor._make(data, (x, gamma), backward, "rms_norm")


class LayerNorm(Module):
    """Layer normalization over the trailing axis.

    Implements ``gamma * (x - mu) / (sigma + eps) + beta`` exactly as the
    paper's Eq. 6 (note the paper normalizes by ``sigma + eps`` rather
    than ``sqrt(var + eps)``; we use the conventional variance form which
    is numerically equivalent up to the epsilon placement).
    """

    def __init__(self, features: int, eps: float = 1e-5):
        super().__init__()
        self.features = features
        self.eps = eps
        self.gamma = Parameter(init.ones((features,)))
        self.beta = Parameter(init.zeros((features,)))

    def forward(self, x: Tensor) -> Tensor:
        return _fused_layer_norm(x, self.gamma, self.beta, self.eps)


class RMSNorm(Module):
    """Root-mean-square normalization used by the LLaMA-style backbone."""

    def __init__(self, features: int, eps: float = 1e-6):
        super().__init__()
        self.features = features
        self.eps = eps
        self.gamma = Parameter(init.ones((features,)))

    def forward(self, x: Tensor) -> Tensor:
        return _fused_rms_norm(x, self.gamma, self.eps)
