"""Save / load module weights and raw array states as ``.npz`` archives."""

from __future__ import annotations

import numpy as np

from ..persist import atomic_save_arrays
from .module import Module

__all__ = ["save_module", "load_module", "save_arrays", "load_arrays"]


def save_arrays(path: str, arrays: dict[str, np.ndarray]) -> None:
    """Atomically write a named-array mapping to ``path`` (npz).

    The archive is staged in a temp file next to the target and moved
    into place (see :func:`repro.persist.atomic_save_arrays`), so
    readers never observe a half-written bundle.  Like ``np.savez``, a
    missing ``.npz`` extension is appended — keeping save and load
    paths symmetric.
    """
    atomic_save_arrays(path, arrays)


def load_arrays(path: str) -> dict[str, np.ndarray]:
    """Read every array of an archive written by :func:`save_arrays`."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path, allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}


def save_module(module: Module, path: str) -> None:
    """Serialize ``module.state_dict()`` to ``path`` (npz)."""
    save_arrays(path, module.state_dict())


def load_module(module: Module, path: str) -> Module:
    """Load weights saved by :func:`save_module` into ``module``."""
    module.load_state_dict(load_arrays(path))
    return module
