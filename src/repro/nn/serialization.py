"""Save / load module weights as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from .module import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path: str) -> None:
    """Serialize ``module.state_dict()`` to ``path`` (npz)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    state = module.state_dict()
    np.savez(path, **state)


def load_module(module: Module, path: str) -> Module:
    """Load weights saved by :func:`save_module` into ``module``."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
    return module
