"""Weight initialization schemes.

A process-wide seeded generator keeps model construction reproducible;
call :func:`seed_everything` before building models in experiments.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "seed_everything",
    "default_rng",
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "normal",
    "zeros",
    "ones",
]

_RNG = np.random.default_rng(0)


def seed_everything(seed: int) -> None:
    """Reset the global initialization RNG (and numpy's legacy RNG)."""
    global _RNG
    _RNG = np.random.default_rng(seed)
    np.random.seed(seed % (2**32))


def default_rng() -> np.random.Generator:
    """The generator used by all initializers."""
    return _RNG


def xavier_uniform(shape: tuple[int, ...], gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return _RNG.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(shape: tuple[int, ...], gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return (_RNG.standard_normal(shape) * std).astype(np.float32)


def kaiming_uniform(shape: tuple[int, ...]) -> np.ndarray:
    fan_in, _ = _fans(shape)
    bound = np.sqrt(3.0 / fan_in)
    return _RNG.uniform(-bound, bound, size=shape).astype(np.float32)


def normal(shape: tuple[int, ...], std: float = 0.02) -> np.ndarray:
    return (_RNG.standard_normal(shape) * std).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out
