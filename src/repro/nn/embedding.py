"""Embedding layers: token lookup and learnable positional encodings."""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["Embedding", "PositionalEncoding", "SinusoidalPositionalEncoding"]


class Embedding(Module):
    """Token-id lookup table, ``(vocab, dim)``."""

    def __init__(self, num_embeddings: int, dim: int):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.normal((num_embeddings, dim), std=0.02))

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids)
        if token_ids.min(initial=0) < 0 or token_ids.max(initial=0) >= self.num_embeddings:
            raise IndexError("token id out of range")
        return self.weight.take(token_ids, axis=0)


class PositionalEncoding(Module):
    """Learnable positional embeddings (paper: ``I0 = I + PE``)."""

    def __init__(self, max_length: int, dim: int):
        super().__init__()
        self.max_length = max_length
        self.weight = Parameter(init.normal((max_length, dim), std=0.02))

    def forward(self, x: Tensor) -> Tensor:
        length = x.shape[-2]
        if length > self.max_length:
            raise ValueError(
                f"sequence length {length} exceeds max_length {self.max_length}"
            )
        return x + self.weight[:length]


class SinusoidalPositionalEncoding(Module):
    """Fixed sin/cos positional table (used by UniTime-style baseline)."""

    def __init__(self, max_length: int, dim: int):
        super().__init__()
        position = np.arange(max_length)[:, None]
        div = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
        table = np.zeros((max_length, dim), dtype=np.float32)
        table[:, 0::2] = np.sin(position * div)
        table[:, 1::2] = np.cos(position * div)
        self.table = table
        self.max_length = max_length

    def forward(self, x: Tensor) -> Tensor:
        length = x.shape[-2]
        return x + Tensor(self.table[:length])
