"""Affine layers."""

from __future__ import annotations

from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x @ W + b`` applied over the trailing axis.

    Parameters
    ----------
    in_features / out_features:
        Trailing-axis widths of the input and output.
    bias:
        Include the additive bias term.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features)))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.bias is not None})"
        )
