"""Learning-rate schedulers."""

from __future__ import annotations

import math

from .optim import Optimizer

__all__ = ["LRScheduler", "StepLR", "CosineAnnealingLR", "WarmupCosineLR"]


class LRScheduler:
    """Base scheduler; call :meth:`step` once per epoch (or iteration).

    Follows the epoch-0-equals-base-lr convention: the first
    :meth:`step` computes the LR *at* ``epoch`` before advancing it, so
    the first training epoch runs at ``base_lr`` (decay schedules used
    to skip it by incrementing first — epoch 1 of a cosine schedule was
    already decayed).
    """

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> float:
        lr = self.get_lr()
        self.optimizer.lr = lr
        self.epoch += 1
        return lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``min_lr`` over ``t_max`` epochs.

    Epoch 0 runs at ``base_lr``; ``min_lr`` is reached at epoch
    ``t_max`` (i.e. on the ``t_max + 1``-th step).
    """

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        self.t_max = max(1, t_max)
        self.min_lr = min_lr

    def get_lr(self) -> float:
        progress = min(self.epoch, self.t_max) / self.t_max
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class WarmupCosineLR(CosineAnnealingLR):
    """Linear warmup followed by cosine decay (used for LM pretraining).

    Warmup ramps over the first ``warmup`` steps (``base_lr / warmup``
    up to ``base_lr``) and the cosine leg follows — a warmup schedule
    intentionally does *not* start at ``base_lr``.
    """

    def __init__(self, optimizer: Optimizer, warmup: int, t_max: int,
                 min_lr: float = 0.0):
        super().__init__(optimizer, t_max=t_max, min_lr=min_lr)
        self.warmup = max(1, warmup)

    def get_lr(self) -> float:
        if self.epoch < self.warmup:
            return self.base_lr * (self.epoch + 1) / self.warmup
        progress = min(self.epoch + 1 - self.warmup, self.t_max) / self.t_max
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine
