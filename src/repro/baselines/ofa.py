"""OFA / GPT4TS (Zhou et al., NeurIPS 2023) baseline.

"One Fits All": time-series patches are linearly embedded into a
*pretrained, mostly frozen* language model; only the input/output
projections, positional embeddings and the LayerNorms are tuned — the
attention and feed-forward weights stay frozen, exactly the paper's
description of OFA ("freezing the attention and feed-forward layers in
the LLM while fine-tuning other layers").
"""

from __future__ import annotations

import numpy as np

from ..llm.backbones import TransformerLM
from ..nn import Linear, PositionalEncoding, Tensor, stack
from .base import BaselineConfig, ForecastModel, InstanceNorm, as_batched_tensor

__all__ = ["OFA"]


class OFA(ForecastModel):
    """Patch embedding → frozen LM blocks → flatten head."""

    def __init__(self, config: BaselineConfig, backbone: TransformerLM):
        super().__init__(config)
        self.norm = InstanceNorm()
        self.backbone = backbone
        self._freeze_backbone_except_norms()
        lm_dim = backbone.config.dim

        self.patch_length = min(config.patch_length, config.history_length)
        self.patch_stride = max(1, config.patch_stride)
        self.num_patches = 1 + max(
            0, (config.history_length - self.patch_length) // self.patch_stride)
        self.input_projection = Linear(self.patch_length, lm_dim)
        self.positional = PositionalEncoding(self.num_patches, lm_dim)
        self.head = Linear(self.num_patches * lm_dim, config.horizon)

    def _freeze_backbone_except_norms(self) -> None:
        """Freeze attention/FFN; keep LayerNorm/RMSNorm parameters live."""
        self.backbone.freeze()
        for name, parameter in self.backbone.named_parameters():
            if "norm" in name and ("gamma" in name or "beta" in name):
                parameter.requires_grad = True

    def _patch(self, x: Tensor) -> Tensor:
        patches = []
        for p in range(self.num_patches):
            start = p * self.patch_stride
            patches.append(x[:, start:start + self.patch_length])
        return stack(patches, axis=1)

    def forward(self, history) -> Tensor:
        x = as_batched_tensor(history)
        batch, length, num_vars = x.shape
        normalized = self.norm.normalize(x)
        series = normalized.swapaxes(1, 2).reshape(batch * num_vars, length)
        tokens = self.positional(self.input_projection(self._patch(series)))

        bias = self.backbone._attention_bias(self.num_patches, None)
        hidden = tokens
        for block in self.backbone.blocks:
            hidden = block(hidden, attn_bias=bias)
        hidden = self.backbone.final_norm(hidden)

        flattened = hidden.reshape(
            batch * num_vars, self.num_patches * self.backbone.config.dim)
        forecast = self.head(flattened).reshape(
            batch, num_vars, self.config.horizon)
        return self.norm.denormalize(forecast.swapaxes(1, 2))
