"""Shared plumbing for baseline forecasting models.

Every baseline is a :class:`repro.nn.Module` mapping a history window
``(B, H, N)`` to a forecast ``(B, M, N)``; a common config keeps the
experiment harness uniform across architectures.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..nn import Module, Tensor

__all__ = ["BaselineConfig", "ForecastModel", "InstanceNorm"]


@dataclass(frozen=True)
class BaselineConfig:
    """Shape and capacity settings shared by all baselines."""

    history_length: int = 96
    horizon: int = 24
    num_variables: int = 7
    d_model: int = 64
    num_heads: int = 4
    num_layers: int = 2
    ffn_dim: int = 128
    dropout: float = 0.0
    patch_length: int = 16
    patch_stride: int = 8
    llm_name: str = "gpt2-tiny"

    def with_updates(self, **changes) -> "BaselineConfig":
        return replace(self, **changes)


class ForecastModel(Module):
    """Base class fixing the forecast interface."""

    def __init__(self, config: BaselineConfig):
        super().__init__()
        self.config = config

    def forward(self, history: np.ndarray | Tensor) -> Tensor:
        raise NotImplementedError

    def predict(self, history: np.ndarray) -> np.ndarray:
        from ..nn import no_grad

        with no_grad():
            out = self.forward(history)
        return out.data


class InstanceNorm:
    """Non-learnable per-instance normalization helper.

    Several baselines (PatchTST, iTransformer, OFA, Time-LLM) z-score
    each window over time and restore statistics on the forecast.
    Stateless across calls except for the remembered statistics.
    """

    def __init__(self, eps: float = 1e-5):
        self.eps = eps
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def normalize(self, x: Tensor) -> Tensor:
        mean = x.data.mean(axis=1, keepdims=True)
        std = np.sqrt(x.data.var(axis=1, keepdims=True) + self.eps)
        self._mean, self._std = mean, std
        return (x - Tensor(mean)) / Tensor(std)

    def denormalize(self, y: Tensor) -> Tensor:
        if self._mean is None:
            raise RuntimeError("denormalize before normalize")
        return y * Tensor(self._std) + Tensor(self._mean)


def as_batched_tensor(history) -> Tensor:
    """Coerce ``(H, N)`` or ``(B, H, N)`` input into a batched tensor."""
    x = history if isinstance(history, Tensor) else Tensor(np.asarray(history, np.float32))
    if x.ndim == 2:
        x = x.reshape(1, *x.shape)
    return x
