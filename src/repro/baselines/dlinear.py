"""DLinear (Zeng et al., AAAI 2023) baseline.

Decomposition-linear: a moving-average split into trend and seasonal
components, each forecast by a single linear map shared across channels.
Not part of the paper's main tables but cited ([27]) and a useful sanity
anchor — any transformer that loses to DLinear is misconfigured.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Tensor
from .base import BaselineConfig, ForecastModel, as_batched_tensor

__all__ = ["DLinear"]


class DLinear(ForecastModel):
    """Moving-average decomposition + two linear heads."""

    def __init__(self, config: BaselineConfig, kernel_size: int = 25):
        super().__init__(config)
        self.kernel_size = min(kernel_size, config.history_length)
        self.trend_head = Linear(config.history_length, config.horizon)
        self.seasonal_head = Linear(config.history_length, config.horizon)

    def _moving_average(self, x: np.ndarray) -> np.ndarray:
        """Centered moving average over time with edge padding."""
        k = self.kernel_size
        pad_left = (k - 1) // 2
        pad_right = k - 1 - pad_left
        padded = np.concatenate(
            [np.repeat(x[:, :1], pad_left, axis=1), x,
             np.repeat(x[:, -1:], pad_right, axis=1)], axis=1)
        kernel = np.ones(k, dtype=np.float32) / k
        smoothed = np.apply_along_axis(
            lambda s: np.convolve(s, kernel, mode="valid"), 1, padded)
        return smoothed.astype(np.float32)

    def forward(self, history) -> Tensor:
        x = as_batched_tensor(history)
        trend_data = self._moving_average(x.data)
        trend = Tensor(trend_data)
        seasonal = x - trend
        trend_tokens = trend.swapaxes(1, 2)       # (B, N, H)
        seasonal_tokens = seasonal.swapaxes(1, 2)
        forecast = (self.trend_head(trend_tokens)
                    + self.seasonal_head(seasonal_tokens))
        return forecast.swapaxes(1, 2)
