"""UniTime (Liu et al., WWW 2024) baseline.

A language-empowered unified model: a learnable *domain instruction*
token sequence is prepended to the patch tokens and both are processed by
one Language-TS Transformer, aligning domain-specific characteristics via
the instruction — matching the paper's description ("incorporating pure
text instructions for cross-domain time series forecasting").
"""

from __future__ import annotations

import numpy as np

from ..nn import (
    Linear,
    Parameter,
    PositionalEncoding,
    Tensor,
    TransformerEncoder,
    concatenate,
    init,
    stack,
)
from .base import BaselineConfig, ForecastModel, InstanceNorm, as_batched_tensor

__all__ = ["UniTime"]


class UniTime(ForecastModel):
    """Instruction tokens + patch tokens → shared transformer → head."""

    def __init__(self, config: BaselineConfig, num_instruction_tokens: int = 4):
        super().__init__(config)
        self.norm = InstanceNorm()
        self.num_instruction_tokens = num_instruction_tokens
        self.instruction = Parameter(
            init.normal((num_instruction_tokens, config.d_model), std=0.02))

        self.patch_length = min(config.patch_length, config.history_length)
        self.patch_stride = max(1, config.patch_stride)
        self.num_patches = 1 + max(
            0, (config.history_length - self.patch_length) // self.patch_stride)
        total_tokens = num_instruction_tokens + self.num_patches
        self.patch_embedding = Linear(self.patch_length, config.d_model)
        self.positional = PositionalEncoding(total_tokens, config.d_model)
        self.encoder = TransformerEncoder(
            dim=config.d_model,
            num_heads=config.num_heads,
            num_layers=config.num_layers,
            ffn_dim=config.ffn_dim,
            dropout=config.dropout,
        )
        self.head = Linear(self.num_patches * config.d_model, config.horizon)

    def _patch(self, x: Tensor) -> Tensor:
        patches = []
        for p in range(self.num_patches):
            start = p * self.patch_stride
            patches.append(x[:, start:start + self.patch_length])
        return stack(patches, axis=1)

    def forward(self, history) -> Tensor:
        x = as_batched_tensor(history)
        batch, length, num_vars = x.shape
        normalized = self.norm.normalize(x)
        series = normalized.swapaxes(1, 2).reshape(batch * num_vars, length)
        tokens = self.patch_embedding(self._patch(series))

        ones = Tensor(np.ones((batch * num_vars, 1, 1), dtype=np.float32))
        instruction = ones * self.instruction.reshape(
            1, self.num_instruction_tokens, self.config.d_model)
        sequence = concatenate([instruction, tokens], axis=1)
        encoded = self.encoder(self.positional(sequence))

        patch_states = encoded[:, self.num_instruction_tokens:, :]
        flattened = patch_states.reshape(
            batch * num_vars, self.num_patches * self.config.d_model)
        forecast = self.head(flattened).reshape(
            batch, num_vars, self.config.horizon)
        return self.norm.denormalize(forecast.swapaxes(1, 2))
