"""TimeCMA (Liu et al., 2025) baseline.

The strongest existing method in the paper's tables: a dual-branch,
channel-dependent model.  The time-series branch uses inverted variate
embeddings; the prompt branch runs historical prompts through a *frozen*
LM and keeps the last-token embedding per variable; cross-modality
alignment (cross attention) fuses the branches before a transformer
encoder and linear head.

Note: unlike TimeKD, the LM runs in the *inference* path too — which is
exactly why TimeKD beats it on inference speed in Table IV.
"""

from __future__ import annotations

import numpy as np

from ..data.prompts import PromptFactory
from ..llm import TokenizedPrompt, Vocabulary
from ..llm.backbones import TransformerLM
from ..nn import Linear, MultiHeadAttention, Tensor, TransformerEncoder, no_grad
from .base import BaselineConfig, ForecastModel, InstanceNorm, as_batched_tensor

__all__ = ["TimeCMA"]


class TimeCMA(ForecastModel):
    """Inverted TS branch + frozen-LM prompt branch + cross alignment."""

    def __init__(self, config: BaselineConfig, backbone: TransformerLM,
                 vocab: Vocabulary | None = None,
                 frequency_minutes: int = 15, value_stride: int = 4):
        super().__init__(config)
        self.norm = InstanceNorm()
        self.backbone = backbone
        self.backbone.freeze()
        self.vocab = vocab or Vocabulary()
        self.prompt_factory = PromptFactory(
            vocab=self.vocab,
            frequency_minutes=frequency_minutes,
            value_stride=value_stride,
        )
        lm_dim = backbone.config.dim
        self.ts_embedding = Linear(config.history_length, config.d_model)
        self.prompt_projection = Linear(lm_dim, config.d_model)
        self.alignment = MultiHeadAttention(config.d_model, config.num_heads)
        self.encoder = TransformerEncoder(
            dim=config.d_model,
            num_heads=config.num_heads,
            num_layers=config.num_layers,
            ffn_dim=config.ffn_dim,
            dropout=config.dropout,
        )
        self.head = Linear(config.d_model, config.horizon)
        self._prompt_cache: dict[bytes, np.ndarray] = {}

    def _prompt_embeddings(self, history: np.ndarray) -> np.ndarray:
        """Frozen-LM last-token embeddings per variable, ``(B, N, D_lm)``.

        Cached by window contents: the LM is frozen, so repeated windows
        across epochs reuse their embeddings.
        """
        batch_embeddings = []
        for window in history:
            key = np.ascontiguousarray(np.round(window, 6)).tobytes()
            if key not in self._prompt_cache:
                prompt = self.prompt_factory.historical(
                    window, self.config.horizon)
                with no_grad():
                    hidden = self.backbone(prompt.token_ids)
                    last = hidden[:, -1, :]
                self._prompt_cache[key] = last.data
            batch_embeddings.append(self._prompt_cache[key])
        return np.stack(batch_embeddings)

    def forward(self, history) -> Tensor:
        x = as_batched_tensor(history)
        normalized = self.norm.normalize(x)
        ts_tokens = self.ts_embedding(normalized.swapaxes(1, 2))  # (B, N, D)

        prompt_raw = self._prompt_embeddings(np.asarray(x.data))
        prompt_tokens = self.prompt_projection(
            Tensor(prompt_raw.astype(np.float32)))

        aligned = ts_tokens + self.alignment(
            ts_tokens, prompt_tokens, prompt_tokens)
        encoded = self.encoder(aligned)
        forecast = self.head(encoded).swapaxes(1, 2)
        return self.norm.denormalize(forecast)
