"""Baseline factory: build any comparison model by paper name."""

from __future__ import annotations

from ..llm import Vocabulary, get_pretrained
from .base import BaselineConfig, ForecastModel
from .dlinear import DLinear
from .itransformer import ITransformer
from .ofa import OFA
from .patchtst import PatchTST
from .timecma import TimeCMA
from .timellm import TimeLLM
from .unitime import UniTime

__all__ = ["BASELINE_NAMES", "LLM_BASED", "build_baseline"]

#: Models appearing in the paper's comparison tables, plus DLinear.
BASELINE_NAMES = [
    "TimeCMA", "Time-LLM", "UniTime", "OFA", "iTransformer", "PatchTST",
    "DLinear",
]

#: Baselines that embed a language model (need a pretrained backbone).
LLM_BASED = {"TimeCMA", "Time-LLM", "OFA"}


def build_baseline(
    name: str,
    config: BaselineConfig,
    backbone=None,
    vocab: Vocabulary | None = None,
    llm_pretrain_steps: int = 120,
    frequency_minutes: int = 15,
) -> ForecastModel:
    """Instantiate a baseline by its paper name.

    LLM-based baselines receive a shared pretrained ``backbone`` (built
    on demand when omitted) so experiment sweeps amortize pretraining.
    """
    canonical = name.lower().replace("-", "").replace("_", "")
    if canonical in ("timecma", "timellm", "ofa") and backbone is None:
        vocab = vocab or Vocabulary()
        backbone = get_pretrained(config.llm_name, vocab=vocab,
                                  steps=llm_pretrain_steps)
    if canonical == "itransformer":
        return ITransformer(config)
    if canonical == "patchtst":
        return PatchTST(config)
    if canonical == "dlinear":
        return DLinear(config)
    if canonical == "ofa":
        return OFA(config, backbone)
    if canonical == "timellm":
        return TimeLLM(config, backbone)
    if canonical == "unitime":
        return UniTime(config)
    if canonical == "timecma":
        return TimeCMA(config, backbone, vocab=vocab,
                       frequency_minutes=frequency_minutes)
    raise KeyError(f"unknown baseline {name!r}; available: {BASELINE_NAMES}")
