"""Time-LLM (Jin et al., ICLR 2024) baseline.

Reprograms a frozen language model for forecasting: patch embeddings are
mapped into the LM's representation space by cross-attending over a small
set of *text prototypes* (learned linear combinations of the frozen LM's
token embeddings); the LM backbone itself stays intact, and a flatten
head reads the forecast off its output — matching the paper's summary
("reprograms the time series with text prototypes, backbone language
model remains intact").
"""

from __future__ import annotations

import numpy as np

from ..llm.backbones import TransformerLM
from ..nn import Linear, MultiHeadAttention, Tensor, stack
from .base import BaselineConfig, ForecastModel, InstanceNorm, as_batched_tensor

__all__ = ["TimeLLM"]


class TimeLLM(ForecastModel):
    """Patch → prototype reprogramming → frozen LM → flatten head."""

    def __init__(self, config: BaselineConfig, backbone: TransformerLM,
                 num_prototypes: int = 16):
        super().__init__(config)
        self.norm = InstanceNorm()
        self.backbone = backbone
        self.backbone.freeze()
        lm_dim = backbone.config.dim
        vocab_size = backbone.config.vocab_size

        self.patch_length = min(config.patch_length, config.history_length)
        self.patch_stride = max(1, config.patch_stride)
        self.num_patches = 1 + max(
            0, (config.history_length - self.patch_length) // self.patch_stride)
        self.patch_embedding = Linear(self.patch_length, lm_dim)
        # prototypes = learned mixture over the frozen token embeddings
        self.prototype_mixer = Linear(vocab_size, num_prototypes, bias=False)
        self.reprogramming = MultiHeadAttention(lm_dim, config.num_heads)
        self.head = Linear(self.num_patches * lm_dim, config.horizon)

    def _patch(self, x: Tensor) -> Tensor:
        patches = []
        for p in range(self.num_patches):
            start = p * self.patch_stride
            patches.append(x[:, start:start + self.patch_length])
        return stack(patches, axis=1)

    def _prototypes(self, batch: int) -> Tensor:
        """(B, K, D_lm) text prototypes from the frozen embedding table."""
        table = self.backbone.token_embedding.weight.detach()  # (V, D)
        prototypes = self.prototype_mixer(table.T).T  # (K, D)
        expanded = prototypes.reshape(1, *prototypes.shape)
        tiled = Tensor(np.ones((batch, 1, 1), dtype=np.float32)) * expanded
        return tiled

    def forward(self, history) -> Tensor:
        x = as_batched_tensor(history)
        batch, length, num_vars = x.shape
        normalized = self.norm.normalize(x)
        series = normalized.swapaxes(1, 2).reshape(batch * num_vars, length)
        patches = self.patch_embedding(self._patch(series))

        prototypes = self._prototypes(batch * num_vars)
        reprogrammed = self.reprogramming(patches, prototypes, prototypes)

        bias = self.backbone._attention_bias(self.num_patches, None)
        hidden = reprogrammed
        for block in self.backbone.blocks:
            hidden = block(hidden, attn_bias=bias)
        hidden = self.backbone.final_norm(hidden)

        flattened = hidden.reshape(
            batch * num_vars, self.num_patches * self.backbone.config.dim)
        forecast = self.head(flattened).reshape(
            batch, num_vars, self.config.horizon)
        return self.norm.denormalize(forecast.swapaxes(1, 2))
