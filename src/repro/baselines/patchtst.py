"""PatchTST (Nie et al., ICLR 2023) baseline.

Channel-independent patching: every variable is treated as a separate
univariate series, sliced into overlapping patches that become the
transformer's tokens; a flattening head maps encoded patches to the
horizon.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, PositionalEncoding, Tensor, TransformerEncoder, stack
from .base import BaselineConfig, ForecastModel, InstanceNorm, as_batched_tensor

__all__ = ["PatchTST"]


class PatchTST(ForecastModel):
    """Instance norm → per-channel patches → encoder → flatten head."""

    def __init__(self, config: BaselineConfig):
        super().__init__(config)
        self.norm = InstanceNorm()
        self.patch_length = min(config.patch_length, config.history_length)
        self.patch_stride = max(1, config.patch_stride)
        self.num_patches = 1 + max(
            0, (config.history_length - self.patch_length) // self.patch_stride)
        self.patch_embedding = Linear(self.patch_length, config.d_model)
        self.positional = PositionalEncoding(self.num_patches, config.d_model)
        self.encoder = TransformerEncoder(
            dim=config.d_model,
            num_heads=config.num_heads,
            num_layers=config.num_layers,
            ffn_dim=config.ffn_dim,
            dropout=config.dropout,
        )
        self.head = Linear(self.num_patches * config.d_model, config.horizon)

    def _patch(self, x: Tensor) -> Tensor:
        """Slice ``(B*N, H)`` series into ``(B*N, P, patch_len)``."""
        patches = []
        for p in range(self.num_patches):
            start = p * self.patch_stride
            patches.append(x[:, start:start + self.patch_length])
        return stack(patches, axis=1)

    def forward(self, history) -> Tensor:
        x = as_batched_tensor(history)
        batch, length, num_vars = x.shape
        normalized = self.norm.normalize(x)
        # channel independence: fold variables into the batch axis
        series = normalized.swapaxes(1, 2).reshape(batch * num_vars, length)
        tokens = self.patch_embedding(self._patch(series))
        tokens = self.positional(tokens)
        encoded = self.encoder(tokens)
        flattened = encoded.reshape(batch * num_vars,
                                    self.num_patches * self.config.d_model)
        forecast = self.head(flattened).reshape(batch, num_vars,
                                                self.config.horizon)
        return self.norm.denormalize(forecast.swapaxes(1, 2))
