"""``repro.baselines`` — the paper's comparison models.

Small, faithful reimplementations on the ``repro.nn`` substrate, keeping
each architecture's signature: inverted embedding (iTransformer,
TimeCMA), channel-independent patching (PatchTST, OFA, Time-LLM,
UniTime), frozen-LM feature extraction (OFA, Time-LLM, TimeCMA), and
decomposition-linear (DLinear).
"""

from .base import BaselineConfig, ForecastModel, InstanceNorm
from .dlinear import DLinear
from .itransformer import ITransformer
from .ofa import OFA
from .patchtst import PatchTST
from .registry import BASELINE_NAMES, LLM_BASED, build_baseline
from .timecma import TimeCMA
from .timellm import TimeLLM
from .unitime import UniTime

__all__ = [
    "BaselineConfig",
    "ForecastModel",
    "InstanceNorm",
    "ITransformer",
    "PatchTST",
    "DLinear",
    "OFA",
    "TimeLLM",
    "UniTime",
    "TimeCMA",
    "BASELINE_NAMES",
    "LLM_BASED",
    "build_baseline",
]
