"""iTransformer (Liu et al., ICLR 2024) baseline.

Inverted embedding: each variable's whole history becomes one token, the
encoder attends across variables, and a linear head maps tokens back to
the horizon.  This is the small classic model the paper benchmarks
TimeKD's efficiency against (Table IV).
"""

from __future__ import annotations

from ..nn import Linear, Tensor, TransformerEncoder
from .base import BaselineConfig, ForecastModel, InstanceNorm, as_batched_tensor

__all__ = ["ITransformer"]


class ITransformer(ForecastModel):
    """Instance norm → inverted embedding → encoder → linear head."""

    def __init__(self, config: BaselineConfig):
        super().__init__(config)
        self.norm = InstanceNorm()
        self.embedding = Linear(config.history_length, config.d_model)
        self.encoder = TransformerEncoder(
            dim=config.d_model,
            num_heads=config.num_heads,
            num_layers=config.num_layers,
            ffn_dim=config.ffn_dim,
            dropout=config.dropout,
        )
        self.head = Linear(config.d_model, config.horizon)

    def forward(self, history) -> Tensor:
        x = as_batched_tensor(history)
        normalized = self.norm.normalize(x)
        tokens = self.embedding(normalized.swapaxes(1, 2))  # (B, N, D)
        encoded = self.encoder(tokens)
        projected = self.head(encoded).swapaxes(1, 2)  # (B, M, N)
        return self.norm.denormalize(projected)
