"""Command-line interface for training and forecasting with TimeKD.

Usage::

    python -m repro.cli train --dataset ETTm1 --horizon 24 \
        --out artifacts/models/ettm1_h24.npz
    python -m repro.cli evaluate --dataset ETTm1 --horizon 24 \
        --weights artifacts/models/ettm1_h24.npz
    python -m repro.cli compare --dataset Exchange --horizon 24 \
        --models TimeKD iTransformer PatchTST
"""

from __future__ import annotations

import argparse
import sys

from .core import TimeKDConfig, TimeKDForecaster
from .data import dataset_names, load_dataset, make_forecasting_data
from .eval import format_table
from .experiments.common import (
    ExperimentScale,
    cache_disabled,
    prepare_data,
    run_model,
    strip_private,
)

__all__ = ["main"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", required=True, choices=dataset_names())
    parser.add_argument("--horizon", type=int, default=24)
    parser.add_argument("--history", type=int, default=96)
    parser.add_argument("--length", type=int, default=None,
                        help="series length override (default per dataset)")
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--d-model", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--embedding-cache", default=None, metavar="DIR",
                        help="directory for the fingerprinted CLM embedding "
                             "store; repeated runs over the same dataset and "
                             "config skip CLM re-encoding ('off' disables "
                             "persistence)")
    parser.add_argument("--no-precompute", action="store_true",
                        help="keep the lazy per-batch embedding fill instead "
                             "of encoding the whole train split up front")


def _scale(args) -> ExperimentScale:
    return ExperimentScale(
        history_length=args.history, d_model=args.d_model,
        epochs=args.epochs, seed=args.seed)


def _data(args):
    series = load_dataset(args.dataset, length=args.length)
    return make_forecasting_data(series, history_length=args.history,
                                 horizon=args.horizon)


def _embedding_options(args) -> dict:
    """TimeKDConfig overrides from the embedding-pipeline flags.

    Only explicitly set flags are forwarded, so defaults (like the
    experiment grid's shared cache directory) survive.
    """
    options: dict = {}
    if args.embedding_cache is not None:
        # Same convention as REPRO_EMBED_CACHE: 'off'/'none'/'0'/''
        # disable persistence explicitly (compare defaults it on).
        options["embedding_cache_dir"] = (
            None if cache_disabled(args.embedding_cache)
            else args.embedding_cache)
    if args.no_precompute:
        options["precompute_embeddings"] = False
    return options


def _cmd_train(args) -> int:
    data = _data(args)
    config = TimeKDConfig(
        history_length=args.history, horizon=args.horizon,
        d_model=args.d_model, student_epochs=args.epochs, seed=args.seed,
        frequency_minutes=data.frequency_minutes,
        num_variables=data.num_variables,
        **_embedding_options(args))
    model = TimeKDForecaster(config).fit(data)
    metrics = model.evaluate(data.test)
    print(f"test MSE={metrics['mse']:.4f} MAE={metrics['mae']:.4f}")
    if args.out:
        model.save(args.out)
        print(f"student saved to {args.out}")
    return 0


def _cmd_evaluate(args) -> int:
    data = _data(args)
    config = TimeKDConfig(
        history_length=args.history, horizon=args.horizon,
        d_model=args.d_model, seed=args.seed,
        frequency_minutes=data.frequency_minutes,
        num_variables=data.num_variables)
    model = TimeKDForecaster(config)
    model.load(args.weights, data)
    metrics = model.evaluate(data.test)
    print(f"test MSE={metrics['mse']:.4f} MAE={metrics['mae']:.4f}")
    return 0


def _cmd_compare(args) -> int:
    scale = _scale(args)
    data = prepare_data(args.dataset, args.horizon, scale,
                        length=args.length)
    rows = []
    for name in args.models:
        row = strip_private(run_model(name, data, scale,
                                      **_embedding_options(args)))
        rows.append(row)
    print(format_table(
        rows, title=f"{args.dataset}, horizon {args.horizon}"))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    train = commands.add_parser("train", help="train TimeKD on a dataset")
    _add_common(train)
    train.add_argument("--out", default=None, help="save student weights")
    train.set_defaults(func=_cmd_train)

    evaluate = commands.add_parser("evaluate",
                                   help="evaluate saved student weights")
    _add_common(evaluate)
    evaluate.add_argument("--weights", required=True)
    evaluate.set_defaults(func=_cmd_evaluate)

    compare = commands.add_parser("compare",
                                  help="compare models on one dataset")
    _add_common(compare)
    compare.add_argument("--models", nargs="+",
                         default=["TimeKD", "iTransformer"])
    compare.set_defaults(func=_cmd_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
