"""Command-line interface for training, serving and forecasting TimeKD.

Usage::

    python -m repro.cli train --dataset ETTm1 --horizon 24 \
        --out artifacts/models/ettm1_h24.npz
    python -m repro.cli evaluate --dataset ETTm1 \
        --artifact artifacts/models/ettm1_h24.npz
    python -m repro.cli predict --artifact artifacts/models/ettm1_h24.npz \
        --dataset ETTm1 --raw
    python -m repro.cli serve --artifacts artifacts/models \
        --dataset ETTm1 --horizon 24 --requests 64
    python -m repro.cli stream --artifacts artifacts/models \
        --dataset ETTm1 --horizon 24 --ticks 200 --verify
    python -m repro.cli gateway --artifacts artifacts/models \
        --keys keys.json --port 8080
    python -m repro.cli compare --dataset Exchange --horizon 24 \
        --models TimeKD iTransformer
    python -m repro.cli lint --strict --format json

``train --out`` writes a self-contained student artifact bundle
(weights + config + scaler + provenance); ``evaluate``/``predict``/
``serve``/``stream`` restore students from bundles without ever
constructing a trainer or pretraining a CLM.  Those four subcommands
take ``--engine {module,compiled}`` selecting the inference engine:
``compiled`` (the default) runs the tape-free :mod:`repro.infer`
forward, bitwise identical to the autograd module path and several
times faster per window.  ``--precision {float32,mixed,int8}`` selects
the compiled engine's numeric mode (reduced modes are gated by a
compile-time error budget; see ``repro.infer.ErrorBudget``), and
``serve``/``stream`` take ``--serve-threads`` to drain batches for
different models concurrently.

``stream`` can persist its online state: ``--snapshot-dir`` keeps
versioned snapshots plus a per-tick WAL (``--snapshot-every N``
checkpoints periodically, graceful shutdown and completion write a
final one), and ``--resume`` recovers from them — forecasts after a
kill/resume are bitwise identical to an uninterrupted run.

``serve`` and ``stream`` scale out horizontally with ``--workers N``:
N shared-nothing shard workers (each with its own model registry,
micro-batch queue and drain thread) behind a deterministic
consistent-hash router (``--shard-vnodes`` tunes ring balance).
Sharding never changes a forecast — an N-worker replay is bitwise
identical to the single-process run, so ``--verify`` holds at any
worker count — and with ``--snapshot-dir`` each shard keeps its own
``snapshot-{shard}-{seq}.npz``/WAL chain; ``--resume`` under a
different ``--workers`` reshards the recovered state through the ring.

``gateway`` fronts the same serving stack with a multi-tenant HTTP
server (see :mod:`repro.gateway`): API keys from a hot-reloadable
``--keys`` file, per-tenant unit metering and token-bucket rate
limits, and queue-depth admission control.  SIGINT/SIGTERM drain
gracefully — in-flight requests finish, per-tenant usage counters are
persisted to ``--snapshot-dir`` (restored on the next start), and
``--stats-out`` is written even on abnormal exit.

``lint`` runs the repo's static invariant checks (:mod:`repro.analyze`)
over the given paths (default: the installed ``repro`` package): lock
discipline, atomic writes, dtype hygiene, fail-closed recovery,
monotonic clocks and thread lifecycles.  Exit code 0 means clean, 1
means findings (warnings fail only under ``--strict``), 2 means a usage
error; ``--format json`` and ``--output`` feed CI.
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys
import time

import numpy as np

from .core import TimeKDConfig, TimeKDForecaster
from .data import dataset_names, load_dataset, make_forecasting_data
from .eval import format_table
from .experiments.common import (
    ExperimentScale,
    cache_disabled,
    prepare_data,
    run_model,
    strip_private,
)
from .persist import atomic_save_array

__all__ = ["main"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", required=True, choices=dataset_names())
    parser.add_argument("--horizon", type=int, default=24)
    parser.add_argument("--history", type=int, default=96)
    parser.add_argument("--length", type=int, default=None,
                        help="series length override (default per dataset)")
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--d-model", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--embedding-cache", default=None, metavar="DIR",
                        help="directory for the fingerprinted CLM embedding "
                             "store; repeated runs over the same dataset and "
                             "config skip CLM re-encoding ('off' disables "
                             "persistence)")
    parser.add_argument("--no-precompute", action="store_true",
                        help="keep the lazy per-batch embedding fill instead "
                             "of encoding the whole train split up front")


def _engine_type(value: str) -> str:
    """argparse type hook: fail fast with the canonical engine message."""
    from .infer import resolve_engine

    try:
        return resolve_engine(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def _precision_type(value: str) -> str:
    """argparse type hook: fail fast with the canonical precision message."""
    from .infer import resolve_precision

    try:
        return resolve_precision(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def _add_engine(parser: argparse.ArgumentParser) -> None:
    from .infer import ENGINES, PRECISIONS

    parser.add_argument("--engine", default="compiled", type=_engine_type,
                        metavar="{" + ",".join(ENGINES) + "}",
                        help="inference engine: the tape-free compiled "
                             "numpy forward (default) or the autograd "
                             "module path; both are bitwise identical at "
                             "float32 precision")
    parser.add_argument("--precision", default="float32",
                        type=_precision_type,
                        metavar="{" + ",".join(PRECISIONS) + "}",
                        help="compiled-engine numeric mode: float32 "
                             "(bitwise parity, default), mixed (float64 "
                             "accumulation for reductions) or int8 "
                             "(per-channel quantized projections); "
                             "reduced modes require --engine compiled and "
                             "are rejected at compile time if the probe "
                             "error exceeds the error budget")


def _positive_int(flag: str):
    """argparse type hook factory: fail fast on non-positive counts."""
    def parse(value: str) -> int:
        try:
            parsed = int(value)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{flag} expects an integer, got {value!r}")
        if parsed < 1:
            raise argparse.ArgumentTypeError(
                f"{flag} must be >= 1, got {parsed}")
        return parsed
    return parse


def _nonneg_int(flag: str):
    """argparse type hook factory: fail fast on negative counts."""
    def parse(value: str) -> int:
        try:
            parsed = int(value)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{flag} expects an integer, got {value!r}")
        if parsed < 0:
            raise argparse.ArgumentTypeError(
                f"{flag} must be >= 0, got {parsed}")
        return parsed
    return parse


def _positive_float(flag: str):
    """argparse type hook factory: fail fast on non-positive values."""
    def parse(value: str) -> float:
        try:
            parsed = float(value)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{flag} expects a number, got {value!r}")
        if parsed <= 0:
            raise argparse.ArgumentTypeError(
                f"{flag} must be > 0, got {parsed}")
        return parsed
    return parse


def _add_shard(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", default=None, metavar="N",
                        type=_positive_int("--workers"),
                        help="run the sharded runtime: N shared-nothing "
                             "workers (each with its own model registry, "
                             "micro-batch queue and drain thread) behind a "
                             "consistent-hash router; forecasts are bitwise "
                             "identical at any worker count (default: the "
                             "single-process path)")
    parser.add_argument("--shard-vnodes", default=None, metavar="V",
                        type=_positive_int("--shard-vnodes"),
                        help="virtual nodes per shard on the hash ring "
                             "(balance knob, default 64; requires "
                             "--workers > 1)")


def _check_engine_flags(parser: argparse.ArgumentParser, args) -> None:
    """Cross-flag validation that argparse types cannot see."""
    if getattr(args, "precision", "float32") != "float32":
        if getattr(args, "engine", "compiled") != "compiled":
            parser.error(
                f"--precision {args.precision} requires --engine compiled "
                f"(the module path is float32-only)")
        if getattr(args, "verify", False):
            parser.error(
                f"--verify asserts bitwise parity with offline predict, "
                f"which only holds at --precision float32 "
                f"(got {args.precision})")


def _check_stream_flags(parser: argparse.ArgumentParser, args) -> None:
    """Durability flags all hang off --snapshot-dir."""
    if getattr(args, "snapshot_dir", None):
        return
    for flag, name in ((getattr(args, "snapshot_every", 0),
                        "--snapshot-every"),
                       (getattr(args, "resume", False), "--resume"),
                       (getattr(args, "no_wal", False), "--no-wal")):
        if flag:
            parser.error(f"{name} requires --snapshot-dir")


def _check_shard_flags(parser: argparse.ArgumentParser, args) -> None:
    """Ring-shape flags only mean something with multiple shards."""
    if getattr(args, "shard_vnodes", None) is not None:
        workers = getattr(args, "workers", None)
        if workers is None or workers < 2:
            parser.error(
                "--shard-vnodes requires --workers > 1 (the ring shape "
                "only matters when keys split across shards)")


def _make_service(args):
    """The serving backend ``--workers`` selects.

    Default (no ``--workers``): the single-process
    :class:`ForecastService` — the legacy path, byte-for-byte.  With
    ``--workers N``: a :class:`repro.shard.ShardRouter` over N
    shared-nothing workers (``--workers 1`` exercises the routed path
    with a degenerate one-shard ring).
    """
    from .serve import ForecastService

    kwargs = dict(max_models=args.max_models, max_batch=args.max_batch,
                  engine=args.engine, precision=args.precision,
                  serve_threads=args.serve_threads)
    if args.workers is None:
        return ForecastService(args.artifacts, **kwargs)
    from .shard import DEFAULT_VNODES, ShardRouter

    return ShardRouter(args.artifacts, workers=args.workers,
                       vnodes=args.shard_vnodes or DEFAULT_VNODES,
                       **kwargs)


def _scale(args) -> ExperimentScale:
    return ExperimentScale(
        history_length=args.history, d_model=args.d_model,
        epochs=args.epochs, seed=args.seed)


def _data(args, history_length: int | None = None,
          horizon: int | None = None):
    series = load_dataset(args.dataset, length=args.length)
    return make_forecasting_data(
        series,
        history_length=history_length or args.history,
        horizon=horizon or args.horizon)


def _embedding_options(args) -> dict:
    """TimeKDConfig overrides from the embedding-pipeline flags.

    Only explicitly set flags are forwarded, so defaults (like the
    experiment grid's shared cache directory) survive.
    """
    options: dict = {}
    if args.embedding_cache is not None:
        # Same convention as REPRO_EMBED_CACHE: 'off'/'none'/'0'/''
        # disable persistence explicitly (compare defaults it on).
        options["embedding_cache_dir"] = (
            None if cache_disabled(args.embedding_cache)
            else args.embedding_cache)
    if args.no_precompute:
        options["precompute_embeddings"] = False
    return options


def _cmd_train(args) -> int:
    data = _data(args)
    config = TimeKDConfig(
        history_length=args.history, horizon=args.horizon,
        d_model=args.d_model, student_epochs=args.epochs, seed=args.seed,
        frequency_minutes=data.frequency_minutes,
        num_variables=data.num_variables,
        **_embedding_options(args))
    model = TimeKDForecaster(config).fit(data)
    metrics = model.evaluate(data.test)
    print(f"test MSE={metrics['mse']:.4f} MAE={metrics['mae']:.4f}")
    if args.out:
        model.save(args.out, metadata={
            "test_mse": metrics["mse"], "test_mae": metrics["mae"]})
        print(f"student artifact saved to {args.out}")
    return 0


def _cmd_evaluate(args) -> int:
    # Shapes come from the bundle's own config — the artifact is the
    # source of truth, so there are no --horizon/--history flags to
    # half-honor.
    model = TimeKDForecaster.from_artifact(args.artifact)
    config = model.config
    data = _data(args, history_length=config.history_length,
                 horizon=config.horizon)
    metrics = model.evaluate(data.test, engine=args.engine,
                             precision=args.precision)
    print(f"test MSE={metrics['mse']:.4f} MAE={metrics['mae']:.4f}")
    return 0


def _cmd_predict(args) -> int:
    from .serve import read_artifact_info

    config, metadata = read_artifact_info(args.artifact)
    if args.input:
        windows = np.load(args.input)
    else:
        data = _data(args, history_length=config.history_length,
                     horizon=config.horizon)
        windows, _ = data.test[-1]
        if args.raw:
            windows = data.scaler.inverse_transform(windows)
    if args.serve:
        # Serve-mode prediction: route the windows through a
        # ForecastService built over the artifact's directory (the
        # service loads the bundle itself; no second student here).
        import os

        from .serve import ForecastService

        with ForecastService(os.path.dirname(os.path.abspath(
                args.artifact)), engine=args.engine,
                precision=args.precision) as service:
            batch = windows[None] if windows.ndim == 2 else windows
            dataset = metadata.get("dataset") or None
            futures = [service.submit(window, dataset=dataset,
                                      horizon=config.horizon,
                                      raw_values=args.raw)
                       for window in batch]
            forecast = np.stack([f.result() for f in futures])
            if windows.ndim == 2:
                forecast = forecast[0]
    else:
        model = TimeKDForecaster.from_artifact(args.artifact)
        forecast = model.predict(windows, raw_values=args.raw,
                                 engine=args.engine,
                                 precision=args.precision)
    print(f"forecast shape: {np.asarray(forecast).shape} "
          f"(horizon {config.horizon}, "
          f"{config.num_variables} variables)")
    if args.out:
        atomic_save_array(args.out, np.asarray(forecast))
        print(f"forecast saved to {args.out}")
    return 0


@contextlib.contextmanager
def _graceful_shutdown(service, drain_actions: list | None = None):
    """Drain the micro-batch queue on SIGINT/SIGTERM before exiting.

    The signal handler only raises: the interrupted frame may be inside
    the service holding its (non-reentrant) lock, so touching the
    service from signal context could self-deadlock.  The exception
    unwinds the main thread (releasing any held locks), then the drain
    runs below, outside signal context: the worker is resumed so queued
    requests flush, and ``close()`` completes every in-flight future
    before the worker exits — no client is ever left holding a
    forever-pending future.

    ``drain_actions`` is a caller-owned list of zero-arg callables run
    *after* the drain (every future resolved) — the stream command
    appends its snapshotter's ``checkpoint`` so a graceful shutdown
    persists a final snapshot.  Actions registered by the body run even
    though the list was empty on entry.
    """
    def handler(signum, frame):
        raise SystemExit(128 + signum)

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, handler)
        except (ValueError, OSError):  # non-main thread / unsupported
            pass
    try:
        yield
    except BaseException:
        service.resume()
        service.close()
        for action in (drain_actions or []):
            try:
                action()
            except Exception as error:  # noqa: BLE001 — don't mask exit
                print(f"shutdown action failed: {error}", file=sys.stderr)
        raise
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)


def _make_stats_writer(path: str, collect, drain_actions: list):
    """Stats-dump plumbing shared by serve/stream/gateway.

    Returns a writer callable and registers an ``{"aborted": true}``
    variant on ``drain_actions``, so ``--stats-out`` lands on disk even
    when the command dies to a signal or an exception mid-run — a
    monitoring pipeline must never lose the run's counters to the very
    incident it exists to explain.  ``collect()`` is called at write
    time (after the drain), so the dump reflects final counters.
    """
    from .durable import atomic_write_json

    def write(extra: dict | None = None) -> None:
        payload = collect()
        if extra:
            payload.update(extra)
        # Atomic (tmp + os.replace): a crash mid-dump must not leave a
        # truncated JSON for a dashboard to choke on.
        atomic_write_json(path, payload)
        print(f"stats written to {path}")

    drain_actions.append(lambda: write({"aborted": True}))
    return write


def _cmd_serve(args) -> int:
    from .serve import read_artifact_info

    drain_actions: list = []
    with _make_service(args) as service, \
            _graceful_shutdown(service, drain_actions):
        write_stats = None
        if args.stats_out:
            def _collect() -> dict:
                payload = service.snapshot().as_dict()
                payload["engine"] = service.engine
                payload["precision"] = service.precision
                return payload
            write_stats = _make_stats_writer(
                args.stats_out, _collect, drain_actions)
        keys = service.keys()
        sharded = (f", {args.workers} shard worker(s)"
                   if args.workers is not None else "")
        print(f"serving {len(keys)} artifact(s) from {args.artifacts} "
              f"[{service.engine} engine, {service.precision}, "
              f"{service.serve_threads} drain thread(s){sharded}]: "
              f"{sorted(keys)}")
        key = service.resolve_key(args.dataset, args.horizon)
        if args.input:
            windows = np.load(args.input)
            if windows.ndim == 2:
                windows = windows[None]
        else:
            config, _ = read_artifact_info(service.path_for(key))
            series = load_dataset(key[0], length=args.length)
            data = make_forecasting_data(
                series, history_length=config.history_length,
                horizon=config.horizon)
            count = min(args.requests, len(data.test))
            windows = np.stack(
                [data.test[i][0] for i in range(count)])
            if args.raw:
                windows = data.scaler.inverse_transform(windows)
        start = time.perf_counter()
        futures = [service.submit(window, dataset=key[0],
                                  horizon=key[1], raw_values=args.raw)
                   for window in windows]
        forecasts = np.stack([f.result() for f in futures])
        elapsed = time.perf_counter() - start
        stats = service.snapshot().as_dict()
    print(f"{len(windows)} requests in {elapsed:.3f}s "
          f"({len(windows) / max(elapsed, 1e-9):.1f} req/s), "
          f"{stats['batches']} batches, "
          f"max coalesced {stats['max_coalesced']}")
    if stats["plan_rebuilds"]:
        print(f"plan cache: {stats['plan_hits']} hits, "
              f"{stats['plan_misses']} misses, "
              f"{stats['plan_evictions']} evictions, "
              f"{stats['plan_rebuilds']} rebuild(s)")
    if args.out:
        atomic_save_array(args.out, forecasts)
        print(f"forecasts saved to {args.out}")
    if write_stats is not None:
        drain_actions.clear()  # the normal-path write supersedes it
        write_stats({
            "requests": len(windows),
            "elapsed_s": elapsed,
            "requests_per_second": len(windows) / max(elapsed, 1e-9),
        })
    return 0


def _cmd_stream(args) -> int:
    from .stream import StreamingForecaster, replay, verify_parity

    drain_actions: list = []
    with _make_service(args) as service, \
            _graceful_shutdown(service, drain_actions):
        key = service.resolve_key(args.dataset, args.horizon)
        config = service.config_for(key)
        series = load_dataset(key[0], length=args.length)
        data = make_forecasting_data(
            series, history_length=config.history_length,
            horizon=config.horizon)
        segment = data.test.values
        if args.raw:
            segment = data.scaler.inverse_transform(segment)

        stream_options = dict(
            cadence=args.cadence, policy=args.policy,
            interval=float(data.frequency_minutes), raw_values=args.raw)
        if args.workers is not None:
            from .shard import ShardedStreamingForecaster

            forecaster = ShardedStreamingForecaster(
                service, dataset=key[0], horizon=key[1], **stream_options)
            print(f"sharded streaming: {args.workers} worker(s), "
                  f"{service.ring.vnodes} vnodes/shard")
        else:
            forecaster = StreamingForecaster(
                service, dataset=key[0], horizon=key[1], **stream_options)

        write_stats = None
        if args.stats_out:
            def _collect() -> dict:
                snap = forecaster.snapshot()
                return {"stream": snap["stream"],
                        "service": snap["service"]}
            write_stats = _make_stats_writer(
                args.stats_out, _collect, drain_actions)

        if args.resume:
            from .durable import RecoveryError

            if args.workers is not None:
                from .durable import ShardedRecoverer
                recoverer = ShardedRecoverer()
            else:
                from .durable import StatefulRecoverer
                recoverer = StatefulRecoverer()
            try:
                # Torn trailing WAL record = an un-fsynced crash's
                # signature; --resume trims it (that tick was never
                # durable) instead of refusing to start.
                recovered = forecaster.restore_from(
                    args.snapshot_dir, strict_wal=False,
                    recoverer=recoverer)
            except RecoveryError as error:
                print(f"recovery failed at stage "
                      f"{recoverer.state().stage.value!r}: {error}",
                      file=sys.stderr)
                return 1
            detail = recovered.detail
            if args.workers is not None:
                origin = (f"{detail['source_shards']} shard chain(s)"
                          + (" [resharded]" if detail["resharded"] else ""))
            else:
                origin = detail.get("snapshot_path") or "WAL bootstrap"
            print(f"recovered {detail['keys']} series at seq "
                  f"{detail['final_seq']} from {origin} "
                  f"(+{detail['replayed']} WAL tick(s) replayed)")

        snapshotter = None
        if args.snapshot_dir:
            if args.workers is not None:
                from .durable import ShardedSnapshotter

                snapshotter = ShardedSnapshotter(
                    forecaster, args.snapshot_dir,
                    every=args.snapshot_every, wal=not args.no_wal)
                if args.resume and recovered.detail.get("resharded"):
                    # Re-anchor the directory on the new ring: write
                    # every target shard's chain first (until then the
                    # old chains are the only durable copy), then drop
                    # the superseded labels a later --resume would
                    # otherwise merge back in as stale state.
                    snapshotter.checkpoint()
                    pruned = snapshotter.prune_foreign()
                    if pruned:
                        print(f"pruned {len(pruned)} superseded chain "
                              f"file(s) from the previous shard layout")
            else:
                from .durable import StreamSnapshotter

                snapshotter = StreamSnapshotter(
                    forecaster, args.snapshot_dir,
                    every=args.snapshot_every, wal=not args.no_wal)
            drain_actions.append(snapshotter.checkpoint)

        reports = []
        for index in range(args.series):
            series_key = ("replay", f"{key[0]}#{index}")
            try:
                first_tick = forecaster.state(series_key).count
            except KeyError:
                first_tick = 0
            max_ticks = (None if args.ticks is None
                         else max(args.ticks - first_tick, 0))
            reports.append(replay(
                forecaster, segment, key=series_key,
                max_ticks=max_ticks, first_tick=first_tick))
        report = reports[-1]
        # Snapshot before --verify: parity re-predicts each window
        # sequentially and would contaminate the coalescing counters.
        snapshot = forecaster.snapshot()
        stream, serve = snapshot["stream"], snapshot["service"]

        if snapshotter is not None:
            final_path = snapshotter.checkpoint()
            snapshotter.close()
            drain_actions.clear()
            if isinstance(final_path, list):  # one snapshot per shard
                print(f"final snapshots written: "
                      f"{', '.join(final_path)}")
            else:
                print(f"final snapshot written to {final_path}")

        compared = None
        if args.verify:
            compared = sum(verify_parity(r, forecaster, segment)
                           for r in reports)
        total_ticks = sum(r.ticks for r in reports)
        total_s = sum(r.duration_s for r in reports)
        print(f"replayed {total_ticks} ticks across {args.series} "
              f"series in {total_s:.3f}s "
              f"({total_ticks / max(total_s, 1e-9):.1f} ticks/s), "
              f"{stream['forecasts']} forecasts, "
              f"{stream['gaps']} gaps ({stream['filled']} rows filled), "
              f"{stream['alarmed']} drift alarm(s)")
        print(f"service: {serve['batches']} batches, "
              f"mean batch {serve['mean_batch']:.2f}, "
              f"max coalesced {serve['max_coalesced']}")
        if compared is not None:
            print(f"parity: {compared} streamed forecast(s) bitwise "
                  f"identical to offline predict")
        if write_stats is not None:
            payload = report.as_dict()
            # The pre-verify snapshot: --verify re-predicts every
            # window and would contaminate the coalescing counters the
            # writer would otherwise re-collect.
            payload["stream"], payload["service"] = stream, serve
            payload["total_ticks"] = total_ticks
            payload["ticks_per_second"] = total_ticks / max(total_s, 1e-9)
            if compared is not None:
                payload["parity_checked"] = compared
            write_stats(payload)
    return 0


def _cmd_gateway(args) -> int:
    import os

    from .gateway import ApiKeyRegistry, Gateway, GatewayServer, KeyFileError

    try:
        registry = ApiKeyRegistry(
            args.keys, default_units=args.quota,
            default_rate=args.rate, default_burst=args.burst)
    except KeyFileError as error:
        print(str(error), file=sys.stderr)
        return 1

    drain_actions: list = []
    with _make_service(args) as service, \
            _graceful_shutdown(service, drain_actions):
        gateway = Gateway(
            service, registry, cadence=args.cadence, policy=args.policy,
            interval=args.interval, max_gap=args.max_gap,
            raw_values=args.raw, max_pending=args.max_pending,
            retry_after=args.retry_after)

        if args.snapshot_dir:
            os.makedirs(args.snapshot_dir, exist_ok=True)
            usage_path = os.path.join(args.snapshot_dir, "usage.json")
            if gateway.load_usage(usage_path):
                tenants = gateway.meter.usage()
                spent = sum(t["spent"] for t in tenants.values())
                print(f"restored usage for {len(tenants)} tenant(s) "
                      f"({spent} unit(s) spent) from {usage_path}")
            # Runs after the service drain: every committed request has
            # settled its reservation by then, so the persisted counters
            # are exact (reserved is transient and never persisted).
            drain_actions.append(lambda: gateway.save_usage(usage_path))

        if args.stats_out:
            _make_stats_writer(
                args.stats_out, gateway.snapshot, drain_actions)

        server = GatewayServer(gateway, host=args.host, port=args.port)
        keys = service.keys()
        sharded = (f", {args.workers} shard worker(s)"
                   if args.workers is not None else "")
        print(f"gateway listening on {server.url} — {len(keys)} "
              f"artifact(s) from {args.artifacts}, "
              f"{len(registry.keys())} API key(s), quota {args.quota} "
              f"unit(s), admission bound {args.max_pending} "
              f"[{service.engine} engine, {service.precision}{sharded}]",
              flush=True)
        try:
            # Runs until SIGINT/SIGTERM raises SystemExit out of the
            # accept loop.  The drain then unwinds inside-out: stop
            # accepting and join in-flight HTTP handlers (server.close,
            # while the service still resolves their futures), then
            # _graceful_shutdown closes the service, then the drain
            # actions persist usage and stats.
            server.serve_forever()
        finally:
            server.close()
    return 0


def _cmd_compare(args) -> int:
    scale = _scale(args)
    data = prepare_data(args.dataset, args.horizon, scale,
                        length=args.length)
    rows = []
    for name in args.models:
        row = strip_private(run_model(name, data, scale,
                                      **_embedding_options(args)))
        rows.append(row)
    print(format_table(
        rows, title=f"{args.dataset}, horizon {args.horizon}"))
    return 0


def _cmd_lint(args) -> int:
    import json
    import os

    from .analyze import (all_rules, analyze_paths, findings_payload,
                          get_rules, has_failures, render_text)
    from .persist import atomic_write_json

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:18s} {rule.severity:8s} {rule.description}")
        return 0
    names = None
    if args.rule:
        names = [name.strip() for spec in args.rule
                 for name in spec.split(",") if name.strip()]
    try:
        rules = get_rules(names)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    paths = args.paths or [os.path.dirname(os.path.abspath(__file__))]
    try:
        findings = analyze_paths(paths, rules=rules)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    payload = findings_payload(findings, rules=rules)
    if args.output:
        atomic_write_json(args.output, payload)
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_text(findings))
    return 1 if has_failures(findings, strict=args.strict) else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    train = commands.add_parser("train", help="train TimeKD on a dataset")
    _add_common(train)
    train.add_argument("--out", default=None,
                       help="save a deployable student artifact bundle")
    train.set_defaults(func=_cmd_train)

    evaluate = commands.add_parser(
        "evaluate", help="evaluate a saved student artifact bundle")
    evaluate.add_argument("--dataset", required=True,
                          choices=dataset_names())
    evaluate.add_argument("--length", type=int, default=None,
                          help="series length override (default per "
                               "dataset)")
    evaluate.add_argument("--artifact", required=True,
                          help="student artifact bundle from train --out; "
                               "window shapes come from the bundle's config")
    _add_engine(evaluate)
    evaluate.set_defaults(func=_cmd_evaluate)

    predict = commands.add_parser(
        "predict", help="forecast from a saved student artifact bundle")
    predict.add_argument("--artifact", required=True,
                         help="student artifact bundle from train --out")
    predict.add_argument("--dataset", default="ETTm1",
                         choices=dataset_names(),
                         help="dataset supplying the input window when "
                              "--input is not given")
    predict.add_argument("--length", type=int, default=None)
    predict.add_argument("--input", default=None, metavar="NPY",
                         help=".npy file of history windows (H, N) or "
                              "(B, H, N)")
    predict.add_argument("--raw", action="store_true",
                         help="treat inputs/outputs as raw data units "
                              "(apply the bundled scaler)")
    predict.add_argument("--serve", action="store_true",
                         help="route the prediction through a "
                              "ForecastService (coalescing serve path)")
    predict.add_argument("--out", default=None, help="save forecasts (.npy)")
    _add_engine(predict)
    predict.set_defaults(func=_cmd_predict)

    serve = commands.add_parser(
        "serve", help="batch-serve requests from a directory of artifacts")
    serve.add_argument("--artifacts", required=True,
                       help="directory of student artifact bundles")
    serve.add_argument("--dataset", default=None, choices=dataset_names(),
                       help="registry key of the model to serve")
    serve.add_argument("--horizon", type=int, default=None)
    serve.add_argument("--length", type=int, default=None)
    serve.add_argument("--input", default=None, metavar="NPY",
                       help=".npy file of request windows (B, H, N); "
                            "defaults to test windows of --dataset")
    serve.add_argument("--requests", type=int, default=64,
                       help="number of test-window requests when --input "
                            "is not given")
    serve.add_argument("--raw", action="store_true")
    serve.add_argument("--max-models", type=int, default=4)
    serve.add_argument("--max-batch", type=int, default=64)
    serve.add_argument("--serve-threads", type=int, default=1,
                       help="drain batches for up to this many different "
                            "models concurrently (per-model FIFO order is "
                            "preserved)")
    serve.add_argument("--out", default=None, help="save forecasts (.npy)")
    serve.add_argument("--stats-out", default=None, metavar="JSON",
                       help="dump service stats as JSON (written "
                            "atomically, even on abnormal exit)")
    _add_engine(serve)
    _add_shard(serve)
    serve.set_defaults(func=_cmd_serve)

    stream = commands.add_parser(
        "stream", help="replay a dataset through the streaming "
                       "forecaster (online ingestion + micro-batched "
                       "re-forecasting)")
    stream.add_argument("--artifacts", required=True,
                        help="directory of student artifact bundles")
    stream.add_argument("--dataset", default=None, choices=dataset_names(),
                        help="registry key of the model to stream against")
    stream.add_argument("--horizon", type=int, default=None)
    stream.add_argument("--length", type=int, default=None,
                        help="series length override (default per dataset)")
    stream.add_argument("--ticks", type=int, default=None,
                        help="replay at most this many ticks of the test "
                             "segment (default: all)")
    stream.add_argument("--series", type=int, default=1,
                        help="replay the stream as this many parallel "
                             "series keys (exercises coalescing)")
    stream.add_argument("--cadence", type=int, default=1,
                        help="re-forecast every K ingested ticks (0 = "
                             "on-demand only)")
    stream.add_argument("--policy", default="error",
                        choices=["error", "ffill", "interpolate"],
                        help="missing-tick policy")
    stream.add_argument("--raw", action="store_true",
                        help="stream raw data units through the bundled "
                             "scaler")
    stream.add_argument("--verify", action="store_true",
                        help="assert streamed forecasts are bitwise "
                             "identical to offline predict")
    stream.add_argument("--max-models", type=int, default=4)
    stream.add_argument("--max-batch", type=int, default=64)
    stream.add_argument("--serve-threads", type=int, default=1,
                        help="drain batches for up to this many different "
                             "models concurrently (per-model FIFO order is "
                             "preserved)")
    stream.add_argument("--stats-out", default=None, metavar="JSON",
                        help="dump replay + service stats as JSON "
                             "(written atomically)")
    stream.add_argument("--snapshot-dir", default=None, metavar="DIR",
                        help="durable state directory: snapshots "
                             "(snapshot-{seq}.npz; snapshot-{shard}-{seq} "
                             "per worker under --workers) plus a per-tick "
                             "WAL; graceful shutdown and normal completion "
                             "both write a final snapshot")
    stream.add_argument("--snapshot-every", type=int, default=0,
                        metavar="N",
                        help="checkpoint every N accepted ticks "
                             "(0 = only the final/shutdown snapshot; "
                             "requires --snapshot-dir)")
    stream.add_argument("--resume", action="store_true",
                        help="recover state from --snapshot-dir before "
                             "replaying (latest snapshot + WAL replay), "
                             "then continue each series where it left "
                             "off")
    stream.add_argument("--no-wal", action="store_true",
                        help="disable the append-only tick WAL; crash "
                             "recovery then loses ticks after the last "
                             "snapshot")
    _add_engine(stream)
    _add_shard(stream)
    stream.set_defaults(func=_cmd_stream)

    gateway = commands.add_parser(
        "gateway", help="serve artifacts over HTTP with API keys, "
                        "per-tenant metering and admission control")
    gateway.add_argument("--artifacts", required=True,
                         help="directory of student artifact bundles")
    gateway.add_argument("--keys", required=True, metavar="JSON",
                         help="API-key file (see repro.gateway.auth); "
                              "hot-reloaded on change, so keys and "
                              "quotas can be edited on a live gateway")
    gateway.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    gateway.add_argument("--port", default=8080, metavar="N",
                         type=_nonneg_int("--port"),
                         help="bind port (0 = any free port, printed "
                              "on startup)")
    gateway.add_argument("--quota", default=10_000, metavar="UNITS",
                         type=_nonneg_int("--quota"),
                         help="issued request units for keys whose file "
                              "entry omits 'units' (a forecast costs 4, "
                              "an ingested tick 1)")
    gateway.add_argument("--rate", default=100.0, metavar="UNITS/S",
                         type=_positive_float("--rate"),
                         help="token-bucket refill for keys omitting "
                              "'rate'")
    gateway.add_argument("--burst", default=200.0, metavar="UNITS",
                         type=_positive_float("--burst"),
                         help="token-bucket capacity for keys omitting "
                              "'burst'")
    gateway.add_argument("--max-pending", default=256, metavar="N",
                         type=_positive_int("--max-pending"),
                         help="admission bound on queued + in-flight "
                              "requests; beyond it new work is shed "
                              "with 503 Retry-After")
    gateway.add_argument("--retry-after", default=1.0, metavar="S",
                         type=_positive_float("--retry-after"),
                         help="Retry-After hint (seconds) on shed "
                              "responses")
    gateway.add_argument("--cadence", type=int, default=1,
                         help="ingest path: re-forecast every K ticks "
                              "(0 = never; predict-only gateway)")
    gateway.add_argument("--policy", default="error",
                         choices=["error", "ffill", "interpolate"],
                         help="ingest path: missing-tick policy")
    gateway.add_argument("--interval", default=1.0, metavar="S",
                         type=_positive_float("--interval"),
                         help="ingest path: expected tick spacing on "
                              "the timestamp grid")
    gateway.add_argument("--max-gap", type=int, default=16,
                         help="ingest path: largest fillable gap")
    gateway.add_argument("--raw", action="store_true",
                         help="treat request/stream values as raw data "
                              "units (apply each bundle's scaler)")
    gateway.add_argument("--max-models", type=int, default=4)
    gateway.add_argument("--max-batch", type=int, default=64)
    gateway.add_argument("--serve-threads", type=int, default=1,
                         help="drain batches for up to this many "
                              "different models concurrently")
    gateway.add_argument("--snapshot-dir", default=None, metavar="DIR",
                         help="durable state directory: per-tenant "
                              "usage counters are saved here on "
                              "shutdown and restored on start")
    gateway.add_argument("--stats-out", default=None, metavar="JSON",
                         help="dump gateway/service/stream stats as "
                              "JSON on exit (written atomically, even "
                              "on abnormal exit)")
    _add_engine(gateway)
    _add_shard(gateway)
    gateway.set_defaults(func=_cmd_gateway)

    compare = commands.add_parser("compare",
                                  help="compare models on one dataset")
    _add_common(compare)
    compare.add_argument("--models", nargs="+",
                         default=["TimeKD", "iTransformer"])
    compare.set_defaults(func=_cmd_compare)

    lint = commands.add_parser(
        "lint", help="run the repo's static invariant checks")
    lint.add_argument("paths", nargs="*",
                      help="files/directories to analyze (default: the "
                           "installed repro package)")
    lint.add_argument("--format", choices=("human", "json"),
                      default="human", help="report format")
    lint.add_argument("--rule", action="append", default=None,
                      metavar="ID[,ID...]",
                      help="run only these rules (repeatable)")
    lint.add_argument("--strict", action="store_true",
                      help="warnings also fail (exit 1)")
    lint.add_argument("--output", default=None, metavar="JSON",
                      help="also write the JSON report to this file "
                           "(atomically)")
    lint.add_argument("--list-rules", action="store_true",
                      help="list registered rules and exit")
    lint.set_defaults(func=_cmd_lint)

    args = parser.parse_args(argv)
    _check_engine_flags(parser, args)
    _check_stream_flags(parser, args)
    _check_shard_flags(parser, args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
