"""Benchmark: regenerate paper Figure 7 (accuracy vs data fraction).

Expected shape: MSE at 100% of the training data is lower than at 20%,
and the overall trend is downward as data grows.
"""

from __future__ import annotations

import numpy as np

from repro.eval import format_table
from repro.experiments import figure7
from conftest import run_once


def test_figure7_scalability(benchmark, bench_scale):
    def regenerate():
        return figure7.run(scale=bench_scale, datasets=["ETTm1"])

    rows = run_once(benchmark, regenerate)
    print()
    print(format_table(rows, title="Figure 7 (quick) — data scalability"))

    fractions = [r["train_fraction"] for r in rows]
    assert fractions == figure7.FRACTIONS
    mses = [r["mse"] for r in rows]
    assert all(np.isfinite(m) for m in mses)

    assert mses[-1] < mses[0], "more data must improve accuracy"
    # downward trend: second half of the curve below the first half
    assert np.mean(mses[-2:]) <= np.mean(mses[:2])
