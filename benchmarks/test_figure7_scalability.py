"""Benchmark: regenerate paper Figure 7 (accuracy vs data fraction).

Expected shape: the kept training windows scale linearly with the
fraction; at full scale (uncapped epochs) MSE at 100% of the training
data is lower than at 20% and the overall trend is downward.
"""

from __future__ import annotations

import numpy as np

from repro.eval import format_table
from repro.experiments import figure7
from conftest import run_once


def test_figure7_scalability(benchmark, bench_scale):
    def regenerate():
        return figure7.run(scale=bench_scale, datasets=["ETTm1"])

    rows = run_once(benchmark, regenerate)
    print()
    print(format_table(rows, title="Figure 7 (quick) — data scalability"))

    fractions = [r["train_fraction"] for r in rows]
    assert fractions == figure7.FRACTIONS
    mses = [r["mse"] for r in rows]
    assert all(np.isfinite(m) for m in mses)

    # The figure's x-axis itself: the kept training windows scale
    # linearly with the fraction (train_fraction counts windows, not
    # raw rows, so the H+M overhead cannot skew the few-shot points).
    windows = [r["train_windows"] for r in rows]
    for fraction, count in zip(fractions, windows):
        assert abs(count - fraction * windows[-1]) <= 1, (
            f"fraction {fraction} kept {count} of {windows[-1]} windows")

    if bench_scale.max_batches is None:
        # Accuracy ordering is only meaningful with uncapped epochs:
        # with max_batches set, every fraction trains on the same
        # number of samples and the curve is noise.
        assert mses[-1] < mses[0], "more data must improve accuracy"
        # downward trend: second half of the curve below the first half
        assert np.mean(mses[-2:]) <= np.mean(mses[:2])
