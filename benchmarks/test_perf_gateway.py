"""BENCH: gateway overhead — HTTP serving, policy tax, shed cost.

Three numbers characterize the multi-tenant front end:

* ``http_rps`` — end-to-end forecasts/sec through real sockets with
  concurrent keep-alive clients (auth + meter + admission + HTTP
  framing + the student forward).  The gateway exists to be deployed;
  this is the number a deployment sees.
* ``decision_us`` — microseconds per *policy decision* (authenticate,
  reserve, rate-check, admit, settle) measured without the forward.
  The whole resource model must stay negligible against a ~ms student
  forward.
* ``shed_rps`` — rejections/sec for an over-quota tenant.  Load
  shedding only protects the service if refusing work is orders of
  magnitude cheaper than doing it.

Forecasts served over HTTP are asserted bitwise identical to the
in-process service — the parity bar the whole stack holds.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.request

import numpy as np

from conftest import bench_dir, run_once

from repro.core import TimeKDConfig
from repro.core.student import StudentModel
from repro.data import StandardScaler
from repro.gateway import (
    PREDICT_UNITS,
    ApiKeyRegistry,
    Gateway,
    GatewayServer,
    write_keys_file,
)
from repro.serve import ForecastService, save_student_artifact

NUM_REQUESTS = 192
CLIENTS = 8
DECISIONS = 2000
SHEDS = 2000


def _post(url: str, key: str, payload: bytes):
    request = urllib.request.Request(
        url, data=payload, headers={"Authorization": f"Bearer {key}"})
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def test_gateway_overhead(benchmark, tmp_path_factory):
    artifact_dir = str(tmp_path_factory.mktemp("gateway-bench"))
    config = TimeKDConfig(history_length=96, horizon=24, num_variables=7,
                          d_model=32, num_heads=2, num_layers=1, ffn_dim=64)
    student = StudentModel(config)
    student.eval()
    rng = np.random.default_rng(0)
    scaler = StandardScaler().fit(rng.normal(1.0, 2.0, size=(500, 7)))
    save_student_artifact(
        os.path.join(artifact_dir, "ettm1-h24.npz"), student, config,
        scaler=scaler, metadata={"dataset": "ETTm1"})
    keys_path = os.path.join(artifact_dir, "keys.json")
    write_keys_file(keys_path, {
        "k-bench": {"tenant": "bench", "units": 10**9,
                    "rate": 1e9, "burst": 1e9},
        "k-broke": {"tenant": "broke", "units": 0,
                    "rate": 1e9, "burst": 1e9},
    })
    window = rng.normal(
        size=(config.history_length,
              config.num_variables)).astype(np.float32)
    body = json.dumps({"history": window.tolist()}).encode("utf-8")

    def run() -> dict:
        with ForecastService(artifact_dir, max_batch=64) as service:
            direct = service.predict(window)  # lazy-load + warm-up
            gateway = Gateway(service, ApiKeyRegistry(keys_path),
                              max_pending=4 * NUM_REQUESTS)
            with GatewayServer(gateway).start() as server:
                url = server.url + "/v1/predict"
                first = _post(url, "k-bench", body)
                np.testing.assert_array_equal(
                    np.asarray(first["forecast"], dtype=np.float32),
                    direct, err_msg="HTTP forecasts must be bitwise "
                    "identical to in-process predict")

                # -- end-to-end HTTP throughput, concurrent clients
                per_client = NUM_REQUESTS // CLIENTS
                errors: list[Exception] = []

                def client():
                    try:
                        for _ in range(per_client):
                            _post(url, "k-bench", body)
                    except Exception as error:  # pragma: no cover
                        errors.append(error)

                threads = [threading.Thread(target=client)
                           for _ in range(CLIENTS)]
                start = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                http_s = time.perf_counter() - start
                assert not errors, errors[:1]
                served = CLIENTS * per_client

                # -- policy decision cost, no forward involved
                tenant_key = gateway.authenticate("k-bench")
                account = gateway.account_for(tenant_key)
                bucket = gateway.bucket_for(tenant_key)
                start = time.perf_counter()
                for _ in range(DECISIONS):
                    gateway.admission.admit()
                    reservation = account.reserve(
                        PREDICT_UNITS, "predict")
                    bucket.try_acquire(PREDICT_UNITS)
                    reservation.commit()
                decision_s = time.perf_counter() - start

                # -- shed cost: an exhausted tenant must fail fast
                broke = gateway.authenticate("k-broke")
                payload = {"history": window.tolist()}
                start = time.perf_counter()
                for _ in range(SHEDS):
                    response = gateway.predict(broke, payload)
                    assert response.status == 429
                shed_s = time.perf_counter() - start

            snapshot = gateway.snapshot()

        http_rps = served / max(http_s, 1e-9)
        decision_us = decision_s / DECISIONS * 1e6
        shed_rps = SHEDS / max(shed_s, 1e-9)
        # Refusing a request must be far cheaper than serving one.
        assert shed_rps > 10.0 * http_rps, (
            f"shedding ({shed_rps:.0f}/s) is not meaningfully cheaper "
            f"than serving ({http_rps:.0f}/s)")
        return {
            "requests": served,
            "clients": CLIENTS,
            "http_s": http_s,
            "http_rps": http_rps,
            "decision_us": decision_us,
            "shed_rps": shed_rps,
            "served_batches": snapshot["service"]["batches"],
            "max_coalesced": snapshot["service"]["max_coalesced"],
        }

    result = run_once(benchmark, run)
    with open(os.path.join(bench_dir(), "perf_gateway.json"), "w") as fh:
        json.dump(result, fh, indent=2)
