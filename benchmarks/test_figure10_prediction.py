"""Benchmark: regenerate paper Figure 10 (prediction vs ground truth).

Expected shape: stitched student forecasts track the ground truth on the
four plotted ETTh1 variables — positive correlation on the strongly
periodic load channels.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figure10
from conftest import run_once


def test_figure10_prediction_vs_truth(benchmark, bench_scale):
    output = run_once(benchmark, lambda: figure10.run(scale=bench_scale))

    prediction = output["prediction"]
    truth = output["ground_truth"]
    assert prediction.shape == truth.shape
    assert prediction.shape[1] == len(figure10.VARIABLES)
    assert np.isfinite(prediction).all()

    print("\ncorrelations:", {k: round(v, 3)
                              for k, v in output["correlations"].items()})
    # the periodic load channels must be tracked with positive correlation
    assert output["correlations"]["HUFL"] > 0.2
    assert output["correlations"]["MUFL"] > 0.2
    # on average the forecasts follow the series
    assert np.mean(list(output["correlations"].values())) > 0.2
