"""BENCH: serving throughput — sequential batch-1 vs coalesced serving.

The deployment claim behind ``repro.serve``: the student is
batch-independent, so a micro-batching queue that coalesces concurrent
single-window requests into one batched forward must return *bitwise
identical* forecasts while amortizing the per-forward layer overhead
across the batch.  This benchmark records requests/sec for both modes
and asserts the coalesced path wins by at least 3x.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from conftest import bench_dir, run_once

from repro.core import TimeKDConfig
from repro.core.student import StudentModel
from repro.data import StandardScaler
from repro.serve import ForecastService, save_student_artifact

NUM_REQUESTS = 256


def test_serve_coalescing_throughput(benchmark, tmp_path_factory):
    artifact_dir = str(tmp_path_factory.mktemp("serve-bench"))
    config = TimeKDConfig(history_length=96, horizon=24, num_variables=7,
                          d_model=32, num_heads=2, num_layers=1, ffn_dim=64)
    student = StudentModel(config)
    student.eval()
    rng = np.random.default_rng(0)
    scaler = StandardScaler().fit(rng.normal(1.0, 2.0, size=(500, 7)))
    save_student_artifact(
        os.path.join(artifact_dir, "ettm1-h24.npz"), student, config,
        scaler=scaler, metadata={"dataset": "ETTm1"})
    windows = rng.normal(
        size=(NUM_REQUESTS, config.history_length,
              config.num_variables)).astype(np.float32)

    def run() -> dict:
        # Sequential batch-1 serving: every request waits for its own
        # forward — the baseline a naive deployment pays.
        with ForecastService(artifact_dir) as service:
            service.predict(windows[0])  # lazy-load + warm-up
            start = time.perf_counter()
            sequential = [service.predict(w) for w in windows]
            sequential_s = time.perf_counter() - start
            assert service.stats.max_coalesced == 1

        # Coalesced serving: the same requests submitted concurrently;
        # the queue folds them into large batched forwards.
        with ForecastService(artifact_dir, max_batch=64) as service:
            service.predict(windows[0])
            start = time.perf_counter()
            service.pause()  # emulate a burst of concurrent clients
            futures = [service.submit(w) for w in windows]
            service.resume()
            coalesced = [f.result() for f in futures]
            coalesced_s = time.perf_counter() - start
            assert service.stats.max_coalesced > 1
            max_coalesced = service.stats.max_coalesced
            batches = service.stats.batches

        for a, b in zip(sequential, coalesced):
            np.testing.assert_array_equal(
                a, b, err_msg="coalesced serving must be bitwise "
                "identical to batch-1 serving")

        sequential_rps = NUM_REQUESTS / max(sequential_s, 1e-9)
        coalesced_rps = NUM_REQUESTS / max(coalesced_s, 1e-9)
        assert coalesced_rps >= 3.0 * sequential_rps, (
            f"expected >= 3x requests/sec from micro-batching, got "
            f"{sequential_rps:.1f} -> {coalesced_rps:.1f} req/s")
        return {
            "requests": NUM_REQUESTS,
            "sequential_s": sequential_s,
            "coalesced_s": coalesced_s,
            "sequential_rps": sequential_rps,
            "coalesced_rps": coalesced_rps,
            "speedup": coalesced_rps / sequential_rps,
            "coalesced_batches": batches,
            "max_coalesced": max_coalesced,
        }

    result = run_once(benchmark, run)
    with open(os.path.join(bench_dir(), "perf_serve.json"), "w") as fh:
        json.dump(result, fh, indent=2)
