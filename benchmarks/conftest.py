"""Shared setup for the benchmark harness.

Each benchmark regenerates one paper artefact at the quick experiment
scale (see ``repro.experiments.common``).  pytest-benchmark runs every
artefact once (``pedantic(rounds=1)``) — these are reproduction runs, not
micro-benchmarks, so repeated rounds would only multiply wall time.

Set ``REPRO_FULL=1`` to run the paper-size grids instead (hours).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import ExperimentScale

#: Scale used by the benchmark suite: quick epochs, capped batches.
BENCH_SCALE = ExperimentScale(
    data_length=700, d_model=32, num_heads=2, num_layers=1, ffn_dim=64,
    epochs=10, teacher_epochs=5, batch_size=16, max_batches=8,
    llm_pretrain_steps=60, prompt_value_stride=8, seed=0,
)


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return BENCH_SCALE


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def bench_dir() -> str:
    """Shared output directory for benchmark JSON (CI uploads it)."""
    root = os.environ.get("REPRO_CACHE",
                          os.path.join(os.getcwd(), "artifacts"))
    path = os.path.join(root, "bench")
    os.makedirs(path, exist_ok=True)
    return path
