"""Benchmark: regenerate paper Figure 6 (component ablations).

Expected shape: the full TimeKD beats the mean of its ablated variants —
removing privileged information, SCA or the CLM costs accuracy.  At the
quick scale individual variants can land inside noise, so the assertion
is on the aggregate.
"""

from __future__ import annotations

import numpy as np

from repro.eval import format_table
from repro.experiments import figure6
from conftest import run_once


def test_figure6_component_ablations(benchmark, bench_scale):
    def regenerate():
        return figure6.run(scale=bench_scale, datasets=["Weather"])

    rows = run_once(benchmark, regenerate)
    print()
    print(format_table(rows, title="Figure 6 (quick) — ablations (Weather)"))

    assert {r["model"] for r in rows} == set(figure6.VARIANTS)
    assert all(np.isfinite(r["mse"]) for r in rows)

    full = next(r for r in rows if r["model"] == "TimeKD")["mse"]
    ablated = [r["mse"] for r in rows if r["model"] != "TimeKD"]
    assert full <= np.mean(ablated) * 1.02, (
        "full TimeKD should at least match the average ablated variant")
