"""Benchmark: regenerate paper Figure 8 (attention maps, ETTm1).

Expected shape: the teacher's privileged attention is more *global*
(higher entropy, spread across variables) than the student's local map —
the contrast the paper's visualization highlights.
"""

from __future__ import annotations

import numpy as np

from repro.data import ETT_COLUMNS
from repro.experiments import figure8
from conftest import run_once


def _row_entropy(matrix: np.ndarray) -> float:
    probs = np.clip(matrix, 1e-9, None)
    probs = probs / probs.sum(axis=-1, keepdims=True)
    return float(-(probs * np.log(probs)).sum(axis=-1).mean())


def test_figure8_attention_maps(benchmark, bench_scale):
    maps = run_once(benchmark, lambda: figure8.run(scale=bench_scale))

    for key in ("privileged", "student"):
        matrix = maps[key]
        assert matrix.shape == (7, 7)
        np.testing.assert_allclose(matrix.sum(axis=-1), np.ones(7),
                                   atol=1e-4)
        print(f"\n{key} attention:")
        print(figure8.render_heatmap(matrix, ETT_COLUMNS))

    teacher_entropy = _row_entropy(maps["privileged"])
    student_entropy = _row_entropy(maps["student"])
    print(f"\nentropy teacher={teacher_entropy:.3f} "
          f"student={student_entropy:.3f}")
    # both must be valid attention maps with non-degenerate structure
    assert 0.0 < student_entropy <= np.log(7) + 1e-6
    assert 0.0 < teacher_entropy <= np.log(7) + 1e-6
