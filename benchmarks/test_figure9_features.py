"""Benchmark: regenerate paper Figure 9 (feature self-relation matrices).

Expected shape: both ``F F^T`` matrices are symmetric PSD; the teacher's
privileged features show broader cross-variable interaction mass than
the student's (paper: "comprehensive and balanced" vs "localized").
"""

from __future__ import annotations

import numpy as np

from repro.data import ETT_COLUMNS
from repro.experiments import figure8, figure9
from conftest import run_once


def test_figure9_feature_relations(benchmark, bench_scale):
    maps = run_once(benchmark, lambda: figure9.run(scale=bench_scale))

    for key in ("privileged", "student"):
        matrix = maps[key]
        assert matrix.shape == (7, 7)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-4)
        eigenvalues = np.linalg.eigvalsh(matrix)
        assert eigenvalues.min() >= -1e-3, "F F^T must be PSD"
        print(f"\n{key} feature self-relations:")
        print(figure8.render_heatmap(matrix, ETT_COLUMNS))

    def off_diagonal_ratio(matrix):
        off = np.abs(matrix[~np.eye(7, dtype=bool)]).mean()
        diag = np.abs(np.diag(matrix)).mean()
        return off / diag

    print(f"\noff/diag teacher={off_diagonal_ratio(maps['privileged']):.3f} "
          f"student={off_diagonal_ratio(maps['student']):.3f}")
