"""Benchmark: regenerate paper Table I (long-term forecasting).

Quick scale runs ETTm1 and Exchange at horizons 24/48 with all seven
models and prints the table.  Expected shape: TimeKD ranks first or
within the top group on MSE; LLM-based methods generally beat
channel-independent transformers on these channel-coupled datasets.
"""

from __future__ import annotations

import numpy as np

from repro.eval import best_by, format_table
from repro.experiments import table1
from conftest import run_once


def test_table1_long_term_forecasting(benchmark, bench_scale):
    def regenerate():
        return table1.run(scale=bench_scale,
                          datasets=["ETTm1", "Exchange"],
                          horizons=[24])

    rows = run_once(benchmark, regenerate)
    print()
    print(format_table(rows, title="Table I (quick) — long-term forecasting"))

    assert len(rows) == 2 * 1 * 7
    assert all(np.isfinite(r["mse"]) and np.isfinite(r["mae"]) for r in rows)

    winners = best_by(rows, "mse", group="dataset")
    print("winners by dataset:",
          {k: v["model"] for k, v in winners.items()})
    # paper shape: TimeKD leads on at least one dataset and is never
    # more than 15% behind the per-dataset winner
    timekd_rows = [r for r in rows if r["model"] == "TimeKD"]
    for row in timekd_rows:
        best = winners[row["dataset"]]["mse"]
        assert row["mse"] <= best * 1.15, (
            f"TimeKD off the leaders on {row['dataset']}: "
            f"{row['mse']:.4f} vs best {best:.4f}")
    assert any(winners[d]["model"] == "TimeKD" for d in winners)
