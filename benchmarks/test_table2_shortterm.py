"""Benchmark: regenerate paper Table II (short-term PEMS forecasting).

Expected shape: the inverted-embedding, channel-dependent models
(TimeKD, TimeCMA, iTransformer) beat the channel-independent patching
models (PatchTST) on graph-coupled traffic data.
"""

from __future__ import annotations

import numpy as np

from repro.eval import format_table
from repro.experiments import table2
from conftest import run_once

MODELS = ["TimeKD", "TimeCMA", "iTransformer", "PatchTST"]


def test_table2_short_term_pems(benchmark, bench_scale):
    def regenerate():
        return table2.run(scale=bench_scale, datasets=["PEMS08"],
                          models=MODELS)

    rows = run_once(benchmark, regenerate)
    print()
    print(format_table(rows, title="Table II (quick) — short-term (PEMS08)"))

    assert len(rows) == len(MODELS)
    assert all(np.isfinite(r["mse"]) for r in rows)

    by_model = {r["model"]: r["mse"] for r in rows}
    inverted = min(by_model["TimeKD"], by_model["iTransformer"],
                   by_model["TimeCMA"])
    assert inverted <= by_model["PatchTST"] * 1.05, (
        "channel-dependent models should lead on graph traffic data")
