"""Gate the BENCH trajectory against a committed baseline.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/ -q   # produce the JSONs
    python benchmarks/check_regression.py            # gate vs baseline
    python benchmarks/check_regression.py --update   # re-seed baseline

Each tracked metric is compared against ``benchmarks/baseline.json``: a
throughput-style metric (higher is better) fails when it drops more
than ``--threshold`` (default 25%) below baseline, a latency-style
metric when it rises more than that above.  ``--warn-only`` downgrades
failures to warnings (exit 0) — the right mode on shared CI runners,
whose absolute perf tells you little; run strict on the machine the
baseline was recorded on.

The metric list lives here, the recorded values in the baseline file,
so adding a metric is one line plus ``--update``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: (json file stem, dotted metric path, direction). Direction "higher"
#: = throughput-style (regression is a drop), "lower" = latency-style
#: (regression is a rise).
METRICS: list[tuple[str, str, str]] = [
    ("perf_pipeline", "lazy_epoch_s", "lower"),
    ("perf_pipeline", "warm_epoch_s", "lower"),
    ("perf_pipeline", "precomputed_epoch_s", "lower"),
    ("perf_pipeline", "epoch_speedup", "higher"),
    ("perf_serve", "sequential_rps", "higher"),
    ("perf_serve", "coalesced_rps", "higher"),
    ("perf_serve", "speedup", "higher"),
    ("perf_stream", "ingest_ticks_per_s", "higher"),
    ("perf_stream", "forecast_ticks_per_s", "higher"),
    ("perf_stream", "durability.wal_ticks_per_s", "higher"),
    ("perf_stream", "durability.snapshot_s", "lower"),
    ("perf_stream", "durability.restore_s", "lower"),
    ("perf_infer", "batches.1.speedup", "higher"),
    ("perf_infer", "batches.64.speedup", "higher"),
    ("perf_infer", "serve.speedup", "higher"),
    ("perf_infer", "shape_churn.speedup", "higher"),
    ("perf_infer", "shape_churn.polymorphic_windows_per_s", "higher"),
    ("perf_infer", "precision_sweep.float32.windows_per_s_b1", "higher"),
    ("perf_infer", "precision_sweep.int8.windows_per_s_b64", "higher"),
    ("scale_curve", "summary.w1_aggregate_ingest_ticks_per_s", "higher"),
    ("scale_curve", "summary.w4_aggregate_ingest_ticks_per_s", "higher"),
    ("scale_curve", "summary.ingest_speedup_4w", "higher"),
    ("scale_curve", "summary.w4_aggregate_forecast_ticks_per_s", "higher"),
    ("scale_curve", "summary.w4_p99_forecast_latency_s", "lower"),
    ("perf_gateway", "http_rps", "higher"),
    ("perf_gateway", "decision_us", "lower"),
    ("perf_gateway", "shed_rps", "higher"),
]

_HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_BASELINE = os.path.join(_HERE, "baseline.json")


def default_bench_dir() -> str:
    """Mirror ``benchmarks/conftest.bench_dir`` without importing it."""
    cache = os.environ.get("REPRO_CACHE")
    root = cache if cache else os.path.join(os.getcwd(), "artifacts")
    return os.path.join(root, "bench")


def lookup(payload: dict, dotted: str):
    value: object = payload
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value if isinstance(value, (int, float)) else None


def collect(bench_dir: str) -> dict[str, float | None]:
    current: dict[str, float | None] = {}
    cache: dict[str, dict | None] = {}
    for stem, dotted, _ in METRICS:
        if stem not in cache:
            path = os.path.join(bench_dir, f"{stem}.json")
            try:
                with open(path) as fh:
                    cache[stem] = json.load(fh)
            except (OSError, ValueError):
                cache[stem] = None
        payload = cache[stem]
        key = f"{stem}:{dotted}"
        current[key] = None if payload is None else lookup(payload, dotted)
    return current


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline JSON (default: benchmarks/"
                             "baseline.json)")
    parser.add_argument("--bench-dir", default=None,
                        help="directory holding the perf_*.json "
                             "trajectories (default: $REPRO_CACHE/bench "
                             "or ./artifacts/bench)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed relative regression (default 0.25 "
                             "= 25%%)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0 (for CI "
                             "runners whose absolute perf is not "
                             "comparable to the baseline machine)")
    parser.add_argument("--update", action="store_true",
                        help="re-seed the baseline file from the current "
                             "trajectories instead of checking")
    args = parser.parse_args(argv)

    bench_dir = args.bench_dir or default_bench_dir()
    current = collect(bench_dir)

    if args.update:
        missing = sorted(k for k, v in current.items() if v is None)
        if missing:
            print(f"refusing to seed a baseline with missing metrics: "
                  f"{missing}", file=sys.stderr)
            return 1
        payload = {"bench_dir": bench_dir, "threshold": args.threshold,
                   "metrics": current}
        with open(args.baseline, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline seeded with {len(current)} metrics "
              f"-> {args.baseline}")
        return 0

    try:
        with open(args.baseline) as fh:
            baseline = json.load(fh)["metrics"]
    except (OSError, ValueError, KeyError) as error:
        print(f"cannot read baseline {args.baseline!r}: {error}",
              file=sys.stderr)
        return 1

    failures: list[str] = []
    directions = {f"{stem}:{dotted}": direction
                  for stem, dotted, direction in METRICS}
    for key, reference in sorted(baseline.items()):
        direction = directions.get(key)
        if direction is None:
            continue  # metric retired from METRICS; stale baseline row
        value = current.get(key)
        if value is None:
            failures.append(f"{key}: missing from {bench_dir} "
                            f"(baseline {reference:.4g})")
            continue
        if direction == "higher":
            regressed = value < reference * (1.0 - args.threshold)
            delta = (value - reference) / reference if reference else 0.0
        else:
            regressed = value > reference * (1.0 + args.threshold)
            delta = (reference - value) / reference if reference else 0.0
        marker = "FAIL" if regressed else "ok"
        print(f"[{marker:>4}] {key}: {value:.4g} vs baseline "
              f"{reference:.4g} ({delta:+.1%}, {direction} is better)")
        if regressed:
            failures.append(
                f"{key}: {value:.4g} regressed >{args.threshold:.0%} "
                f"vs baseline {reference:.4g}")

    if failures:
        print(f"\n{len(failures)} metric(s) regressed more than "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for line in failures:
            print(f"  - {line}", file=sys.stderr)
        if args.warn_only:
            print("(--warn-only: exiting 0)", file=sys.stderr)
            return 0
        return 1
    print(f"\nall {len(baseline)} baseline metrics within "
          f"{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
