"""BENCH: compiled inference engine — tape-free forward vs module path.

The claim behind ``repro.infer``: exporting the fitted student into a
flat numpy tape (no Tensor wrapping, no graph bookkeeping, preallocated
scratch, attention skipped) must return *bitwise identical* forecasts
while cutting per-window cost — >= 3x at batch 1, where autograd
overhead dominates, and measurably through the coalesced serve path.

Second-generation additions: the **shape-churn scenario** pits the
polymorphic engine (one compile at its batch capacity, every batch size
served from stride-adjusted views, zero rebuilds after warmup) against
the v1 per-batch-shape behavior (each new coalesced size pays a tape
rebuild + probe on the hot path) and demands >= 2x; the **precision
sweep** records float32/mixed/int8 throughput and probe error into the
trajectory JSON.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from conftest import bench_dir, run_once

from repro.core import TimeKDConfig
from repro.core.student import StudentModel
from repro.data import StandardScaler
from repro.infer import CompiledStudent
from repro.serve import ForecastService, save_student_artifact

#: Paper-shape student (Section V-A4 defaults: d_model 64, 2 layers).
CONFIG = TimeKDConfig(history_length=96, horizon=24, num_variables=7)

#: Batch sizes the micro-batching queue actually drains at.
SERVE_BATCH_SIZES = (1, 16, 64)

NUM_REQUESTS = 256

#: Shape-churn scenario: coalesced batch sizes arriving in no useful
#: order, most of them new (the v1 engine's worst case — every distinct
#: size was a tape rebuild + probe on the hot path).
CHURN_REQUESTS = 40
CHURN_MAX_BATCH = 64


def _best_seconds_per_call(fn, x, repeats: int = 15, inner: int = 30) -> float:
    """Best-of-``repeats`` mean call time — robust to scheduler noise."""
    fn(x)  # warm-up: builds plans / tensors outside the timed region
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn(x)
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def test_compiled_engine_speedup(benchmark, tmp_path_factory):
    student = StudentModel(CONFIG)
    student.eval()
    rng = np.random.default_rng(0)
    for p in student.parameters():
        p.data[...] = rng.standard_normal(p.data.shape).astype(
            np.float32) * 0.1
    engine = CompiledStudent(student)

    artifact_dir = str(tmp_path_factory.mktemp("infer-bench"))
    scaler = StandardScaler().fit(rng.normal(1.0, 2.0, size=(500, 7)))
    save_student_artifact(
        os.path.join(artifact_dir, "ettm1-h24.npz"), student, CONFIG,
        scaler=scaler, metadata={"dataset": "ETTm1"})
    windows = rng.normal(
        size=(NUM_REQUESTS, CONFIG.history_length,
              CONFIG.num_variables)).astype(np.float32)

    def run() -> dict:
        result: dict = {"config": {
            "history_length": CONFIG.history_length,
            "horizon": CONFIG.horizon,
            "num_variables": CONFIG.num_variables,
            "d_model": CONFIG.d_model,
            "num_layers": CONFIG.num_layers,
        }, "batches": {}}

        # Direct forward at every serve batch size, bitwise-checked.
        for batch in SERVE_BATCH_SIZES:
            x = windows[:batch]
            np.testing.assert_array_equal(
                engine.predict(x), student.predict(x),
                err_msg="compiled engine must be bitwise identical "
                "to the module forward")
            module_s = _best_seconds_per_call(student.predict, x)
            compiled_s = _best_seconds_per_call(engine.predict, x)
            result["batches"][str(batch)] = {
                "module_windows_per_s": batch / module_s,
                "compiled_windows_per_s": batch / compiled_s,
                "speedup": module_s / compiled_s,
            }

        single = result["batches"]["1"]["speedup"]
        assert single >= 3.0, (
            f"expected >= 3x single-window speedup from the compiled "
            f"engine, got {single:.2f}x")
        for batch in SERVE_BATCH_SIZES[1:]:
            batched = result["batches"][str(batch)]["speedup"]
            assert batched >= 1.15, (
                f"expected measurable batched gains at B={batch}, got "
                f"{batched:.2f}x")

        # The coalesced serve path: same burst of requests drained by
        # the micro-batch queue, module vs compiled engine per entry.
        serve_rps = {}
        for engine_name in ("module", "compiled"):
            with ForecastService(artifact_dir, max_batch=64,
                                 engine=engine_name) as service:
                service.predict(windows[0])  # lazy-load + warm-up

                def burst() -> tuple[list, float]:
                    start = time.perf_counter()
                    service.pause()  # a burst of concurrent clients
                    futures = [service.submit(w) for w in windows]
                    service.resume()
                    forecasts = [f.result() for f in futures]
                    return forecasts, time.perf_counter() - start

                # First burst warms per-drain-size scratch plans (a
                # steady-state serving loop pays that only once); then
                # best-of-3 to shrug off scheduler noise.
                burst()
                forecasts, elapsed = min(
                    (burst() for _ in range(3)), key=lambda r: r[1])
                serve_rps[engine_name] = NUM_REQUESTS / max(elapsed, 1e-9)
                assert service.stats.max_coalesced > 1
            if engine_name == "module":
                reference = forecasts
            else:
                for a, b in zip(reference, forecasts):
                    np.testing.assert_array_equal(
                        a, b, err_msg="served forecasts must not depend "
                        "on the engine")
        result["serve"] = {
            "requests": NUM_REQUESTS,
            "module_rps": serve_rps["module"],
            "compiled_rps": serve_rps["compiled"],
            "speedup": serve_rps["compiled"] / serve_rps["module"],
        }
        # Queue bookkeeping bounds the end-to-end serve gain; demand no
        # regression (the forward-level gain is asserted above).
        assert result["serve"]["speedup"] >= 0.9

        # ----------------------------------------------------------
        # Shape churn: varying coalesced batch sizes through ONE engine.
        # ----------------------------------------------------------
        churn_rng = np.random.default_rng(42)
        churn_batches = churn_rng.integers(
            1, CHURN_MAX_BATCH + 1, size=CHURN_REQUESTS).tolist()
        churn_windows = [
            churn_rng.normal(size=(batch, CONFIG.history_length,
                                   CONFIG.num_variables)).astype(np.float32)
            for batch in churn_batches]
        total_windows = sum(churn_batches)

        # Polymorphic engine: the one compile happens at warmup (engine
        # construction with max_batch); the churn itself never rebuilds.
        poly = CompiledStudent(student, max_batch=CHURN_MAX_BATCH)
        warm_rebuilds = poly.rebuilds

        def drain_poly() -> float:
            start = time.perf_counter()
            for x in churn_windows:
                poly.predict(x)
            return time.perf_counter() - start

        # v1 behavior, reconstructed: a plan was built and probe-verified
        # per batch shape, cached per shape thereafter.  One exactly-
        # sized engine per distinct batch size reproduces that cost
        # structure — each first encounter pays the build + probe on the
        # hot path, repeats are as cheap as v1's plan-cache hits.
        def drain_legacy() -> float:
            per_shape: dict[int, CompiledStudent] = {}
            start = time.perf_counter()
            for x in churn_windows:
                batch = len(x)
                eng_for_shape = per_shape.get(batch)
                if eng_for_shape is None:
                    eng_for_shape = CompiledStudent(student,
                                                    max_batch=batch)
                    per_shape[batch] = eng_for_shape
                eng_for_shape.predict(x)
            return time.perf_counter() - start

        poly_s = min(drain_poly() for _ in range(3))
        legacy_s = min(drain_legacy() for _ in range(3))
        assert poly.rebuilds == warm_rebuilds, (
            "shape churn must not rebuild a warmed polymorphic plan")
        # Spot-check parity under churn (full parity is tier-1 tested).
        np.testing.assert_array_equal(
            poly.predict(churn_windows[0]),
            student.predict(churn_windows[0]))
        churn_speedup = legacy_s / poly_s
        result["shape_churn"] = {
            "requests": CHURN_REQUESTS,
            "windows": total_windows,
            "distinct_batches": len(set(churn_batches)),
            "legacy_windows_per_s": total_windows / legacy_s,
            "polymorphic_windows_per_s": total_windows / poly_s,
            "speedup": churn_speedup,
            "rebuilds_after_warmup": poly.rebuilds - warm_rebuilds,
            "plan_stats": poly.plan_stats(),
        }
        assert churn_speedup >= 2.0, (
            f"expected >= 2x coalesced-serve throughput from the "
            f"shape-polymorphic plan under batch-size churn, got "
            f"{churn_speedup:.2f}x")

        # ----------------------------------------------------------
        # Precision sweep: float32 / mixed / int8 throughput + error.
        # ----------------------------------------------------------
        sweep = {}
        reference = {batch: engine.predict(windows[:batch])
                     for batch in (1, 64)}
        for precision in ("float32", "mixed", "int8"):
            eng = CompiledStudent(student, precision=precision,
                                  max_batch=64)
            row: dict = {}
            for batch in (1, 64):
                x = windows[:batch]
                seconds = _best_seconds_per_call(eng.predict, x)
                row[f"windows_per_s_b{batch}"] = batch / seconds
                error = float(np.abs(
                    eng.predict(x).astype(np.float64)
                    - reference[batch].astype(np.float64)).max())
                row[f"max_abs_error_b{batch}"] = error
            if precision == "float32":
                assert row["max_abs_error_b1"] == 0.0  # bitwise mode
            else:
                row["probe_report"] = {
                    k: v for k, v in eng.probe_report.items()
                    if k != "modules"}
                row["worst_module_rel_error"] = max(
                    eng.probe_report["modules"].values(), default=0.0)
            if precision == "int8":
                row["weight_bytes_int8"] = eng.quantized_nbytes
                row["weight_bytes_float32"] = eng.projection_nbytes
            sweep[precision] = row
        result["precision_sweep"] = sweep
        return result

    result = run_once(benchmark, run)
    with open(os.path.join(bench_dir(), "perf_infer.json"), "w") as fh:
        json.dump(result, fh, indent=2)
