"""BENCH: embedding-pipeline trajectory (paper "Embeddings Storage").

Measures the wall-clock effect of the contiguous precomputed embedding
store at bench scale: once the store is warm, a training epoch is pure
gather + forward and never invokes ``CalibratedLanguageModel.forward``.
The observed speedup is recorded to ``artifacts/bench/`` as the first
point of the performance trajectory.
"""

from __future__ import annotations

import json
import os
import time

from conftest import bench_dir, run_once

from repro.core.trainer import TimeKDTrainer
from repro.experiments.common import (
    prepare_data,
    shared_backbone,
    timekd_config,
)
from repro.llm import CalibratedLanguageModel


def test_embedding_pipeline_speedup(benchmark, bench_scale):
    data = prepare_data("ETTm1", 24, bench_scale)
    backbone = shared_backbone("gpt2-tiny", bench_scale.llm_pretrain_steps)
    clm = CalibratedLanguageModel(backbone, delta=1.0)
    config = timekd_config(data, bench_scale).with_updates(
        teacher_epochs=1, student_epochs=1,
        max_batches_per_epoch=None,       # full epochs: the honest case
        embedding_cache_dir=None,         # measure compute, not disk reuse
    )

    def run() -> dict:
        # Seed-style lazy path: the first epoch pays per-batch CLM
        # encoding, exactly like the pre-store pipeline did every epoch.
        lazy = TimeKDTrainer(
            config.with_updates(precompute_embeddings=False), data, clm=clm)
        start = time.perf_counter()
        lazy.train_teacher()
        lazy_epoch = time.perf_counter() - start

        # Second epoch of the same trainer: the store is warm, so the
        # epoch must not invoke CalibratedLanguageModel.forward at all.
        forwards_before = clm.num_forwards
        start = time.perf_counter()
        lazy.train_teacher()
        warm_epoch = time.perf_counter() - start
        assert clm.num_forwards == forwards_before, \
            "second-epoch training must not touch the CLM"

        # Explicit precompute pass: one-shot chunked encode up front,
        # then every epoch (including the first) is CLM-free.
        fast = TimeKDTrainer(
            config.with_updates(precompute_embeddings=True), data, clm=clm)
        start = time.perf_counter()
        fast.prepare_embeddings()
        precompute = time.perf_counter() - start
        assert len(fast.store) == len(data.train)
        forwards_before = clm.num_forwards
        start = time.perf_counter()
        fast.train_teacher()
        fast_epoch = time.perf_counter() - start
        assert clm.num_forwards == forwards_before, \
            "precomputed training epoch must not touch the CLM"

        assert lazy_epoch >= 2.0 * warm_epoch, (
            f"expected >= 2x epoch speedup once the store is warm, got "
            f"{lazy_epoch:.3f}s lazy vs {warm_epoch:.3f}s warm")
        return {
            "dataset": "ETTm1",
            "train_windows": len(data.train),
            "lazy_epoch_s": lazy_epoch,
            "warm_epoch_s": warm_epoch,
            "precompute_s": precompute,
            "precomputed_epoch_s": fast_epoch,
            "epoch_speedup": lazy_epoch / max(warm_epoch, 1e-9),
            "clm_forwards_warm_epoch": 0,
        }

    result = run_once(benchmark, run)
    with open(os.path.join(bench_dir(), "perf_pipeline.json"), "w") as fh:
        json.dump(result, fh, indent=2)
