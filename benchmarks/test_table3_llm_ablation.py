"""Benchmark: regenerate paper Table III (LLM backbone ablation).

Expected shape: model sizes strictly increase bert < gpt2 < llama and
larger backbones trend toward lower error, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.eval import format_table
from repro.experiments import table3
from conftest import run_once


def test_table3_llm_backbone_ablation(benchmark, bench_scale):
    rows = run_once(benchmark, lambda: table3.run(scale=bench_scale))
    print()
    print(format_table(rows, title="Table III (quick) — LLM backbones"))

    assert [r["llm"] for r in rows] == table3.BACKBONES
    sizes = [r["model_size_M"] for r in rows]
    assert sizes == sorted(sizes), "model sizes must increase bert<gpt2<llama"
    assert all(np.isfinite(r["mse"]) for r in rows)

    # larger backbones should not be dramatically worse than the smallest
    smallest = rows[0]["mse"]
    assert rows[-1]["mse"] <= smallest * 1.10
