"""Benchmark: regenerate paper Table V (few-shot, 10% training data).

Expected shape: TimeKD stays competitive under data scarcity thanks to
the pretrained-CLM teacher; it leads or trails the winner closely.
"""

from __future__ import annotations

import numpy as np

from repro.eval import best_by, format_table
from repro.experiments import table5
from conftest import run_once

MODELS = ["TimeKD", "TimeCMA", "iTransformer", "PatchTST"]


def test_table5_few_shot(benchmark, bench_scale):
    def regenerate():
        return table5.run(scale=bench_scale, datasets=["ETTm1"],
                          models=MODELS)

    rows = run_once(benchmark, regenerate)
    print()
    print(format_table(rows, title="Table V (quick) — few-shot (10% data)"))

    assert len(rows) == len(MODELS)
    assert all(r["train_fraction"] == 0.1 for r in rows)
    assert all(np.isfinite(r["mse"]) for r in rows)

    winner = best_by(rows, "mse")
    timekd = next(r for r in rows if r["model"] == "TimeKD")
    assert timekd["mse"] <= winner["mse"] * 1.15
