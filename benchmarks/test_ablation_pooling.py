"""Benchmark: extension ablation — last-token vs mean pooling in the CLM.

DESIGN.md calls out the last-token extractor as a design choice worth
ablating: the paper argues the last token is the knowledge-richest state
under causal masking.  This bench compares both pooling modes inside the
full TimeKD pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.core import TimeKDForecaster
from repro.eval import format_table
from repro.experiments.common import prepare_data, shared_backbone, timekd_config
from repro.llm import CalibratedLanguageModel
from repro.nn import init as nn_init
from conftest import run_once


def test_pooling_ablation(benchmark, bench_scale):
    data = prepare_data("ETTm1", 24, bench_scale)

    def regenerate():
        rows = []
        for pooling in ("last", "mean"):
            config = timekd_config(data, bench_scale)
            nn_init.seed_everything(config.seed)
            backbone = shared_backbone(config.llm_name,
                                       bench_scale.llm_pretrain_steps)
            clm = CalibratedLanguageModel(
                backbone, delta=config.calibration_delta, pooling=pooling)
            model = TimeKDForecaster(config, clm=clm).fit(data)
            metrics = model.evaluate(data.test)
            rows.append({"pooling": pooling, **metrics})
        return rows

    rows = run_once(benchmark, regenerate)
    print()
    print(format_table(rows, title="Ablation — CLM pooling (ETTm1)"))
    assert len(rows) == 2
    assert all(np.isfinite(r["mse"]) for r in rows)
