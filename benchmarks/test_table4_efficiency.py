"""Benchmark: regenerate paper Table IV (resource efficiency, ETTm1 h96).

Expected shape (paper Section V-B5): TimeKD posts the fastest inference
of the LLM-based methods — its student runs alone at test time, while
TimeCMA / Time-LLM / OFA keep a language model in the inference path.
"""

from __future__ import annotations

from repro.eval import format_table
from repro.experiments import table4
from conftest import run_once


def test_table4_resource_efficiency(benchmark, bench_scale):
    rows = run_once(benchmark, lambda: table4.run(scale=bench_scale))
    print()
    print(format_table(rows, title="Table IV (quick) — resource efficiency"))

    by_model = {r["model"]: r for r in rows}
    assert set(by_model) == {"TimeKD", "TimeCMA", "Time-LLM", "UniTime",
                             "OFA", "iTransformer", "PatchTST"}
    for row in rows:
        assert row["trainable_params_M"] > 0
        assert row["inference_s_per_iter"] > 0

    # TimeKD inference must beat every baseline that keeps an LM in the
    # inference path (the headline efficiency claim)
    timekd_infer = by_model["TimeKD"]["inference_s_per_iter"]
    assert timekd_infer < by_model["TimeCMA"]["inference_s_per_iter"]
    assert timekd_infer < by_model["Time-LLM"]["inference_s_per_iter"]
    assert timekd_infer < by_model["OFA"]["inference_s_per_iter"]
