"""BENCH: streaming throughput — 1k+ live series through one service.

The streaming claim behind ``repro.stream``: per-series state is cheap
enough to hold thousands of concurrent series, and because every
re-forecast routes through the ``ForecastService`` micro-batching
queue, a burst tick across the fleet coalesces into large shared
student forwards instead of thousands of batch-1 calls.  This benchmark
warm-starts ``NUM_SERIES`` independent random-walk series, replays
burst ticks across all of them, and records ingestion ticks/sec,
end-to-end forecast ticks/sec, and the mean coalesced batch size
(asserted > 1 — micro-batching must engage under streaming load).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from conftest import bench_dir, run_once

from repro.core import TimeKDConfig
from repro.core.student import StudentModel
from repro.data import StandardScaler
from repro.serve import ForecastService, save_student_artifact
from repro.stream import StreamingForecaster

NUM_SERIES = 1024
FORECAST_ROUNDS = 2
DURABLE_SERIES = 256

SCALE_SIZES = (1024, 4096, 16384)
SCALE_WORKERS = (1, 2, 4)
P99_SAMPLE = 256


def _make_stream_artifact(artifact_dir: str):
    config = TimeKDConfig(history_length=32, horizon=8, num_variables=3,
                          d_model=32, num_heads=2, num_layers=1, ffn_dim=64)
    student = StudentModel(config)
    student.eval()
    rng = np.random.default_rng(0)
    scaler = StandardScaler().fit(rng.normal(1.0, 2.0, size=(500, 3)))
    save_student_artifact(
        os.path.join(artifact_dir, "stream-h8.npz"), student, config,
        scaler=scaler, metadata={"dataset": "ETTm1"})
    return config


def test_stream_throughput(benchmark, tmp_path_factory):
    artifact_dir = str(tmp_path_factory.mktemp("stream-bench"))
    config = _make_stream_artifact(artifact_dir)
    rng = np.random.default_rng(1)

    history = config.history_length
    ticks = history + FORECAST_ROUNDS
    streams = rng.normal(
        size=(NUM_SERIES, ticks, config.num_variables)).cumsum(axis=1)

    def run() -> dict:
        with ForecastService(artifact_dir, max_batch=64) as service:
            forecaster = StreamingForecaster(service, cadence=1)

            # Warm start: bulk-ingest each series' trailing history
            # (one row short of a full window, so no forecasts fire).
            start = time.perf_counter()
            for index in range(NUM_SERIES):
                forecaster.append(("tenant", index), 0.0,
                                  streams[index, : history - 1])
            ingest_s = time.perf_counter() - start
            ingest_ticks = NUM_SERIES * (history - 1)

            # Burst rounds: one tick lands on every series; the paused
            # queue emulates the fleet ticking faster than one forward.
            start = time.perf_counter()
            forecasts = 0
            for round_index in range(FORECAST_ROUNDS):
                tick = history - 1 + round_index
                service.pause()
                futures = [
                    forecaster.append(("tenant", index), float(tick),
                                      streams[index, tick])
                    for index in range(NUM_SERIES)
                ]
                service.resume()
                for future in futures:
                    assert future is not None
                    assert future.result().shape == (
                        config.horizon, config.num_variables)
                forecasts += len(futures)
            forecast_s = time.perf_counter() - start
            snapshot = forecaster.snapshot()

        stream_stats, service_stats = snapshot["stream"], snapshot["service"]
        assert stream_stats["series"] == NUM_SERIES
        assert service_stats["served"] == forecasts
        mean_batch = service_stats["mean_batch"]
        assert mean_batch > 1.0, (
            f"micro-batching must engage under streaming load, got mean "
            f"coalesced batch size {mean_batch:.2f}")
        return {
            "series": NUM_SERIES,
            "ingest_ticks": ingest_ticks,
            "ingest_s": ingest_s,
            "ingest_ticks_per_s": ingest_ticks / max(ingest_s, 1e-9),
            "forecast_ticks": forecasts,
            "forecast_s": forecast_s,
            "forecast_ticks_per_s": forecasts / max(forecast_s, 1e-9),
            "mean_batch": mean_batch,
            "max_coalesced": service_stats["max_coalesced"],
            "batches": service_stats["batches"],
        }

    result = run_once(benchmark, run)
    _merge_into_report(result)


def test_durability_overhead(benchmark, tmp_path_factory):
    """BENCH: WAL-logged ingestion, checkpoint and recovery latency.

    The durability layer's cost model: WAL appends ride the ingest hot
    path (every tick pays one framed write + flush), checkpoints and
    recovery are rare full-universe serializations.  This measures all
    three on a fleet of ``DURABLE_SERIES`` warm series so regressions in
    the snapshot/recover path show up in the baseline gate.
    """
    from repro.durable import StatefulRecoverer, StreamSnapshotter

    artifact_dir = str(tmp_path_factory.mktemp("durable-bench"))
    snapshot_dir = str(tmp_path_factory.mktemp("durable-bench-snaps"))
    config = _make_stream_artifact(artifact_dir)
    rng = np.random.default_rng(1)

    history = config.history_length
    streams = rng.normal(
        size=(DURABLE_SERIES, history, config.num_variables)).cumsum(axis=1)

    def run() -> dict:
        with ForecastService(artifact_dir, max_batch=64) as service:
            # cadence=0: no forecasts fire, so the tick loop isolates
            # ingestion + WAL framing cost rather than student forwards
            forecaster = StreamingForecaster(service, cadence=0)
            snapshotter = StreamSnapshotter(forecaster, snapshot_dir)
            for index in range(DURABLE_SERIES):
                forecaster.append(("tenant", index), 0.0,
                                  streams[index, : history - 1])
            start = time.perf_counter()
            for index in range(DURABLE_SERIES):
                forecaster.append(("tenant", index), float(history - 1),
                                  streams[index, history - 1])
            wal_s = time.perf_counter() - start

            start = time.perf_counter()
            snapshot_path = snapshotter.checkpoint()
            snapshot_s = time.perf_counter() - start
            snapshot_bytes = os.path.getsize(snapshot_path)
            snapshotter.close()

        with ForecastService(artifact_dir, max_batch=64) as service:
            forecaster = StreamingForecaster(service, cadence=0)
            recoverer = StatefulRecoverer()
            start = time.perf_counter()
            state = recoverer.recover(snapshot_dir, forecaster)
            restore_s = time.perf_counter() - start
            assert state.failure_reason is None, state.failure_reason
            assert len(forecaster.keys()) == DURABLE_SERIES

        return {
            "series": DURABLE_SERIES,
            "wal_s": wal_s,
            "wal_ticks_per_s": DURABLE_SERIES / max(wal_s, 1e-9),
            "snapshot_s": snapshot_s,
            "snapshot_bytes": snapshot_bytes,
            "restore_s": restore_s,
        }

    result = run_once(benchmark, run)
    _merge_into_report({"durability": result})


def test_scale_curve(benchmark, tmp_path_factory):
    """BENCH: shared-nothing scale-out — 1k → 16k series × 1/2/4 workers.

    The sharded runtime's claim: because workers share no lock, queue or
    cache, adding workers multiplies aggregate ingest throughput.  This
    curve drives each shard's key partition through its own worker and
    records, per (fleet size, worker count) cell:

    * **aggregate ticks/s** — total ticks / slowest shard's elapsed
      time.  On this 1-CPU substrate shards are driven sequentially;
      the max-of-elapsed aggregate is exactly what concurrent
      shared-nothing workers would sustain, since nothing couples them.
      Honest wall-clock numbers ride along for comparison.
    * **p99 forecast latency** — synchronous append → result round
      trips on a key sample through the routed front end.

    The headline acceptance bar is asserted here, not just recorded:
    4 workers must deliver at least 2× the 1-worker aggregate ingest
    rate at the largest fleet size.
    """
    from repro.shard import ShardRouter, ShardedStreamingForecaster

    artifact_dir = str(tmp_path_factory.mktemp("scale-bench"))
    config = _make_stream_artifact(artifact_dir)
    history = config.history_length
    largest = max(SCALE_SIZES)
    rng = np.random.default_rng(1)
    streams = rng.normal(
        size=(largest, history + 1, config.num_variables)).cumsum(axis=1)

    def measure(size: int, workers: int) -> dict:
        keys = [("tenant", index) for index in range(size)]
        with ShardRouter(artifact_dir, workers=workers,
                         max_batch=64) as router:
            sharded = ShardedStreamingForecaster(router, cadence=1)
            groups = router.ring.partition(keys)

            # Warm-start ingest, timed per shard (no forecasts fire:
            # each series stays one row short of a full window).
            ingest_elapsed = {}
            for shard, group in sorted(groups.items()):
                start = time.perf_counter()
                for key in group:
                    sharded.append(key, 0.0, streams[key[1], : history - 1])
                ingest_elapsed[shard] = time.perf_counter() - start
            ingest_ticks = size * (history - 1)
            wall_s = sum(ingest_elapsed.values())
            slowest_s = max(ingest_elapsed.values())

            # Burst: one tick lands on every series; each shard's queue
            # is paused so the burst coalesces on that shard's worker.
            forecast_elapsed = {}
            forecasts = 0
            for shard, group in sorted(groups.items()):
                service = router.workers[shard].service
                start = time.perf_counter()
                service.pause()
                futures = [sharded.append(key, float(history - 1),
                                          streams[key[1], history - 1])
                           for key in group]
                service.resume()
                for future in futures:
                    assert future is not None
                    future.result()
                forecast_elapsed[shard] = time.perf_counter() - start
                forecasts += len(futures)

            # Per-request latency through the routed front end.
            stride = max(1, size // P99_SAMPLE)
            latencies = []
            for key in keys[::stride][:P99_SAMPLE]:
                start = time.perf_counter()
                future = sharded.append(key, float(history),
                                        streams[key[1], history])
                assert future is not None
                future.result()
                latencies.append(time.perf_counter() - start)

            merged = sharded.snapshot()
            mean_batch = merged["service"]["mean_batch"]
            assert merged["stream"]["series"] == size
            assert mean_batch > 1.0, (
                f"micro-batching must engage on every shard, got mean "
                f"coalesced batch size {mean_batch:.2f}")
            shard_loads = [len(group) for group in groups.values()]

        return {
            "series": size,
            "workers": workers,
            "ingest_ticks": ingest_ticks,
            "wall_ingest_s": wall_s,
            "wall_ingest_ticks_per_s": ingest_ticks / max(wall_s, 1e-9),
            "aggregate_ingest_ticks_per_s":
                ingest_ticks / max(slowest_s, 1e-9),
            "aggregate_forecast_ticks_per_s":
                forecasts / max(max(forecast_elapsed.values()), 1e-9),
            "p50_forecast_latency_s": float(np.percentile(latencies, 50)),
            "p99_forecast_latency_s": float(np.percentile(latencies, 99)),
            "max_shard_series": max(shard_loads),
            "min_shard_series": min(shard_loads),
            "mean_batch": mean_batch,
        }

    def run() -> dict:
        curve = {str(size): {str(workers): measure(size, workers)
                             for workers in SCALE_WORKERS}
                 for size in SCALE_SIZES}
        top = curve[str(largest)]
        speedup = (top["4"]["aggregate_ingest_ticks_per_s"]
                   / top["1"]["aggregate_ingest_ticks_per_s"])
        assert speedup >= 2.0, (
            f"4 workers must at least double aggregate ingest over 1 "
            f"worker at {largest} series, got {speedup:.2f}x")
        return {
            "sizes": list(SCALE_SIZES),
            "workers": list(SCALE_WORKERS),
            "curve": curve,
            "summary": {
                "w1_aggregate_ingest_ticks_per_s":
                    top["1"]["aggregate_ingest_ticks_per_s"],
                "w4_aggregate_ingest_ticks_per_s":
                    top["4"]["aggregate_ingest_ticks_per_s"],
                "ingest_speedup_4w": speedup,
                "w4_aggregate_forecast_ticks_per_s":
                    top["4"]["aggregate_forecast_ticks_per_s"],
                "w4_p99_forecast_latency_s":
                    top["4"]["p99_forecast_latency_s"],
            },
        }

    result = run_once(benchmark, run)
    with open(os.path.join(bench_dir(), "scale_curve.json"), "w") as fh:
        json.dump(result, fh, indent=2)


def _merge_into_report(section: dict) -> None:
    """Both throughput tests in this file share one ``perf_stream.json``."""
    path = os.path.join(bench_dir(), "perf_stream.json")
    payload = {}
    if os.path.exists(path):
        with open(path) as fh:
            payload = json.load(fh)
    payload.update(section)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
