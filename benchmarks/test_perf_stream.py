"""BENCH: streaming throughput — 1k+ live series through one service.

The streaming claim behind ``repro.stream``: per-series state is cheap
enough to hold thousands of concurrent series, and because every
re-forecast routes through the ``ForecastService`` micro-batching
queue, a burst tick across the fleet coalesces into large shared
student forwards instead of thousands of batch-1 calls.  This benchmark
warm-starts ``NUM_SERIES`` independent random-walk series, replays
burst ticks across all of them, and records ingestion ticks/sec,
end-to-end forecast ticks/sec, and the mean coalesced batch size
(asserted > 1 — micro-batching must engage under streaming load).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from conftest import bench_dir, run_once

from repro.core import TimeKDConfig
from repro.core.student import StudentModel
from repro.data import StandardScaler
from repro.serve import ForecastService, save_student_artifact
from repro.stream import StreamingForecaster

NUM_SERIES = 1024
FORECAST_ROUNDS = 2
DURABLE_SERIES = 256


def test_stream_throughput(benchmark, tmp_path_factory):
    artifact_dir = str(tmp_path_factory.mktemp("stream-bench"))
    config = TimeKDConfig(history_length=32, horizon=8, num_variables=3,
                          d_model=32, num_heads=2, num_layers=1, ffn_dim=64)
    student = StudentModel(config)
    student.eval()
    rng = np.random.default_rng(0)
    scaler = StandardScaler().fit(rng.normal(1.0, 2.0, size=(500, 3)))
    save_student_artifact(
        os.path.join(artifact_dir, "stream-h8.npz"), student, config,
        scaler=scaler, metadata={"dataset": "ETTm1"})

    history = config.history_length
    ticks = history + FORECAST_ROUNDS
    streams = rng.normal(
        size=(NUM_SERIES, ticks, config.num_variables)).cumsum(axis=1)

    def run() -> dict:
        with ForecastService(artifact_dir, max_batch=64) as service:
            forecaster = StreamingForecaster(service, cadence=1)

            # Warm start: bulk-ingest each series' trailing history
            # (one row short of a full window, so no forecasts fire).
            start = time.perf_counter()
            for index in range(NUM_SERIES):
                forecaster.append(("tenant", index), 0.0,
                                  streams[index, : history - 1])
            ingest_s = time.perf_counter() - start
            ingest_ticks = NUM_SERIES * (history - 1)

            # Burst rounds: one tick lands on every series; the paused
            # queue emulates the fleet ticking faster than one forward.
            start = time.perf_counter()
            forecasts = 0
            for round_index in range(FORECAST_ROUNDS):
                tick = history - 1 + round_index
                service.pause()
                futures = [
                    forecaster.append(("tenant", index), float(tick),
                                      streams[index, tick])
                    for index in range(NUM_SERIES)
                ]
                service.resume()
                for future in futures:
                    assert future is not None
                    assert future.result().shape == (
                        config.horizon, config.num_variables)
                forecasts += len(futures)
            forecast_s = time.perf_counter() - start
            snapshot = forecaster.snapshot()

        stream_stats, service_stats = snapshot["stream"], snapshot["service"]
        assert stream_stats["series"] == NUM_SERIES
        assert service_stats["served"] == forecasts
        mean_batch = service_stats["mean_batch"]
        assert mean_batch > 1.0, (
            f"micro-batching must engage under streaming load, got mean "
            f"coalesced batch size {mean_batch:.2f}")
        return {
            "series": NUM_SERIES,
            "ingest_ticks": ingest_ticks,
            "ingest_s": ingest_s,
            "ingest_ticks_per_s": ingest_ticks / max(ingest_s, 1e-9),
            "forecast_ticks": forecasts,
            "forecast_s": forecast_s,
            "forecast_ticks_per_s": forecasts / max(forecast_s, 1e-9),
            "mean_batch": mean_batch,
            "max_coalesced": service_stats["max_coalesced"],
            "batches": service_stats["batches"],
        }

    result = run_once(benchmark, run)
    _merge_into_report(result)


def test_durability_overhead(benchmark, tmp_path_factory):
    """BENCH: WAL-logged ingestion, checkpoint and recovery latency.

    The durability layer's cost model: WAL appends ride the ingest hot
    path (every tick pays one framed write + flush), checkpoints and
    recovery are rare full-universe serializations.  This measures all
    three on a fleet of ``DURABLE_SERIES`` warm series so regressions in
    the snapshot/recover path show up in the baseline gate.
    """
    from repro.durable import StatefulRecoverer, StreamSnapshotter

    artifact_dir = str(tmp_path_factory.mktemp("durable-bench"))
    snapshot_dir = str(tmp_path_factory.mktemp("durable-bench-snaps"))
    config = TimeKDConfig(history_length=32, horizon=8, num_variables=3,
                          d_model=32, num_heads=2, num_layers=1, ffn_dim=64)
    student = StudentModel(config)
    student.eval()
    rng = np.random.default_rng(0)
    scaler = StandardScaler().fit(rng.normal(1.0, 2.0, size=(500, 3)))
    save_student_artifact(
        os.path.join(artifact_dir, "stream-h8.npz"), student, config,
        scaler=scaler, metadata={"dataset": "ETTm1"})

    history = config.history_length
    streams = rng.normal(
        size=(DURABLE_SERIES, history, config.num_variables)).cumsum(axis=1)

    def run() -> dict:
        with ForecastService(artifact_dir, max_batch=64) as service:
            # cadence=0: no forecasts fire, so the tick loop isolates
            # ingestion + WAL framing cost rather than student forwards
            forecaster = StreamingForecaster(service, cadence=0)
            snapshotter = StreamSnapshotter(forecaster, snapshot_dir)
            for index in range(DURABLE_SERIES):
                forecaster.append(("tenant", index), 0.0,
                                  streams[index, : history - 1])
            start = time.perf_counter()
            for index in range(DURABLE_SERIES):
                forecaster.append(("tenant", index), float(history - 1),
                                  streams[index, history - 1])
            wal_s = time.perf_counter() - start

            start = time.perf_counter()
            snapshot_path = snapshotter.checkpoint()
            snapshot_s = time.perf_counter() - start
            snapshot_bytes = os.path.getsize(snapshot_path)
            snapshotter.close()

        with ForecastService(artifact_dir, max_batch=64) as service:
            forecaster = StreamingForecaster(service, cadence=0)
            recoverer = StatefulRecoverer()
            start = time.perf_counter()
            state = recoverer.recover(snapshot_dir, forecaster)
            restore_s = time.perf_counter() - start
            assert state.failure_reason is None, state.failure_reason
            assert len(forecaster.keys()) == DURABLE_SERIES

        return {
            "series": DURABLE_SERIES,
            "wal_s": wal_s,
            "wal_ticks_per_s": DURABLE_SERIES / max(wal_s, 1e-9),
            "snapshot_s": snapshot_s,
            "snapshot_bytes": snapshot_bytes,
            "restore_s": restore_s,
        }

    result = run_once(benchmark, run)
    _merge_into_report({"durability": result})


def _merge_into_report(section: dict) -> None:
    """Both tests in this file share one ``perf_stream.json``."""
    path = os.path.join(bench_dir(), "perf_stream.json")
    payload = {}
    if os.path.exists(path):
        with open(path) as fh:
            payload = json.load(fh)
    payload.update(section)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
