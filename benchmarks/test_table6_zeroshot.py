"""Benchmark: regenerate paper Table VI (zero-shot ETT transfer).

Expected shape: models trained on ETTh1 transfer to ETTh2 without
catastrophic degradation; TimeKD ranks in the leading group.
"""

from __future__ import annotations

import numpy as np

from repro.eval import best_by, format_table
from repro.experiments import table6
from conftest import run_once

MODELS = ["TimeKD", "TimeCMA", "iTransformer"]


def test_table6_zero_shot(benchmark, bench_scale):
    def regenerate():
        return table6.run(scale=bench_scale,
                          transfers=[("ETTh1", "ETTh2")],
                          models=MODELS)

    rows = run_once(benchmark, regenerate)
    print()
    print(format_table(rows, title="Table VI (quick) — zero-shot transfer"))

    assert len(rows) == len(MODELS)
    assert all(r["transfer"] == "ETTh1->ETTh2" for r in rows)
    assert all(np.isfinite(r["mse"]) for r in rows)

    winner = best_by(rows, "mse")
    timekd = next(r for r in rows if r["model"] == "TimeKD")
    assert timekd["mse"] <= winner["mse"] * 1.20
