"""Tests for the tape-free compiled inference engine (repro.infer).

The engine's one contract is **bitwise parity** with the module
forward — every test here either asserts identical bytes against the
autograd path or exercises the scratch/locking machinery that makes the
compiled path allocation-free.
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro.cli import main
from repro.core import TimeKDConfig, TimeKDForecaster
from repro.core.student import StudentModel, evaluate_student
from repro.data import StandardScaler, load_dataset, make_forecasting_data
from repro.infer import ENGINES, CompiledStudent, compile_student, resolve_engine
from repro.nn import no_grad
from repro.serve import ForecastService, save_student_artifact
from repro.stream import StreamingForecaster, replay, verify_parity

L, N, M = 32, 3, 8


def tiny_config(**overrides) -> TimeKDConfig:
    base = TimeKDConfig(history_length=L, horizon=M, num_variables=N,
                        d_model=16, num_heads=2, num_layers=1, ffn_dim=32)
    return base.with_updates(**overrides) if overrides else base


def make_student(config: TimeKDConfig | None = None,
                 seed: int = 0) -> StudentModel:
    """An eval-mode student with randomized (non-init) weights."""
    student = StudentModel(config or tiny_config())
    student.eval()
    rng = np.random.default_rng(seed)
    for p in student.parameters():
        p.data[...] = rng.standard_normal(p.data.shape).astype(
            np.float32) * 0.1
    return student


def make_bundle(directory, name="m.npz", dataset="ETTm1",
                config: TimeKDConfig | None = None) -> TimeKDConfig:
    config = config or tiny_config()
    student = make_student(config)
    scaler = StandardScaler().fit(np.random.default_rng(0).normal(
        2.0, 3.0, size=(200, config.num_variables)))
    save_student_artifact(os.path.join(directory, name), student, config,
                          scaler=scaler, metadata={"dataset": dataset})
    return config


class TestBufferDonation:
    def test_donate_is_zero_copy_for_compliant_arrays(self):
        from repro.nn import donate

        a = np.ones((4, 4), np.float32)
        assert donate(a) is a  # shares memory: mutations stay visible
        assert donate(a, copy=True) is not a

    def test_donate_copies_non_compliant_arrays_once(self):
        from repro.nn import donate

        transposed = np.ones((4, 8), np.float32).T
        out = donate(transposed)
        assert out.flags["C_CONTIGUOUS"]
        assert out is not transposed
        assert donate(np.ones(3, np.float64)).dtype == np.float32

    def test_donate_parameters_names_every_weight(self):
        from repro.nn import donate_parameters

        student = make_student()
        donated = donate_parameters(student)
        named = dict(student.named_parameters())
        assert donated.keys() == named.keys()
        for name, array in donated.items():
            assert array is named[name].data  # donated, not copied

    def test_scratch_pool_reuses_by_name_shape_dtype(self):
        from repro.nn import ScratchPool

        pool = ScratchPool()
        a = pool.take("buf", (2, 3))
        assert pool.take("buf", (2, 3)) is a
        assert pool.take("buf", (3, 2)) is not a
        assert pool.take("other", (2, 3)) is not a
        assert len(pool) == 3 and pool.nbytes == 3 * 24
        pool.clear()
        assert len(pool) == 0 and pool.nbytes == 0


class TestResolveEngine:
    def test_known_engines(self):
        assert ENGINES == ("module", "compiled")
        for engine in ENGINES:
            assert resolve_engine(engine) == engine

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown inference engine"):
            resolve_engine("tensorrt")


class TestBitwiseParity:
    @pytest.mark.parametrize("batch", [1, 4, 17])
    def test_predict_bitwise_equal_to_module(self, rng, batch):
        student = make_student()
        engine = CompiledStudent(student)
        x = rng.standard_normal((batch, L, N)).astype(np.float32)
        np.testing.assert_array_equal(engine.predict(x), student.predict(x))

    @pytest.mark.parametrize("layers,heads,d_model", [(1, 2, 16), (3, 4, 32)])
    def test_parity_across_depths(self, rng, layers, heads, d_model):
        config = tiny_config(num_layers=layers, num_heads=heads,
                             d_model=d_model, ffn_dim=2 * d_model)
        student = make_student(config, seed=layers)
        engine = compile_student(student)
        x = rng.standard_normal((5, L, N)).astype(np.float32)
        np.testing.assert_array_equal(engine.predict(x), student.predict(x))

    def test_single_window_promoted_like_module(self, rng):
        student = make_student()
        engine = CompiledStudent(student)
        window = rng.standard_normal((L, N)).astype(np.float32)
        out = engine.predict(window)
        assert out.shape == (1, M, N)  # leading batch axis kept
        np.testing.assert_array_equal(out, student.predict(window))

    def test_forward_attention_bitwise_equal(self, rng):
        student = make_student()
        engine = CompiledStudent(student)
        x = rng.standard_normal((3, L, N)).astype(np.float32)
        with no_grad():
            reference = student.forward(x, need_attention=True)
        prediction, attention = engine.forward(x, need_attention=True)
        np.testing.assert_array_equal(prediction, reference.prediction.data)
        np.testing.assert_array_equal(attention, reference.attention.data)

    def test_attention_skipped_unless_requested(self, rng):
        student = make_student()
        engine = CompiledStudent(student)
        x = rng.standard_normal((2, L, N)).astype(np.float32)
        prediction, attention = engine.forward(x)
        assert attention is None
        np.testing.assert_array_equal(prediction, student.predict(x))
        # the module path skips it symmetrically
        with no_grad():
            assert student.forward(x, need_attention=False).attention is None

    def test_parity_after_recompile_tracks_weight_updates(self, rng):
        student = make_student()
        engine = CompiledStudent(student)
        x = rng.standard_normal((2, L, N)).astype(np.float32)
        np.testing.assert_array_equal(engine.predict(x), student.predict(x))
        for p in student.parameters():
            p.data += 0.01
        # derived constants (fused QKV) are compile-time snapshots, so
        # a fresh compile re-establishes parity after in-place updates
        engine = CompiledStudent(student)
        np.testing.assert_array_equal(engine.predict(x), student.predict(x))

    def test_copy_weights_decouples_from_module(self, rng):
        student = make_student()
        engine = CompiledStudent(student, copy_weights=True)
        x = rng.standard_normal((2, L, N)).astype(np.float32)
        before = engine.predict(x)
        for p in student.parameters():
            p.data += 1.0
        np.testing.assert_array_equal(engine.predict(x), before)


class TestScratchMachinery:
    def test_scratch_reused_across_calls(self, rng):
        engine = CompiledStudent(make_student())
        x = rng.standard_normal((4, L, N)).astype(np.float32)
        engine.predict(x)
        warm = engine.scratch_nbytes
        assert warm > 0
        for _ in range(3):
            engine.predict(x)
        assert engine.scratch_nbytes == warm  # no regrowth at steady state

    def test_release_scratch_frees_and_regrows(self, rng):
        engine = CompiledStudent(make_student())
        x = rng.standard_normal((2, L, N)).astype(np.float32)
        expected = engine.predict(x)
        engine.release_scratch()
        assert engine.scratch_nbytes == 0
        np.testing.assert_array_equal(engine.predict(x), expected)

    def test_result_never_aliases_scratch(self, rng):
        engine = CompiledStudent(make_student())
        x = rng.standard_normal((1, L, N)).astype(np.float32)
        first = engine.predict(x)
        snapshot = first.copy()
        engine.predict(rng.standard_normal((1, L, N)).astype(np.float32))
        np.testing.assert_array_equal(first, snapshot)

    def test_call_and_window_counters(self, rng):
        engine = CompiledStudent(make_student())
        engine.predict(rng.standard_normal((3, L, N)).astype(np.float32))
        engine.predict(rng.standard_normal((L, N)).astype(np.float32))
        assert engine.calls == 2
        assert engine.windows == 4

    def test_bad_window_shape_rejected(self, rng):
        engine = CompiledStudent(make_student())
        with pytest.raises(ValueError, match="expected history"):
            engine.predict(rng.standard_normal((L + 1, N)))
        with pytest.raises(ValueError, match="expected history"):
            engine.predict(rng.standard_normal((2, L, N + 2)))

    def test_concurrent_predicts_serialize_correctly(self, rng):
        student = make_student()
        engine = CompiledStudent(student)
        inputs = [rng.standard_normal((2, L, N)).astype(np.float32)
                  for _ in range(8)]
        expected = [student.predict(x) for x in inputs]
        results: dict[int, np.ndarray] = {}

        def worker(i):
            for _ in range(5):
                results[i] = engine.predict(inputs[i])

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(inputs))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i, want in enumerate(expected):
            np.testing.assert_array_equal(results[i], want)


class TestEvaluateStudent:
    @pytest.fixture(scope="class")
    def windows(self):
        series = load_dataset("ETTm1", length=200)
        return make_forecasting_data(series, history_length=L, horizon=M)

    def test_compiled_metrics_identical(self, windows):
        student = make_student(tiny_config(num_variables=7))
        module = evaluate_student(student, windows.test, engine="module")
        compiled = evaluate_student(student, windows.test, engine="compiled")
        assert module == compiled

    def test_engine_instance_reused(self, windows):
        student = make_student(tiny_config(num_variables=7))
        engine = CompiledStudent(student)
        metrics = evaluate_student(student, windows.test, engine=engine)
        assert engine.calls > 0
        assert metrics == evaluate_student(student, windows.test)

    def test_unknown_engine_rejected(self, windows):
        with pytest.raises(ValueError, match="unknown inference engine"):
            evaluate_student(make_student(tiny_config(num_variables=7)),
                             windows.test, engine="onnx")


class TestForecasterIntegration:
    @pytest.fixture()
    def restored(self, tmp_path):
        make_bundle(str(tmp_path))
        return TimeKDForecaster.from_artifact(
            os.path.join(str(tmp_path), "m.npz"))

    def test_predict_engines_bitwise_equal(self, restored, rng):
        x = rng.standard_normal((4, L, N)).astype(np.float32)
        np.testing.assert_array_equal(
            restored.predict(x, engine="compiled"),
            restored.predict(x, engine="module"))

    def test_predict_raw_values_parity(self, restored, rng):
        raw = rng.normal(2.0, 3.0, size=(L, N)).astype(np.float32)
        np.testing.assert_array_equal(
            restored.predict(raw, raw_values=True, engine="compiled"),
            restored.predict(raw, raw_values=True, engine="module"))

    def test_compile_is_cached(self, restored):
        assert restored.compile() is restored.compile()
        assert restored.compile(force=True) is restored.compile()

    def test_evaluate_engines_agree(self, restored):
        from repro.data import MultivariateTimeSeries

        rng = np.random.default_rng(3)
        series = MultivariateTimeSeries(
            np.cumsum(rng.normal(size=(150, N)), axis=0))
        data = make_forecasting_data(series, history_length=L, horizon=M)
        assert (restored.evaluate(data.test, engine="compiled")
                == restored.evaluate(data.test, engine="module"))


class TestServiceIntegration:
    def test_compiled_service_bitwise_equal_to_module(self, tmp_path, rng):
        make_bundle(str(tmp_path))
        windows = rng.standard_normal((6, L, N)).astype(np.float32)
        with ForecastService(str(tmp_path), engine="module") as service:
            module_out = [service.predict(w) for w in windows]
        with ForecastService(str(tmp_path), engine="compiled") as service:
            assert service.engine == "compiled"
            compiled_out = [service.predict(w) for w in windows]
        for a, b in zip(module_out, compiled_out):
            np.testing.assert_array_equal(a, b)

    def test_compiled_batched_drain_parity(self, tmp_path, rng):
        make_bundle(str(tmp_path))
        windows = rng.standard_normal((12, L, N)).astype(np.float32)
        with ForecastService(str(tmp_path), engine="module") as service:
            expected = [service.predict(w) for w in windows]
        with ForecastService(str(tmp_path), engine="compiled",
                             max_batch=16) as service:
            service.pause()  # force one coalesced compiled forward
            futures = [service.submit(w) for w in windows]
            service.resume()
            results = [f.result() for f in futures]
            assert service.snapshot().max_coalesced > 1
        for want, got in zip(expected, results):
            np.testing.assert_array_equal(want, got)

    def test_invalid_engine_rejected(self, tmp_path):
        make_bundle(str(tmp_path))
        with pytest.raises(ValueError, match="unknown inference engine"):
            ForecastService(str(tmp_path), engine="jit")


class TestStreamingParity:
    def test_replay_parity_through_compiled_engine(self, tmp_path, rng):
        make_bundle(str(tmp_path))
        walk = np.cumsum(rng.normal(size=(100, N)), axis=0)
        with ForecastService(str(tmp_path), engine="compiled") as service:
            fc = StreamingForecaster(service, cadence=1)
            report = replay(fc, walk, key=("replay", 0), max_ticks=80)
            assert len(report.forecasts) == 80 - L + 1
            # the replay harness recomputes every forecast offline and
            # demands bitwise identity — now through the compiled engine
            assert verify_parity(report, fc, walk) == len(report.forecasts)
            assert report.service["engine"] == "compiled"

    def test_stream_and_module_services_agree(self, tmp_path, rng):
        make_bundle(str(tmp_path))
        walk = np.cumsum(rng.normal(size=(L + 10, N)), axis=0)
        outputs = {}
        for engine in ENGINES:
            with ForecastService(str(tmp_path), engine=engine) as service:
                fc = StreamingForecaster(service, cadence=1)
                report = replay(fc, walk, key=("replay", engine))
                outputs[engine] = report.forecasts
        assert outputs["module"].keys() == outputs["compiled"].keys()
        for tick, forecast in outputs["module"].items():
            np.testing.assert_array_equal(forecast,
                                          outputs["compiled"][tick])


class TestCLIEngineFlag:
    def test_predict_engines_produce_identical_files(self, tmp_path, capsys):
        make_bundle(str(tmp_path), dataset="ETTm1",
                    config=tiny_config(num_variables=7))
        artifact = os.path.join(str(tmp_path), "m.npz")
        outputs = {}
        for engine in ENGINES:
            out = os.path.join(str(tmp_path), f"pred-{engine}.npy")
            code = main(["predict", "--artifact", artifact,
                         "--dataset", "ETTm1", "--length", "300",
                         "--engine", engine, "--out", out])
            assert code == 0
            outputs[engine] = np.load(out)
        capsys.readouterr()
        np.testing.assert_array_equal(outputs["module"],
                                      outputs["compiled"])

    def test_unknown_engine_rejected_by_parser(self, tmp_path, capsys):
        make_bundle(str(tmp_path))
        with pytest.raises(SystemExit):
            main(["predict", "--artifact",
                  os.path.join(str(tmp_path), "m.npz"),
                  "--dataset", "ETTm1", "--engine", "jit"])
        assert "unknown inference engine 'jit'" in capsys.readouterr().err
