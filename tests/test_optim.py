"""Tests for optimizers, schedulers, clipping and serialization."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    AdamW,
    CosineAnnealingLR,
    Linear,
    Parameter,
    StepLR,
    Tensor,
    WarmupCosineLR,
    clip_grad_norm,
    load_module,
    save_module,
)


def _quadratic_param(start=5.0):
    return Parameter(np.array([start], np.float32))


def _minimize(optimizer, parameter, steps=200):
    for _ in range(steps):
        loss = (parameter * parameter).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return abs(float(parameter.data[0]))


class TestOptimizers:
    def test_sgd_minimizes_quadratic(self):
        p = _quadratic_param()
        assert _minimize(SGD([p], lr=0.1), p) < 1e-3

    def test_sgd_momentum_minimizes(self):
        p = _quadratic_param()
        assert _minimize(SGD([p], lr=0.05, momentum=0.9), p) < 1e-2

    def test_adam_minimizes_quadratic(self):
        p = _quadratic_param()
        assert _minimize(Adam([p], lr=0.1), p) < 1e-2

    def test_adamw_decays_without_gradient_signal(self):
        p = Parameter(np.array([1.0], np.float32))
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        zero = Parameter(np.array([0.0], np.float32))
        for _ in range(20):
            loss = (p * zero).sum()  # zero gradient w.r.t. p value
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert abs(float(p.data[0])) < 0.5

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_frozen_parameters_excluded(self):
        frozen = Parameter(np.ones(1, np.float32))
        frozen.requires_grad = False
        live = Parameter(np.ones(1, np.float32))
        opt = SGD([frozen, live], lr=0.1)
        assert len(opt.parameters) == 1

    def test_step_skips_none_grads(self):
        p = Parameter(np.ones(1, np.float32))
        Adam([p], lr=0.1).step()  # no grad accumulated; must not crash
        np.testing.assert_allclose(p.data, [1.0])

    def test_zero_grad_set_to_none_false_reuses_buffers(self):
        p = _quadratic_param()
        opt = SGD([p], lr=0.1)
        (p * p).sum().backward()
        buffer = p.grad
        assert buffer is not None
        opt.zero_grad(set_to_none=False)
        assert p.grad is buffer  # same allocation, zeroed in place
        np.testing.assert_array_equal(p.grad, [0.0])
        (p * p).sum().backward()
        assert p.grad is buffer  # accumulation reused it too

    def test_zero_grad_default_drops_buffers(self):
        p = _quadratic_param()
        opt = SGD([p], lr=0.1)
        (p * p).sum().backward()
        opt.zero_grad()
        assert p.grad is None

    def test_zero_grad_buffer_reuse_matches_default(self):
        reused, dropped = _quadratic_param(), _quadratic_param()
        for p, set_to_none in ((reused, False), (dropped, True)):
            opt = SGD([p], lr=0.1)
            for _ in range(5):
                opt.zero_grad(set_to_none=set_to_none)
                (p * p).sum().backward()
                opt.step()
        np.testing.assert_array_equal(reused.data, dropped.data)


class TestClipping:
    def test_clip_reduces_norm(self):
        p = Parameter(np.ones(4, np.float32))
        p.grad = np.full(4, 10.0, np.float32)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)

    def test_clip_noop_when_small(self):
        p = Parameter(np.ones(2, np.float32))
        p.grad = np.array([0.1, 0.1], np.float32)
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.1, 0.1])

    def test_clip_survives_float32_overflow(self):
        # a float32 dot of these grads overflows to inf (|g|^2 ~ 1e40),
        # which would zero every gradient via scale = max_norm / inf;
        # the float64 accumulation must keep the norm finite instead
        p = Parameter(np.ones(4, np.float32))
        p.grad = np.full(4, 1e20, np.float32)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert np.isfinite(norm)
        assert norm == pytest.approx(2e20, rel=1e-6)
        assert np.linalg.norm(p.grad.astype(np.float64)) == pytest.approx(
            1.0, rel=1e-5)

    def test_clip_accumulates_in_float64(self):
        # 16M float32 ones: naive float32 accumulation stalls well below
        # the true sum of squares; float64 keeps every increment
        n = 1 << 24
        p = Parameter(np.ones(n, np.float32))
        p.grad = np.ones(n, np.float32)
        norm = clip_grad_norm([p], max_norm=np.inf)
        assert norm == pytest.approx(float(np.sqrt(n)), rel=1e-12)


class TestSchedulers:
    def test_first_step_runs_at_base_lr(self):
        # regression: step() used to advance the epoch before computing
        # the LR, so epoch 1 of every decay schedule was already decayed
        for sched_for in (
                lambda opt: StepLR(opt, step_size=2, gamma=0.5),
                lambda opt: CosineAnnealingLR(opt, t_max=10, min_lr=0.1),
        ):
            opt = SGD([_quadratic_param()], lr=1.0)
            assert sched_for(opt).step() == pytest.approx(1.0)
            assert opt.lr == pytest.approx(1.0)

    def test_step_lr_halves(self):
        p = _quadratic_param()
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        lrs = [sched.step() for _ in range(5)]
        assert lrs == [1.0, 1.0, 0.5, 0.5, 0.25]

    def test_cosine_first_and_last_lr(self):
        p = _quadratic_param()
        opt = SGD([p], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10, min_lr=0.1)
        lrs = [sched.step() for _ in range(11)]
        assert lrs[0] == pytest.approx(1.0)  # epoch 0 at base_lr
        assert lrs[-1] == pytest.approx(0.1, abs=1e-6)  # epoch t_max at min

    def test_warmup_ramps_then_decays(self):
        p = _quadratic_param()
        opt = SGD([p], lr=1.0)
        sched = WarmupCosineLR(opt, warmup=5, t_max=10)
        warm = [sched.step() for _ in range(5)]
        assert warm == pytest.approx([0.2, 0.4, 0.6, 0.8, 1.0])
        later = [sched.step() for _ in range(10)]
        assert later[-1] == pytest.approx(0.0, abs=1e-6)


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        src = Linear(4, 3)
        dst = Linear(4, 3)
        path = os.path.join(tmp_path, "weights.npz")
        save_module(src, path)
        load_module(dst, path)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4)).astype(np.float32))
        np.testing.assert_allclose(src(x).data, dst(x).data, atol=1e-7)

    def test_load_appends_extension(self, tmp_path):
        src = Linear(2, 2)
        path = os.path.join(tmp_path, "w.npz")
        save_module(src, path)
        load_module(Linear(2, 2), os.path.join(tmp_path, "w"))
