"""Integration tests: full TimeKD training, ablations, persistence."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import TimeKDConfig, TimeKDForecaster
from repro.core.trainer import TimeKDTrainer
from repro.data import load_dataset, make_forecasting_data


def fast_config(**overrides) -> TimeKDConfig:
    base = TimeKDConfig(
        history_length=96, horizon=24, d_model=16, num_heads=2,
        num_layers=1, ffn_dim=32, teacher_epochs=1, student_epochs=2,
        batch_size=8, max_batches_per_epoch=3, llm_pretrain_steps=15,
        prompt_value_stride=8,
    )
    return base.with_updates(**overrides) if overrides else base


@pytest.fixture(scope="module")
def small_data():
    series = load_dataset("ETTm1", length=600)
    return make_forecasting_data(series, history_length=96, horizon=24)


class TestTrainer:
    def test_teacher_loss_decreases(self, small_data, tiny_clm):
        cfg = fast_config(teacher_epochs=6, max_batches_per_epoch=4)
        trainer = TimeKDTrainer(cfg, small_data, clm=tiny_clm)
        losses = trainer.train_teacher()
        assert losses[-1] < losses[0]

    def test_joint_fit_records_history(self, small_data, tiny_clm):
        trainer = TimeKDTrainer(fast_config(), small_data, clm=tiny_clm)
        trainer.fit()
        assert trainer.history["teacher_loss"]
        assert trainer.history["student_loss"]
        assert len(trainer.history["val_mse"]) == 2

    def test_two_phase_mode(self, small_data, tiny_clm):
        cfg = fast_config(training_mode="two-phase")
        trainer = TimeKDTrainer(cfg, small_data, clm=tiny_clm)
        trainer.fit()
        assert trainer.history["student_loss"]

    def test_unknown_mode_raises(self, small_data, tiny_clm):
        cfg = fast_config(training_mode="bogus")
        trainer = TimeKDTrainer(cfg, small_data, clm=tiny_clm)
        with pytest.raises(ValueError):
            trainer.fit()

    def test_embedding_store_populated_once(self, small_data, tiny_clm):
        trainer = TimeKDTrainer(fast_config(), small_data, clm=tiny_clm)
        trainer.fit()
        assert len(trainer.store) > 0

    def test_config_absorbs_data_shape(self, small_data, tiny_clm):
        cfg = fast_config(num_variables=99)
        trainer = TimeKDTrainer(cfg, small_data, clm=tiny_clm)
        assert trainer.config.num_variables == 7

    def test_shared_head_is_same_object(self, small_data, tiny_clm):
        trainer = TimeKDTrainer(fast_config(), small_data, clm=tiny_clm)
        assert trainer.student.head is trainer.teacher.recon_head

    def test_unshared_head_option(self, small_data, tiny_clm):
        cfg = fast_config(share_projection_head=False)
        trainer = TimeKDTrainer(cfg, small_data, clm=tiny_clm)
        assert trainer.student.head is not trainer.teacher.recon_head

    def test_evaluate_returns_finite_metrics(self, small_data, tiny_clm):
        trainer = TimeKDTrainer(fast_config(), small_data, clm=tiny_clm)
        trainer.fit()
        metrics = trainer.evaluate(small_data.test)
        assert np.isfinite(metrics["mse"]) and np.isfinite(metrics["mae"])


class TestForecaster:
    def test_fit_predict_shapes(self, small_data, tiny_clm):
        model = TimeKDForecaster(fast_config(), clm=tiny_clm).fit(small_data)
        history, _ = small_data.test[0]
        single = model.predict(history)
        assert single.shape == (24, 7)
        batch = model.predict(np.stack([history, history]))
        assert batch.shape == (2, 24, 7)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TimeKDForecaster(fast_config()).predict(np.zeros((96, 7)))

    def test_training_beats_untrained(self, small_data, tiny_clm):
        cfg = fast_config(student_epochs=6, max_batches_per_epoch=6)
        trained = TimeKDForecaster(cfg, clm=tiny_clm).fit(small_data)
        trained_mse = trained.evaluate(small_data.test)["mse"]

        untrained_cfg = cfg.with_updates(teacher_epochs=0, student_epochs=0)
        # zero student epochs -> random weights; evaluate directly
        from repro.core.trainer import TimeKDTrainer

        raw = TimeKDTrainer(untrained_cfg, small_data, clm=tiny_clm)
        raw_mse = raw.evaluate(small_data.test)["mse"]
        assert trained_mse < raw_mse

    def test_attention_and_feature_maps(self, small_data, tiny_clm):
        model = TimeKDForecaster(fast_config(), clm=tiny_clm).fit(small_data)
        history, future = small_data.test[0]
        maps = model.attention_maps(history, future)
        assert maps["privileged"].shape == (7, 7)
        assert maps["student"].shape == (7, 7)
        # attention rows are distributions
        np.testing.assert_allclose(
            maps["student"].sum(axis=-1), np.ones(7), atol=1e-4)
        feats = model.feature_maps(history, future)
        assert feats["privileged"].shape == (7, 7)

    def test_save_load_roundtrip(self, small_data, tiny_clm, tmp_path):
        model = TimeKDForecaster(fast_config(), clm=tiny_clm).fit(small_data)
        path = os.path.join(tmp_path, "student.npz")
        model.save(path)
        history, _ = small_data.test[0]
        expected = model.predict(history)

        restored = TimeKDForecaster.from_artifact(path)
        np.testing.assert_array_equal(restored.predict(history), expected)

    def test_run_both_is_deterministic_with_dropout(self, small_data,
                                                    tiny_clm):
        # train() mode left over from fit must not leak dropout noise
        # into the Figure 8/9 analysis forwards
        cfg = fast_config(dropout=0.25)
        model = TimeKDForecaster(cfg, clm=tiny_clm).fit(small_data)
        model.trainer.teacher.train()
        model.trainer.student.train()
        history, future = small_data.test[0]
        first = model.attention_maps(history, future)
        second = model.attention_maps(history, future)
        np.testing.assert_array_equal(first["privileged"],
                                      second["privileged"])
        np.testing.assert_array_equal(first["student"], second["student"])
        # the prior mode is restored, not clobbered
        assert model.trainer.teacher.training
        assert model.trainer.student.training

    def test_save_embeddings_before_prepare_raises_clearly(
            self, small_data, tiny_clm, tmp_path):
        cfg = fast_config(embedding_cache_dir=str(tmp_path))
        trainer = TimeKDTrainer(cfg, small_data, clm=tiny_clm)
        with pytest.raises(RuntimeError, match="prepare_embeddings"):
            trainer.save_embeddings()
        trainer.prepare_embeddings()
        trainer.fit()
        assert trainer.save_embeddings() is None  # already saved by fit()

    def test_compact_drops_teacher(self, small_data, tiny_clm):
        model = TimeKDForecaster(fast_config(), clm=tiny_clm).fit(small_data)
        model.compact()
        assert model.trainer.teacher is None
        history, _ = small_data.test[0]
        assert model.predict(history).shape == (24, 7)


class TestAblationsRun:
    @pytest.mark.parametrize("name", ["pi", "ca", "clm", "sca", "cd", "fd"])
    def test_every_ablation_trains(self, small_data, tiny_clm, name):
        cfg = fast_config().ablation(name)
        clm = None if not cfg.use_clm else tiny_clm
        model = TimeKDForecaster(cfg, clm=clm).fit(small_data)
        metrics = model.evaluate(small_data.test)
        assert np.isfinite(metrics["mse"])


class TestZeroShotPath:
    def test_transfer_evaluation(self, small_data, tiny_clm):
        model = TimeKDForecaster(fast_config(), clm=tiny_clm).fit(small_data)
        other = make_forecasting_data(
            load_dataset("ETTm2", length=600), history_length=96, horizon=24)
        metrics = model.evaluate(other.test)
        assert np.isfinite(metrics["mse"])
