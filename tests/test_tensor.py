"""Unit + property tests for the autograd engine (repro.nn.tensor).

The property tests compare analytic gradients against central finite
differences on randomly generated inputs — the canonical gradcheck.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, concatenate, no_grad, stack, tensor, where
from repro.nn.tensor import is_grad_enabled

ATOL = 2e-2  # float32 finite differences


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central finite-difference gradient of scalar ``fn`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x.copy())
        flat[i] = orig - eps
        down = fn(x.copy())
        flat[i] = orig
        out[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(build, x: np.ndarray) -> None:
    """Assert autograd matches finite differences for ``build``."""
    t = Tensor(x.astype(np.float32), requires_grad=True)
    y = build(t)
    y.backward()

    def scalar(arr):
        return build(Tensor(arr.astype(np.float32))).item()

    expected = numeric_grad(scalar, x.astype(np.float64))
    np.testing.assert_allclose(t.grad, expected, atol=ATOL, rtol=5e-2)


small_arrays = st.integers(2, 4).flatmap(
    lambda n: st.integers(2, 4).map(lambda m: (n, m)))


class TestBasicOps:
    def test_add_broadcast_grad(self):
        a = Tensor(np.ones((2, 3), np.float32), requires_grad=True)
        b = Tensor(np.ones((3,), np.float32), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, [2, 2, 2])

    def test_mul_grad(self):
        x = np.random.default_rng(0).normal(size=(3, 3))
        check_gradient(lambda t: (t * t * 2.0).sum(), x)

    def test_div_grad(self):
        x = np.random.default_rng(1).uniform(1.0, 2.0, size=(3, 2))
        check_gradient(lambda t: (1.0 / t).sum(), x)

    def test_pow_grad(self):
        x = np.random.default_rng(2).uniform(0.5, 1.5, size=(4,))
        check_gradient(lambda t: (t ** 3).sum(), x)

    def test_neg_sub(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        ((-a) - a).sum().backward()
        np.testing.assert_allclose(a.grad, [-2.0, -2.0])

    def test_rsub_rdiv(self):
        a = Tensor([2.0], requires_grad=True)
        y = (1.0 - a) + (4.0 / a)
        y.sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0 - 4.0 / 4.0])

    def test_exp_log_roundtrip_grad(self):
        x = np.random.default_rng(3).uniform(0.5, 2.0, size=(3,))
        check_gradient(lambda t: t.exp().log().sum(), x)

    def test_tanh_sigmoid_relu_abs(self):
        x = np.random.default_rng(4).normal(size=(5,)) + 0.1
        check_gradient(lambda t: t.tanh().sum(), x)
        check_gradient(lambda t: t.sigmoid().sum(), x)
        check_gradient(lambda t: t.relu().sum(), x)
        check_gradient(lambda t: t.abs().sum(), x)

    def test_sqrt_grad(self):
        x = np.random.default_rng(5).uniform(0.5, 2.0, size=(4,))
        check_gradient(lambda t: t.sqrt().sum(), x)


class TestReductions:
    def test_sum_axis_keepdims(self):
        t = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3),
                   requires_grad=True)
        t.sum(axis=1, keepdims=True).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3)))

    def test_mean_grad(self):
        x = np.random.default_rng(6).normal(size=(3, 4))
        check_gradient(lambda t: t.mean(), x)
        check_gradient(lambda t: (t.mean(axis=0) ** 2).sum(), x)

    def test_var_matches_numpy(self):
        x = np.random.default_rng(7).normal(size=(5, 6)).astype(np.float32)
        t = Tensor(x)
        np.testing.assert_allclose(
            t.var(axis=1).data, x.var(axis=1), atol=1e-5)

    def test_max_grad_splits_ties(self):
        t = Tensor(np.array([[1.0, 1.0, 0.0]], np.float32),
                   requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5, 0.0]])


class TestShapes:
    def test_reshape_transpose_grad(self):
        x = np.random.default_rng(8).normal(size=(2, 6))
        check_gradient(
            lambda t: (t.reshape(3, 4).transpose(1, 0) ** 2).sum(), x)

    def test_swapaxes(self):
        t = Tensor(np.zeros((2, 3, 4), np.float32))
        assert t.swapaxes(1, 2).shape == (2, 4, 3)

    def test_getitem_grad(self):
        t = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4),
                   requires_grad=True)
        t[1:, :2].sum().backward()
        expected = np.zeros((3, 4))
        expected[1:, :2] = 1
        np.testing.assert_allclose(t.grad, expected)

    def test_take_grad_accumulates_duplicates(self):
        t = Tensor(np.eye(3, dtype=np.float32), requires_grad=True)
        t.take(np.array([0, 0, 2]), axis=0).sum().backward()
        np.testing.assert_allclose(t.grad.sum(axis=1), [6, 0, 3])

    def test_concatenate_grad(self):
        a = Tensor(np.ones((2, 2), np.float32), requires_grad=True)
        b = Tensor(np.ones((3, 2), np.float32), requires_grad=True)
        concatenate([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, np.ones((3, 2)))

    def test_stack_grad(self):
        parts = [Tensor(np.full((2,), float(i), np.float32),
                        requires_grad=True) for i in range(3)]
        stack(parts, axis=0).sum().backward()
        for p in parts:
            np.testing.assert_allclose(p.grad, [1.0, 1.0])


class TestMatmulAndSoftmax:
    def test_matmul_grad(self):
        x = np.random.default_rng(9).normal(size=(3, 3))
        check_gradient(lambda t: (t @ t).sum(), x)

    def test_batched_matmul_shapes(self):
        a = Tensor(np.zeros((2, 4, 3, 5), np.float32), requires_grad=True)
        b = Tensor(np.zeros((2, 4, 5, 6), np.float32), requires_grad=True)
        out = a.matmul(b)
        assert out.shape == (2, 4, 3, 6)
        out.sum().backward()
        assert a.grad.shape == a.shape and b.grad.shape == b.shape

    def test_matmul_broadcast_grad_reduces(self):
        a = Tensor(np.random.default_rng(0).normal(size=(5, 3, 4)).astype(np.float32),
                   requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(4, 2)).astype(np.float32),
                   requires_grad=True)
        a.matmul(b).sum().backward()
        assert b.grad.shape == (4, 2)

    def test_softmax_rows_sum_to_one(self):
        t = Tensor(np.random.default_rng(10).normal(size=(4, 7)))
        np.testing.assert_allclose(
            t.softmax(axis=-1).data.sum(axis=-1), np.ones(4), atol=1e-6)

    def test_softmax_grad(self):
        x = np.random.default_rng(11).normal(size=(3, 4))
        check_gradient(lambda t: (t.softmax(axis=-1) ** 2).sum(), x)

    def test_log_softmax_grad(self):
        x = np.random.default_rng(12).normal(size=(2, 5))
        check_gradient(lambda t: (t.log_softmax(axis=-1) * 0.5).sum(), x)

    def test_softmax_stability_large_values(self):
        t = Tensor(np.array([[1000.0, 1000.0]], np.float32))
        out = t.softmax(axis=-1).data
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, [[0.5, 0.5]])


class TestGraphMechanics:
    def test_backward_requires_scalar_or_grad(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        t = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            t.sum().backward()

    def test_grad_accumulates_across_backwards(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).sum().backward()
        (t * 2).sum().backward()
        np.testing.assert_allclose(t.grad, [4.0])

    def test_detach_cuts_graph(self):
        t = Tensor([1.0], requires_grad=True)
        y = (t * 3).detach()
        assert not y.requires_grad

    def test_no_grad_context(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = t * 2
        assert is_grad_enabled()
        assert not y.requires_grad

    def test_diamond_graph_gradient(self):
        # y = a*b + a*c with shared a: gradient must accumulate both paths
        a = Tensor([2.0], requires_grad=True)
        b = a * 3
        c = a * 4
        (b + c).sum().backward()
        np.testing.assert_allclose(a.grad, [7.0])

    def test_where_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        where(np.array([True, False]), a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1), small_arrays)
    def test_random_composite_gradcheck(self, seed, shape):
        """Random elementwise+reduction graphs match finite differences."""
        x = np.random.default_rng(seed).uniform(0.5, 1.5, size=shape)

        def build(t):
            y = (t * t + t.sigmoid()).softmax(axis=-1)
            return (y * t.tanh()).mean()

        check_gradient(build, x)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_matmul_chain_gradcheck(self, seed):
        x = np.random.default_rng(seed).normal(size=(3, 3)) * 0.5

        def build(t):
            return (t @ t.T).softmax(axis=-1).sum()

        check_gradient(build, x)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(2, 6), st.integers(2, 6))
    def test_softmax_is_distribution(self, seed, rows, cols):
        x = np.random.default_rng(seed).normal(size=(rows, cols)) * 10
        out = Tensor(x).softmax(axis=-1).data
        assert (out >= 0).all()
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(rows), atol=1e-5)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_unbroadcast_consistency(self, seed):
        """Broadcast add then sum-grad equals the broadcast multiplicity."""
        rng = np.random.default_rng(seed)
        a = Tensor(rng.normal(size=(4, 1)).astype(np.float32),
                   requires_grad=True)
        b = Tensor(rng.normal(size=(1, 5)).astype(np.float32),
                   requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((4, 1), 5.0))
        np.testing.assert_allclose(b.grad, np.full((1, 5), 4.0))
