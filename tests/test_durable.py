"""Durability layer: snapshots, WAL, staged recovery, fault injection.

The headline test kills a replay mid-stream at an arbitrary tick,
recovers, finishes, and demands the merged forecasts be **bitwise
identical** to an uninterrupted run — under both engines.  The fault
tests prove every stage fails closed: each injected fault lands the
recoverer in ``failed`` with a specific ``failure_reason`` and never a
partial import.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core import TimeKDConfig
from repro.core.student import StudentModel
from repro.data import StandardScaler
from repro.serve import ForecastService, save_student_artifact
from repro.stream import SeriesState, StreamingForecaster, replay
from repro.durable import (
    InjectedCrash,
    KeyCodecError,
    RecoveryError,
    RecoveryStages,
    StatefulRecoverer,
    StreamSnapshotter,
    TickWAL,
    TornWALError,
    WALError,
    atomic_write_json,
    decode_key,
    disarm_all,
    encode_key,
    flip_digest_byte,
    inject,
    latest_snapshot,
    read_wal,
    snapshot_paths,
    truncate_file,
    wal_paths,
    write_snapshot,
)
from repro.durable.faults import torn_tail
from repro.nn.serialization import load_arrays, save_arrays

L, N, M = 32, 3, 8


def stream_config(**overrides) -> TimeKDConfig:
    base = TimeKDConfig(history_length=L, horizon=M, num_variables=N,
                        d_model=16, num_heads=2, num_layers=1, ffn_dim=32)
    return base.with_updates(**overrides) if overrides else base


def make_bundle(directory, name="m.npz", dataset="ETTm1",
                config: TimeKDConfig | None = None) -> TimeKDConfig:
    config = config or stream_config()
    student = StudentModel(config)
    student.eval()
    scaler = StandardScaler().fit(np.random.default_rng(0).normal(
        2.0, 3.0, size=(200, config.num_variables)))
    save_student_artifact(os.path.join(directory, name), student, config,
                          scaler=scaler, metadata={"dataset": dataset})
    return config


@pytest.fixture(autouse=True)
def clean_crashpoints():
    disarm_all()
    yield
    disarm_all()


@pytest.fixture()
def walk(rng) -> np.ndarray:
    return np.cumsum(rng.normal(size=(150, N)), axis=0)


@pytest.fixture()
def bundle_dir(tmp_path):
    directory = str(tmp_path / "artifacts")
    os.makedirs(directory)
    make_bundle(directory)
    return directory


def make_forecaster(bundle_dir, engine="module", **overrides):
    service = ForecastService(bundle_dir, engine=engine)
    options = dict(cadence=5, raw_values=True)
    options.update(overrides)
    forecaster = StreamingForecaster(service, "ETTm1", M, **options)
    return service, forecaster


def states_bitwise_equal(a: StreamingForecaster, b: StreamingForecaster):
    assert sorted(map(str, a.keys())) == sorted(map(str, b.keys()))
    for key in a.keys():
        sa, sb = a.state(key), b.state(key)
        assert sa.count == sb.count
        assert sa._buffer.tobytes() == sb._buffer.tobytes()
        assert sa.mean.tobytes() == sb.mean.tobytes()
        assert sa._m2.tobytes() == sb._m2.tobytes()
        assert a.monitor(key).as_dict() == b.monitor(key).as_dict()
    assert a.stats.as_dict() == b.stats.as_dict()
    assert a.seq == b.seq


# ----------------------------------------------------------------------
# key codec + atomic sidecars
# ----------------------------------------------------------------------
class TestKeyCodec:
    @pytest.mark.parametrize("key", [
        "plain", 7, ("replay", "ETTm1#3"), ("a", ("b", 2), 3), (),
    ])
    def test_round_trip_is_exact(self, key):
        decoded = decode_key(json.loads(json.dumps(encode_key(key))))
        assert decoded == key
        assert type(decoded) is type(key)

    @pytest.mark.parametrize("bad", [1.5, True, None, ["list"], object()])
    def test_unsupported_keys_rejected(self, bad):
        with pytest.raises(KeyCodecError):
            encode_key(bad)

    @pytest.mark.parametrize("payload", [
        ["x", "v"], ["i", "7"], ["t", "notalist"], "junk", ["s"],
    ])
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(KeyCodecError):
            decode_key(payload)


class TestAtomicJSON:
    def test_write_and_no_temp_droppings(self, tmp_path):
        path = str(tmp_path / "stats.json")
        atomic_write_json(path, {"ticks": 42, "rate": 1.25})
        with open(path) as handle:
            assert json.load(handle) == {"ticks": 42, "rate": 1.25}
        assert os.listdir(tmp_path) == ["stats.json"]  # tmp file cleaned

    def test_overwrite_is_total(self, tmp_path):
        path = str(tmp_path / "stats.json")
        atomic_write_json(path, {"long": "x" * 4096})
        atomic_write_json(path, {"short": 1})
        with open(path) as handle:
            assert json.load(handle) == {"short": 1}


# ----------------------------------------------------------------------
# WAL
# ----------------------------------------------------------------------
class TestTickWAL:
    def test_append_read_round_trip(self, tmp_path, rng):
        path = str(tmp_path / "wal-000000000000.log")
        rows = rng.normal(size=(3, N))
        with TickWAL(path, 0, config={"dataset": "ETTm1"},
                     artifact_digest="abc") as wal:
            wal.append(1, ("replay", "a"), 0.0, rows[0])
            wal.append(2, ("replay", "a"), 1.0, rows[1])
            wal.append(3, "other", 2.0, rows[2])
        header, records = read_wal(path)
        assert header["base_seq"] == 0
        assert header["config"] == {"dataset": "ETTm1"}
        assert header["artifact_digest"] == "abc"
        assert [r["seq"] for r in records] == [1, 2, 3]
        assert records[0]["key"] == ("replay", "a")
        assert records[2]["key"] == "other"
        for record, row in zip(records, rows):
            assert record["values"].tobytes() == np.asarray(
                row, dtype=np.float64).tobytes()

    def test_bulk_run_round_trips_shape(self, tmp_path, rng):
        path = str(tmp_path / "wal-000000000000.log")
        run = rng.normal(size=(5, N))
        with TickWAL(path, 0) as wal:
            wal.append(1, "k", 0.0, run)
        _, records = read_wal(path)
        assert records[0]["values"].shape == (5, N)
        assert records[0]["values"].tobytes() == run.astype(
            np.float64).tobytes()

    def test_torn_tail_trims_to_good_prefix(self, tmp_path, rng):
        path = str(tmp_path / "wal-000000000000.log")
        with TickWAL(path, 0) as wal:
            for seq in range(1, 4):
                wal.append(seq, "k", float(seq), rng.normal(size=N))
        torn_tail(path, drop_bytes=5)
        with pytest.raises(TornWALError) as info:
            read_wal(path)
        assert [r["seq"] for r in info.value.records] == [1, 2]

    def test_reopen_repairs_torn_tail(self, tmp_path, rng):
        path = str(tmp_path / "wal-000000000000.log")
        with TickWAL(path, 0) as wal:
            wal.append(1, "k", 0.0, rng.normal(size=N))
            wal.append(2, "k", 1.0, rng.normal(size=N))
        torn_tail(path, drop_bytes=3)
        # Appending after a crash must not bury new records behind the
        # torn bytes — the reopen trims them first.
        with TickWAL(path, 0) as wal:
            wal.append(2, "k", 1.0, rng.normal(size=N))
        _, records = read_wal(path)
        assert [r["seq"] for r in records] == [1, 2]

    def test_reopen_with_wrong_base_refused(self, tmp_path, rng):
        path = str(tmp_path / "wal-000000000007.log")
        with TickWAL(path, 7) as wal:
            wal.append(8, "k", 0.0, rng.normal(size=N))
        with pytest.raises(WALError, match="base_seq"):
            TickWAL(path, 9)

    def test_wal_paths_filters_and_sorts(self, tmp_path):
        for base in (0, 40, 80):
            TickWAL(str(tmp_path / f"wal-{base:012d}.log"), base).close()
        (tmp_path / "wal-junk.log").write_text("x")
        found = wal_paths(str(tmp_path), 40)
        assert [base for base, _ in found] == [40, 80]

    def test_durable_size_tracks_flushes(self, tmp_path, rng):
        path = str(tmp_path / "wal-000000000000.log")
        wal = TickWAL(path, 0)
        header_size = wal.durable_size
        wal.append(1, "k", 0.0, rng.normal(size=N))
        assert wal.durable_size > header_size
        assert wal.durable_size == os.path.getsize(path)
        wal.close()


# ----------------------------------------------------------------------
# snapshot round trip
# ----------------------------------------------------------------------
class TestSnapshotRoundTrip:
    def test_restore_is_bitwise(self, bundle_dir, walk, tmp_path):
        service, forecaster = make_forecaster(bundle_dir)
        replay(forecaster, walk, max_ticks=60)
        path = forecaster.snapshot_to(str(tmp_path / "snap.npz"))
        service2, restored = make_forecaster(bundle_dir)
        state = restored.restore_from(path, replay_wal=False)
        assert state.stage is RecoveryStages.SUCCEEDED
        states_bitwise_equal(forecaster, restored)
        # cached latest forecast survives with dtype + bytes intact
        key = forecaster.keys()[0]
        a, b = forecaster.latest(key), restored.latest(key)
        assert a.dtype == b.dtype and a.tobytes() == b.tobytes()
        service.close()
        service2.close()

    def test_continuation_is_bitwise(self, bundle_dir, walk, tmp_path):
        service, forecaster = make_forecaster(bundle_dir)
        replay(forecaster, walk, max_ticks=60)
        path = forecaster.snapshot_to(str(tmp_path / "snap.npz"))
        service2, restored = make_forecaster(bundle_dir)
        restored.restore_from(path, replay_wal=False)
        rest_a = replay(forecaster, walk, first_tick=60)
        rest_b = replay(restored, walk, first_tick=60)
        assert sorted(rest_a.forecasts) == sorted(rest_b.forecasts)
        for tick, forecast in rest_a.forecasts.items():
            assert forecast.tobytes() == rest_b.forecasts[tick].tobytes()
        service.close()
        service2.close()

    def test_empty_forecaster_round_trips(self, bundle_dir, tmp_path):
        service, forecaster = make_forecaster(bundle_dir)
        path = forecaster.snapshot_to(str(tmp_path / "snap.npz"))
        service2, restored = make_forecaster(bundle_dir)
        state = restored.restore_from(path, replay_wal=False)
        assert state.stage is RecoveryStages.SUCCEEDED
        assert restored.keys() == [] and restored.seq == 0
        service.close()
        service2.close()

    def test_service_counters_merge_cumulatively(self, bundle_dir, walk,
                                                 tmp_path):
        service, forecaster = make_forecaster(bundle_dir)
        replay(forecaster, walk, max_ticks=60)
        before = service.snapshot()
        path = forecaster.snapshot_to(str(tmp_path / "snap.npz"))
        service.close()
        service2, restored = make_forecaster(bundle_dir)
        restored.restore_from(path, replay_wal=False)
        merged = service2.snapshot()
        assert merged.requests == before.requests
        assert merged.served == before.served
        assert merged.max_coalesced >= before.max_coalesced
        service2.close()


# ----------------------------------------------------------------------
# snapshotter policies
# ----------------------------------------------------------------------
class TestStreamSnapshotter:
    def test_every_n_ticks_checkpoints(self, bundle_dir, walk, tmp_path):
        snapdir = str(tmp_path / "snaps")
        service, forecaster = make_forecaster(bundle_dir)
        with StreamSnapshotter(forecaster, snapdir, every=20):
            replay(forecaster, walk, max_ticks=65)
        assert [seq for seq, _ in snapshot_paths(snapdir)] == [20, 40, 60]
        # WAL rotated at each checkpoint; tail segment holds ticks 61-65
        _, records = read_wal(wal_paths(snapdir, 60)[0][1])
        assert [r["seq"] for r in records] == [61, 62, 63, 64, 65]
        service.close()

    def test_prune_keeps_recoverable_suffix(self, bundle_dir, walk,
                                            tmp_path):
        snapdir = str(tmp_path / "snaps")
        service, forecaster = make_forecaster(bundle_dir)
        with StreamSnapshotter(forecaster, snapdir, every=10, keep=2):
            replay(forecaster, walk, max_ticks=55)
        assert [seq for seq, _ in snapshot_paths(snapdir)] == [40, 50]
        assert all(base >= 40 for base, _ in wal_paths(snapdir))
        service.close()

    def test_close_detaches(self, bundle_dir, walk, tmp_path):
        snapdir = str(tmp_path / "snaps")
        service, forecaster = make_forecaster(bundle_dir)
        snapshotter = StreamSnapshotter(forecaster, snapdir)
        replay(forecaster, walk, max_ticks=40)
        snapshotter.close()
        replay(forecaster, walk, first_tick=40, max_ticks=10)
        _, records = read_wal(wal_paths(snapdir, 0)[0][1])
        assert len(records) == 40  # post-close ticks were not logged
        service.close()

    def test_double_attach_refused(self, bundle_dir, tmp_path):
        service, forecaster = make_forecaster(bundle_dir)
        with StreamSnapshotter(forecaster, str(tmp_path / "a")):
            with pytest.raises(RuntimeError, match="already has"):
                StreamSnapshotter(forecaster, str(tmp_path / "b"))
        service.close()


# ----------------------------------------------------------------------
# the headline: kill mid-stream, recover, finish — bitwise identical
# ----------------------------------------------------------------------
class TestKillRecoverParity:
    @pytest.mark.parametrize("engine", ["module", "compiled"])
    def test_recovered_replay_is_bitwise_identical(self, engine,
                                                   bundle_dir, walk,
                                                   tmp_path):
        kill_at = 73  # not a checkpoint multiple: WAL replay must kick in
        snapdir = str(tmp_path / "snaps")

        service, reference = make_forecaster(bundle_dir, engine=engine)
        uninterrupted = replay(reference, walk)
        service.close()

        service, victim = make_forecaster(bundle_dir, engine=engine)
        StreamSnapshotter(victim, snapdir, every=13)
        before = replay(victim, walk, max_ticks=kill_at)
        # the crash: no snapshotter close, no final checkpoint — the
        # only durable state is past snapshots + the flushed WAL
        service.close()
        del victim

        service, recovered = make_forecaster(bundle_dir, engine=engine)
        recoverer = StatefulRecoverer()
        state = recoverer.recover(snapdir, recovered)
        assert state.stage is RecoveryStages.SUCCEEDED
        assert recoverer.history == [
            RecoveryStages.INACTIVE, RecoveryStages.READING,
            RecoveryStages.VERIFYING, RecoveryStages.IMPORTING,
            RecoveryStages.SUCCEEDED]
        assert state.detail["final_seq"] == kill_at
        assert state.detail["replayed"] == kill_at - 65  # 5 × 13 = 65
        after = replay(recovered, walk, first_tick=kill_at)
        service.close()

        merged = dict(before.forecasts)
        merged.update(after.forecasts)
        assert sorted(merged) == sorted(uninterrupted.forecasts)
        for tick, forecast in uninterrupted.forecasts.items():
            assert merged[tick].tobytes() == forecast.tobytes(), (
                f"forecast at tick {tick} diverged after recovery")

    def test_wal_bootstrap_without_snapshot(self, bundle_dir, walk,
                                            tmp_path):
        snapdir = str(tmp_path / "snaps")
        service, reference = make_forecaster(bundle_dir)
        uninterrupted = replay(reference, walk, max_ticks=50)
        service.close()

        # crash before the first checkpoint: only wal-0 exists
        service, victim = make_forecaster(bundle_dir)
        StreamSnapshotter(victim, snapdir, every=0)
        before = replay(victim, walk, max_ticks=20)
        service.close()
        assert latest_snapshot(snapdir) is None

        service, recovered = make_forecaster(bundle_dir)
        state = recovered.restore_from(snapdir)
        assert state.detail["replayed"] == 20
        after = replay(recovered, walk, first_tick=20, max_ticks=30)
        service.close()

        merged = dict(before.forecasts)
        merged.update(after.forecasts)
        for tick, forecast in uninterrupted.forecasts.items():
            assert merged[tick].tobytes() == forecast.tobytes()


# ----------------------------------------------------------------------
# fault injection: every stage fails closed
# ----------------------------------------------------------------------
def snapshot_after_replay(bundle_dir, walk, snapdir, *, every=13,
                          ticks=60, **overrides):
    service, forecaster = make_forecaster(bundle_dir, **overrides)
    StreamSnapshotter(forecaster, snapdir, every=every)
    replay(forecaster, walk, max_ticks=ticks)
    service.close()


class TestInjectedFaults:
    def test_truncated_snapshot_fails_with_reason(self, bundle_dir, walk,
                                                  tmp_path):
        snapdir = str(tmp_path / "snaps")
        snapshot_after_replay(bundle_dir, walk, snapdir)
        path = latest_snapshot(snapdir)
        truncate_file(path, keep_fraction=0.5)
        service, forecaster = make_forecaster(bundle_dir)
        recoverer = StatefulRecoverer()
        state = recoverer.recover(path, forecaster, replay_wal=False)
        assert state.stage is RecoveryStages.FAILED
        assert "unreadable snapshot" in state.failure_reason
        assert forecaster.keys() == []  # nothing was imported
        service.close()

    def test_flipped_digest_byte_fails_with_reason(self, bundle_dir, walk,
                                                   tmp_path):
        snapdir = str(tmp_path / "snaps")
        snapshot_after_replay(bundle_dir, walk, snapdir)
        flip_digest_byte(latest_snapshot(snapdir))
        service, forecaster = make_forecaster(bundle_dir)
        state = StatefulRecoverer().recover(snapdir, forecaster,
                                            replay_wal=False)
        assert state.stage is RecoveryStages.FAILED
        assert "digest mismatch" in state.failure_reason
        service.close()

    def test_future_format_version_rejected(self, bundle_dir, walk,
                                            tmp_path):
        snapdir = str(tmp_path / "snaps")
        snapshot_after_replay(bundle_dir, walk, snapdir)
        path = latest_snapshot(snapdir)
        arrays = load_arrays(path)
        arrays["__format__"] = np.int64(99)
        save_arrays(path, arrays)
        service, forecaster = make_forecaster(bundle_dir)
        state = StatefulRecoverer().recover(snapdir, forecaster,
                                            replay_wal=False)
        assert state.stage is RecoveryStages.FAILED
        assert "format 99" in state.failure_reason
        assert "not supported" in state.failure_reason
        service.close()

    def test_config_mismatch_rejected(self, bundle_dir, walk, tmp_path):
        snapdir = str(tmp_path / "snaps")
        snapshot_after_replay(bundle_dir, walk, snapdir, interval=1.0)
        service, forecaster = make_forecaster(bundle_dir, interval=2.0)
        recoverer = StatefulRecoverer()
        with pytest.raises(RecoveryError, match="config mismatch"):
            forecaster.restore_from(snapdir, recoverer=recoverer)
        assert "interval" in recoverer.state().failure_reason
        assert forecaster.keys() == []
        service.close()

    def test_artifact_digest_mismatch_rejected(self, bundle_dir, walk,
                                               tmp_path):
        snapdir = str(tmp_path / "snaps")
        snapshot_after_replay(bundle_dir, walk, snapdir)
        # same config (shapes/dataset identical) but different weights
        other_dir = str(tmp_path / "other")
        os.makedirs(other_dir)
        make_bundle(other_dir, config=stream_config(seed=1234))
        service, forecaster = make_forecaster(other_dir)
        state = StatefulRecoverer().recover(snapdir, forecaster)
        assert state.stage is RecoveryStages.FAILED
        assert "artifact digest mismatch" in state.failure_reason
        service.close()

    def test_torn_wal_strict_fails_lax_trims(self, bundle_dir, walk,
                                             tmp_path):
        snapdir = str(tmp_path / "snaps")
        snapshot_after_replay(bundle_dir, walk, snapdir, every=13,
                              ticks=70)
        tail_path = wal_paths(snapdir, 65)[0][1]
        torn_tail(tail_path, drop_bytes=4)  # tick 70 mid-record

        service, strict = make_forecaster(bundle_dir)
        state = StatefulRecoverer().recover(snapdir, strict,
                                            strict_wal=True)
        assert state.stage is RecoveryStages.FAILED
        assert "torn WAL record" in state.failure_reason
        assert strict.keys() == []
        service.close()

        service, lax = make_forecaster(bundle_dir)
        state = StatefulRecoverer().recover(snapdir, lax, strict_wal=False)
        assert state.stage is RecoveryStages.SUCCEEDED
        assert state.detail["final_seq"] == 69  # torn tick 70 trimmed
        # the trimmed tick was never durable: re-feeding it and the rest
        # restores full bitwise parity with an uninterrupted run
        after = replay(lax, walk, first_tick=69)
        service.close()
        service, reference = make_forecaster(bundle_dir)
        uninterrupted = replay(reference, walk)
        service.close()
        for tick, forecast in after.forecasts.items():
            assert forecast.tobytes() == \
                uninterrupted.forecasts[tick].tobytes()

    def test_wal_gap_rejected(self, bundle_dir, walk, tmp_path):
        snapdir = str(tmp_path / "snaps")
        snapshot_after_replay(bundle_dir, walk, snapdir, every=13,
                              ticks=70)
        # drop a middle snapshot + its WAL continuation so the chain
        # from the remaining older snapshot has a hole
        os.unlink(latest_snapshot(snapdir))
        os.unlink(wal_paths(snapdir, 52)[0][1])
        service, forecaster = make_forecaster(bundle_dir)
        state = StatefulRecoverer().recover(snapdir, forecaster)
        assert state.stage is RecoveryStages.FAILED
        assert "WAL gap" in state.failure_reason
        service.close()

    def test_kill_between_append_and_wal_fsync(self, bundle_dir, walk,
                                               tmp_path):
        snapdir = str(tmp_path / "snaps")
        service, victim = make_forecaster(bundle_dir)
        snapshotter = StreamSnapshotter(victim, snapdir, every=13)
        replay(victim, walk, max_ticks=30)
        durable = snapshotter._wal.durable_size
        with inject("wal.fsync"):
            with pytest.raises(InjectedCrash):
                victim.append(("replay", "series"), 30.0, walk[30])
        service.close()
        # the record was written but never flushed: simulate the page
        # loss by truncating to the last durable byte
        tail_path = wal_paths(snapdir, 26)[0][1]
        with open(tail_path, "r+b") as handle:
            handle.truncate(durable)

        service, recovered = make_forecaster(bundle_dir)
        state = recovered.restore_from(snapdir)
        assert state.detail["final_seq"] == 30  # tick 31 was not durable
        after = replay(recovered, walk, first_tick=30)
        service.close()
        service, reference = make_forecaster(bundle_dir)
        uninterrupted = replay(reference, walk)
        service.close()
        for tick, forecast in after.forecasts.items():
            assert forecast.tobytes() == \
                uninterrupted.forecasts[tick].tobytes()

    def test_crash_during_snapshot_publish_leaves_no_file(self, bundle_dir,
                                                          walk, tmp_path):
        snapdir = str(tmp_path / "snaps")
        service, forecaster = make_forecaster(bundle_dir)
        snapshotter = StreamSnapshotter(forecaster, snapdir)
        replay(forecaster, walk, max_ticks=40)
        with inject("snapshot.publish"):
            with pytest.raises(InjectedCrash):
                snapshotter.checkpoint()
        assert latest_snapshot(snapdir) is None  # atomic: all or nothing
        # and the WAL still covers everything for bootstrap recovery
        service.close()
        service, recovered = make_forecaster(bundle_dir)
        state = recovered.restore_from(snapdir)
        assert state.detail["final_seq"] == 40
        service.close()

    def test_mid_import_crash_clears_state(self, bundle_dir, walk,
                                           tmp_path):
        snapdir = str(tmp_path / "snaps")
        snapshot_after_replay(bundle_dir, walk, snapdir)
        service, forecaster = make_forecaster(bundle_dir)
        replay(forecaster, walk, max_ticks=10)  # pre-existing live state
        recoverer = StatefulRecoverer()
        with inject("recover.import"):
            state = recoverer.recover(snapdir, forecaster)
        assert state.stage is RecoveryStages.FAILED
        assert "import failed" in state.failure_reason
        assert "state cleared" in state.failure_reason
        # fail closed: nothing partial survives, not even the old state
        assert forecaster.keys() == []
        assert forecaster.seq == 0
        service.close()

    def test_mid_replay_crash_clears_state(self, bundle_dir, walk,
                                           tmp_path):
        snapdir = str(tmp_path / "snaps")
        snapshot_after_replay(bundle_dir, walk, snapdir, every=13,
                              ticks=70)
        service, forecaster = make_forecaster(bundle_dir)
        recoverer = StatefulRecoverer()
        with inject("recover.replay", at=3):
            state = recoverer.recover(snapdir, forecaster)
        assert state.stage is RecoveryStages.FAILED
        assert "import failed" in state.failure_reason
        assert forecaster.keys() == []
        assert recoverer.history[-2:] == [
            RecoveryStages.IMPORTING, RecoveryStages.FAILED]
        service.close()

    def test_missing_source_fails_in_reading(self, bundle_dir, tmp_path):
        service, forecaster = make_forecaster(bundle_dir)
        recoverer = StatefulRecoverer()
        state = recoverer.recover(str(tmp_path / "nowhere"), forecaster)
        assert state.stage is RecoveryStages.FAILED
        assert "no snapshot found" in state.failure_reason
        assert RecoveryStages.VERIFYING not in recoverer.history
        service.close()


# ----------------------------------------------------------------------
# bare snapshot format details
# ----------------------------------------------------------------------
class TestSnapshotFormat:
    def test_write_snapshot_appends_extension(self, bundle_dir, tmp_path):
        service, forecaster = make_forecaster(bundle_dir)
        path = write_snapshot(str(tmp_path / "bare"),
                              forecaster.export_state())
        assert path.endswith(".npz") and os.path.exists(path)
        service.close()

    def test_digest_covers_every_entry(self, bundle_dir, walk, tmp_path):
        service, forecaster = make_forecaster(bundle_dir)
        replay(forecaster, walk, max_ticks=40)
        path = forecaster.snapshot_to(str(tmp_path / "snap.npz"))
        arrays = load_arrays(path)
        buffer_keys = [k for k in arrays if k.endswith("/buffer")]
        arrays[buffer_keys[0]][0, 0] += 1.0  # corrupt one payload value
        save_arrays(path, arrays)
        service2, restored = make_forecaster(bundle_dir)
        state = StatefulRecoverer().recover(path, restored,
                                            replay_wal=False)
        assert state.stage is RecoveryStages.FAILED
        assert "digest mismatch" in state.failure_reason
        service.close()
        service2.close()
