"""Tests for the language-model substrate (repro.llm)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm import (
    BACKBONE_CONFIGS,
    NUMERIC_MODALITY,
    TEXT_MODALITY,
    CalibratedLanguageModel,
    CorpusConfig,
    NarrationCorpus,
    PromptTokenizer,
    Vocabulary,
    backbone_names,
    build_backbone,
    build_calibrated_bias,
    pretrain_backbone,
)
from repro.llm.backbones import RotaryMultiHeadAttention
from repro.nn import Tensor


class TestVocabulary:
    def test_special_tokens_exist(self, vocab):
        assert vocab.pad_id != vocab.bos_id != vocab.eos_id

    def test_word_lookup_and_unk(self, vocab):
        assert vocab.word_id("forecast") != vocab.unk_id
        assert vocab.word_id("zebra") == vocab.unk_id

    def test_value_quantization_monotone(self, vocab):
        values = np.linspace(-5, 5, 50)
        bins = [vocab.value_bin(v) for v in values]
        assert bins == sorted(bins)
        assert bins[0] == 0 and bins[-1] == vocab.num_value_bins - 1

    def test_value_ids_vectorized_matches_scalar(self, vocab):
        values = np.random.default_rng(0).uniform(-6, 6, size=30)
        vectorized = vocab.value_ids(values)
        scalar = np.array([vocab.value_id(v) for v in values])
        np.testing.assert_array_equal(vectorized, scalar)

    def test_bin_center_inverts_within_resolution(self, vocab):
        resolution = 2 * vocab.value_range / (vocab.num_value_bins - 1)
        for v in [-3.3, -0.01, 0.0, 1.7, 4.9]:
            center = vocab.bin_center(vocab.value_id(v))
            assert abs(center - v) <= resolution / 2 + 1e-9

    def test_bin_center_rejects_words(self, vocab):
        with pytest.raises(ValueError):
            vocab.bin_center(vocab.word_id("forecast"))

    @settings(max_examples=30, deadline=None)
    @given(st.floats(-100, 100, allow_nan=False))
    def test_value_id_always_in_vocab(self, value):
        vocab = Vocabulary()
        token = vocab.value_id(value)
        assert 0 <= token < len(vocab)
        assert vocab.is_value_token(token)


class TestPromptTokenizer:
    def test_historical_prompt_structure(self, vocab):
        tok = PromptTokenizer(vocab=vocab)
        prompt = tok.historical_prompt(np.zeros(12), horizon=6)
        assert prompt.token_ids[0] == vocab.bos_id
        assert prompt.token_ids[-1] == vocab.eos_id
        assert (prompt.modality == NUMERIC_MODALITY).sum() == 12

    def test_ground_truth_extends_historical(self, vocab):
        tok = PromptTokenizer(vocab=vocab)
        history, future = np.zeros(8), np.ones(4)
        hd = tok.historical_prompt(history, horizon=4)
        gt = tok.ground_truth_prompt(history, future)
        assert len(gt) > len(hd)
        np.testing.assert_array_equal(
            gt.token_ids[: len(hd) - 1], hd.token_ids[:-1])

    def test_value_stride_shortens_history_only(self, vocab):
        full = PromptTokenizer(vocab=vocab, value_stride=1)
        strided = PromptTokenizer(vocab=vocab, value_stride=4)
        history, future = np.zeros(16), np.ones(8)
        assert len(strided.ground_truth_prompt(history, future)) < len(
            full.ground_truth_prompt(history, future))
        # future values keep full resolution under the default
        gt = strided.ground_truth_prompt(history, future)
        numeric = (gt.modality == NUMERIC_MODALITY).sum()
        assert numeric == 16 // 4 + 8

    def test_batch_prompt_shapes(self, vocab):
        tok = PromptTokenizer(vocab=vocab)
        history = np.zeros((10, 3))
        future = np.ones((5, 3))
        batch = tok.batch_ground_truth(history, future)
        assert batch.token_ids.shape[0] == 3
        assert batch.token_ids.shape == batch.modality.shape

    def test_mismatched_variable_axis_raises(self, vocab):
        tok = PromptTokenizer(vocab=vocab)
        with pytest.raises(ValueError):
            tok.batch_ground_truth(np.zeros((10, 3)), np.ones((5, 2)))


class TestCalibratedBias:
    def test_cross_modality_penalized(self):
        modality = np.array([TEXT_MODALITY, NUMERIC_MODALITY, TEXT_MODALITY])
        bias = build_calibrated_bias(modality, delta=2.0)
        assert bias[0, 1] == -2.0 and bias[1, 0] == -2.0
        assert bias[0, 2] == 0.0 and bias[1, 1] == 0.0

    def test_symmetry(self):
        modality = np.random.default_rng(0).integers(0, 2, size=12)
        bias = build_calibrated_bias(modality, delta=1.5)
        np.testing.assert_allclose(bias, bias.T)

    def test_batched_shape(self):
        modality = np.zeros((4, 9), dtype=np.int64)
        bias = build_calibrated_bias(modality, delta=1.0)
        assert bias.shape == (4, 1, 9, 9)

    def test_zero_delta_is_all_zero(self):
        modality = np.array([0, 1, 0, 1])
        bias = build_calibrated_bias(modality, delta=0.0)
        np.testing.assert_allclose(bias, np.zeros((4, 4)))

    def test_negative_delta_raises(self):
        with pytest.raises(ValueError):
            build_calibrated_bias(np.array([0, 1]), delta=-1.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.floats(0.1, 5.0))
    def test_values_are_only_zero_or_minus_delta(self, seed, delta):
        modality = np.random.default_rng(seed).integers(0, 2, size=10)
        bias = build_calibrated_bias(modality, delta)
        assert set(np.unique(bias)) <= {0.0, np.float32(-delta)}


class TestBackbones:
    def test_registry_names_ordered_by_size(self):
        sizes = [build_backbone(n).num_parameters() for n in backbone_names()]
        assert sizes == sorted(sizes)

    @pytest.mark.parametrize("name", list(BACKBONE_CONFIGS))
    def test_forward_and_logits_shapes(self, name):
        model = build_backbone(name)
        ids = np.random.default_rng(0).integers(0, 10, size=(2, 7))
        hidden = model(ids)
        assert hidden.shape == (2, 7, model.config.dim)
        logits = model.logits(ids)
        assert logits.shape == (2, 7, model.config.vocab_size)

    def test_causal_backbone_ignores_future_tokens(self):
        """Changing a later token must not affect earlier hidden states."""
        model = build_backbone("gpt2-tiny")
        ids = np.arange(6)[None, :] % 10
        base = model(ids).data[:, :3].copy()
        changed = ids.copy()
        changed[0, -1] = (changed[0, -1] + 1) % 10
        after = model(changed).data[:, :3]
        np.testing.assert_allclose(base, after, atol=1e-6)

    def test_bidirectional_backbone_sees_future(self):
        model = build_backbone("bert-tiny")
        ids = np.arange(6)[None, :] % 10
        base = model(ids).data[:, 0].copy()
        changed = ids.copy()
        changed[0, -1] = (changed[0, -1] + 1) % 10
        after = model(changed).data[:, 0]
        assert np.abs(base - after).max() > 1e-6

    def test_rope_attention_positions_matter(self):
        rope = RotaryMultiHeadAttention(dim=8, num_heads=2, max_length=16)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 6, 8)).astype(np.float32)
        perm = np.array([5, 4, 3, 2, 1, 0])
        out = rope(Tensor(x)).data
        out_perm = rope(Tensor(x[:, perm])).data
        # with RoPE, attention is NOT permutation-equivariant
        assert np.abs(out[:, perm] - out_perm).max() > 1e-4

    def test_last_token_state_matches_forward(self):
        model = build_backbone("gpt2-tiny")
        ids = np.arange(5)[None, :]
        np.testing.assert_allclose(
            model.last_token_state(ids).data,
            model(ids).data[:, -1, :], atol=1e-7)


class TestPretrainingAndCLM:
    def test_pretraining_reduces_loss(self, vocab):
        model = build_backbone("gpt2-tiny", vocab=vocab)
        losses = pretrain_backbone(model, vocab=vocab, steps=30, batch_size=4)
        assert losses[-1] < losses[0] * 0.9

    def test_corpus_batch_shapes(self, vocab):
        corpus = NarrationCorpus(vocab=vocab, config=CorpusConfig(seed=7))
        inputs, targets = corpus.batch(3)
        assert inputs.shape == targets.shape
        assert (targets[inputs == vocab.pad_id] == -1).all()

    def test_clm_freezes_backbone(self, tiny_backbone):
        clm = CalibratedLanguageModel(tiny_backbone, delta=1.0)
        assert clm.backbone.num_parameters(trainable_only=True) == 0

    def test_clm_last_token_embedding_shape(self, tiny_clm, vocab):
        tok = PromptTokenizer(vocab=vocab, value_stride=4)
        prompt = tok.batch_ground_truth(np.zeros((16, 3)), np.ones((8, 3)))
        emb = tiny_clm(prompt)
        assert emb.shape == (3, tiny_clm.dim)
        assert not emb.requires_grad

    def test_calibration_changes_embeddings(self, tiny_backbone, vocab):
        tok = PromptTokenizer(vocab=vocab, value_stride=4)
        prompt = tok.batch_historical(
            np.random.default_rng(0).normal(size=(16, 2)), horizon=8)
        plain = CalibratedLanguageModel(tiny_backbone, delta=0.0)(prompt)
        calibrated = CalibratedLanguageModel(tiny_backbone, delta=3.0)(prompt)
        assert np.abs(plain.data - calibrated.data).max() > 1e-5
