"""Tests for the deployment path: artifact bundles + ForecastService."""

from __future__ import annotations

import json
import os
import threading

import numpy as np
import pytest

from repro.core import TimeKDConfig, TimeKDForecaster
from repro.core.student import StudentModel
from repro.data import StandardScaler, load_dataset, make_forecasting_data
from repro.nn import load_arrays
from repro.serve import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactError,
    ForecastService,
    load_student_artifact,
    read_artifact_info,
    save_student_artifact,
)


def fast_config(**overrides) -> TimeKDConfig:
    base = TimeKDConfig(
        history_length=96, horizon=24, d_model=16, num_heads=2,
        num_layers=1, ffn_dim=32, teacher_epochs=1, student_epochs=1,
        batch_size=8, max_batches_per_epoch=2, llm_pretrain_steps=15,
        prompt_value_stride=8,
    )
    return base.with_updates(**overrides) if overrides else base


def tiny_student_config(**overrides) -> TimeKDConfig:
    base = TimeKDConfig(history_length=32, horizon=8, num_variables=3,
                        d_model=16, num_heads=2, num_layers=1, ffn_dim=32)
    return base.with_updates(**overrides) if overrides else base


def make_bundle(path: str, config: TimeKDConfig | None = None,
                dataset: str = "ETTm1",
                with_scaler: bool = True) -> tuple[TimeKDConfig, StudentModel]:
    """Write a bundle around a fresh (untrained) student."""
    config = config or tiny_student_config()
    student = StudentModel(config)
    student.eval()
    scaler = None
    if with_scaler:
        scaler = StandardScaler().fit(np.random.default_rng(0).normal(
            2.0, 3.0, size=(200, config.num_variables)))
    save_student_artifact(path, student, config, scaler=scaler,
                          metadata={"dataset": dataset})
    return config, student


@pytest.fixture(scope="module")
def small_data():
    series = load_dataset("ETTm1", length=600)
    return make_forecasting_data(series, history_length=96, horizon=24)


@pytest.fixture(scope="module")
def fitted(small_data, tiny_clm, tmp_path_factory):
    """A fitted forecaster, its saved bundle, and reference predictions."""
    model = TimeKDForecaster(fast_config(), clm=tiny_clm).fit(small_data)
    history, _ = small_data.test[0]
    expected = model.predict(history)
    model.compact()
    path = str(tmp_path_factory.mktemp("bundle") / "ettm1-h24.npz")
    model.save(path, metadata={"note": "test bundle"})
    return {"model": model, "path": path, "history": history,
            "expected": expected}


class TestArtifactRoundTrip:
    def test_fit_compact_save_load_predict_bitwise(self, fitted, small_data):
        restored = TimeKDForecaster.from_artifact(fitted["path"])
        np.testing.assert_array_equal(
            restored.predict(fitted["history"]), fitted["expected"])
        # the whole test split, batched, stays bitwise identical too
        histories = np.stack([small_data.test[i][0] for i in range(8)])
        np.testing.assert_array_equal(
            restored.predict(histories), fitted["model"].predict(histories))

    def test_bundle_carries_config_scaler_and_provenance(self, fitted):
        artifact = load_student_artifact(fitted["path"])
        assert artifact.config == fitted["model"].config
        assert artifact.scaler is not None
        np.testing.assert_allclose(artifact.scaler.mean,
                                   fitted["model"].scaler.mean)
        assert artifact.metadata["dataset"] == "ETTm1"
        assert artifact.metadata["note"] == "test bundle"
        assert "embedding_fingerprint" in artifact.metadata
        config, metadata = read_artifact_info(fitted["path"])
        assert config == artifact.config and metadata == artifact.metadata

    def test_restore_builds_no_trainer_clm_or_dataset(
            self, fitted, tiny_clm, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("get_pretrained called on the artifact path")

        monkeypatch.setattr("repro.core.trainer.get_pretrained", boom)
        monkeypatch.setattr("repro.llm.pretrain.get_pretrained", boom)
        forwards = tiny_clm.num_forwards
        restored = TimeKDForecaster.from_artifact(fitted["path"])
        restored.predict(fitted["history"])
        assert tiny_clm.num_forwards - forwards == 0
        assert restored.trainer is None

    def test_trainer_apis_fail_clearly_after_restore(self, fitted):
        restored = TimeKDForecaster.from_artifact(fitted["path"])
        with pytest.raises(RuntimeError, match="artifact bundle"):
            _ = restored.history
        with pytest.raises(RuntimeError, match="artifact bundle"):
            restored.attention_maps(fitted["history"],
                                    np.zeros((24, 7), np.float32))

    def test_raw_value_predict_round_trips_scaler(self, fitted, small_data):
        restored = TimeKDForecaster.from_artifact(fitted["path"])
        scaled = fitted["history"]
        raw = small_data.scaler.inverse_transform(scaled)
        expected = small_data.scaler.inverse_transform(
            restored.predict(scaled.astype(np.float32)))
        got = restored.predict(raw, raw_values=True)
        np.testing.assert_allclose(got, expected, rtol=1e-4, atol=1e-4)

    def test_raw_values_without_scaler_raises(self, tmp_path):
        path = os.path.join(tmp_path, "noscaler.npz")
        config, _ = make_bundle(path, with_scaler=False)
        restored = TimeKDForecaster.from_artifact(path)
        window = np.zeros((config.history_length, config.num_variables))
        with pytest.raises(RuntimeError, match="scaler"):
            restored.predict(window, raw_values=True)

    def test_extensionless_path_round_trips(self, tmp_path):
        # np.savez-style extension appending must be symmetric between
        # save and load, or `save('student')` + `from_artifact('student')`
        # would write one file and look for another
        path = os.path.join(tmp_path, "student")  # no .npz
        config, student = make_bundle(path)
        assert os.path.exists(path + ".npz")
        restored = TimeKDForecaster.from_artifact(path)
        window = np.zeros((config.history_length, config.num_variables),
                          np.float32)
        np.testing.assert_array_equal(restored.predict(window),
                                      student.predict(window[None])[0])

    def test_evaluate_works_without_trainer(self, fitted, small_data):
        restored = TimeKDForecaster.from_artifact(fitted["path"])
        metrics = restored.evaluate(small_data.test)
        in_memory = fitted["model"].evaluate(small_data.test)
        assert metrics == in_memory


class TestArtifactFailureModes:
    def test_truncated_bundle(self, tmp_path):
        path = os.path.join(tmp_path, "m.npz")
        make_bundle(path)
        with open(path, "rb") as fh:
            blob = fh.read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        with pytest.raises(ArtifactError, match="corrupt or truncated"):
            load_student_artifact(path)

    def test_bitflip_in_weights_fails_digest(self, tmp_path):
        path = os.path.join(tmp_path, "m.npz")
        make_bundle(path)
        # flip bytes mid-file; zip entries are stored uncompressed, so
        # this lands in array data while the archive stays readable —
        # retry a few offsets in case we hit a header instead
        with open(path, "rb") as fh:
            blob = bytearray(fh.read())
        for offset in range(len(blob) // 2, len(blob) - 256, 977):
            tampered = bytearray(blob)
            tampered[offset:offset + 8] = b"\xa5" * 8
            with open(path, "wb") as fh:
                fh.write(tampered)
            try:
                load_student_artifact(path)
            except ArtifactError:
                return  # corruption detected
        pytest.fail("no tampering offset was detected")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError):
            load_student_artifact(os.path.join(tmp_path, "absent.npz"))

    def test_not_an_artifact(self, tmp_path):
        path = os.path.join(tmp_path, "weights.npz")
        np.savez(path, w=np.zeros(3))
        with pytest.raises(ArtifactError, match="missing entry"):
            load_student_artifact(path)

    def test_future_format_version_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "m.npz")
        make_bundle(path)
        arrays = load_arrays(path)
        arrays["__format__"] = np.int64(ARTIFACT_FORMAT_VERSION + 1)
        np.savez(path, **arrays)
        with pytest.raises(ArtifactError, match="format"):
            load_student_artifact(path)

    def test_config_weight_mismatch(self, tmp_path):
        path = os.path.join(tmp_path, "m.npz")
        # weights from one shape, config claiming another
        student = StudentModel(tiny_student_config())
        save_student_artifact(
            path, student, tiny_student_config(d_model=32),
            metadata={"dataset": "X"})
        with pytest.raises(ArtifactError, match="do not match"):
            load_student_artifact(path).build_student()

    def test_unknown_config_field_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "m.npz")
        make_bundle(path)
        arrays = load_arrays(path)
        config = json.loads(str(arrays["__config__"]))
        config["from_the_future"] = 1
        arrays["__config__"] = np.array(json.dumps(config))
        np.savez(path, **arrays)
        with pytest.raises(ArtifactError, match="invalid config"):
            load_student_artifact(path)


class TestConfigRoundTrip:
    def test_to_dict_from_dict_identity(self):
        config = fast_config(embedding_cache_dir="/tmp/x",
                             precompute_embeddings=True)
        assert TimeKDConfig.from_dict(config.to_dict()) == config

    def test_missing_fields_use_defaults(self):
        assert TimeKDConfig.from_dict({"horizon": 48}).horizon == 48

    def test_unknown_fields_raise(self):
        with pytest.raises(ValueError, match="unknown TimeKDConfig"):
            TimeKDConfig.from_dict({"bogus_field": 1})


class TestScalerState:
    def test_state_round_trip(self):
        values = np.random.default_rng(3).normal(5.0, 2.0, size=(50, 4))
        scaler = StandardScaler().fit(values)
        clone = StandardScaler.from_state(scaler.state_dict())
        np.testing.assert_array_equal(clone.transform(values),
                                      scaler.transform(values))
        np.testing.assert_array_equal(
            clone.inverse_transform(values), scaler.inverse_transform(values))

    def test_unfitted_state_dict_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().state_dict()


class TestForecastService:
    def test_coalesced_results_match_sequential(self, tmp_path):
        config, student = make_bundle(os.path.join(tmp_path, "m.npz"))
        rng = np.random.default_rng(0)
        windows = rng.normal(size=(24, config.history_length,
                                   config.num_variables)).astype(np.float32)
        with ForecastService(str(tmp_path)) as service:
            sequential = [service.predict(w) for w in windows]
        with ForecastService(str(tmp_path)) as service:
            service.pause()  # let the queue fill so one forward serves all
            futures = [service.submit(w) for w in windows]
            service.resume()
            coalesced = [f.result() for f in futures]
            assert service.stats.max_coalesced == len(windows)
        for a, b in zip(sequential, coalesced):
            np.testing.assert_array_equal(a, b)
        # and both match a direct student forward
        direct = student.predict(windows)
        np.testing.assert_array_equal(np.stack(coalesced), direct)

    def test_concurrent_clients_coalesce(self, tmp_path):
        config, student = make_bundle(os.path.join(tmp_path, "m.npz"))
        window = np.ones((config.history_length, config.num_variables),
                         np.float32)
        results = [None] * 16

        def client(i):
            with_service = service.predict(window)
            results[i] = with_service

        with ForecastService(str(tmp_path)) as service:
            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(16)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        expected = student.predict(window[None])[0]
        for r in results:
            np.testing.assert_array_equal(r, expected)

    def test_lru_eviction(self, tmp_path):
        cfg_a, _ = make_bundle(os.path.join(tmp_path, "a.npz"), dataset="A")
        cfg_b, _ = make_bundle(os.path.join(tmp_path, "b.npz"), dataset="B")
        window = np.zeros((cfg_a.history_length, cfg_a.num_variables),
                          np.float32)
        with ForecastService(str(tmp_path), max_models=1) as service:
            service.predict(window, dataset="A")
            service.predict(window, dataset="B")
            service.predict(window, dataset="A")
            assert service.stats.loads == 3
            assert service.stats.evictions == 2

    def test_unknown_and_ambiguous_keys(self, tmp_path):
        make_bundle(os.path.join(tmp_path, "a.npz"), dataset="A")
        make_bundle(os.path.join(tmp_path, "b.npz"), dataset="B")
        with ForecastService(str(tmp_path)) as service:
            with pytest.raises(KeyError, match="no artifact"):
                service.resolve_key("C", None)
            with pytest.raises(KeyError, match="ambiguous"):
                service.resolve_key(None, 8)

    def test_bad_request_shape_rejected(self, tmp_path):
        make_bundle(os.path.join(tmp_path, "m.npz"))
        with ForecastService(str(tmp_path)) as service:
            with pytest.raises(ValueError, match="shape"):
                service.submit(np.zeros((4, 4), np.float32))

    def test_scan_skips_unreadable_bundles(self, tmp_path):
        make_bundle(os.path.join(tmp_path, "good.npz"))
        with open(os.path.join(tmp_path, "junk.npz"), "wb") as fh:
            fh.write(b"not a zip at all")
        with ForecastService(str(tmp_path)) as service:
            assert len(service.keys()) == 1

    def test_submit_after_close_raises(self, tmp_path):
        config, _ = make_bundle(os.path.join(tmp_path, "m.npz"))
        service = ForecastService(str(tmp_path))
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(np.zeros((config.history_length,
                                     config.num_variables), np.float32))

    def test_raw_requests_match_direct_raw_predict(self, tmp_path):
        path = os.path.join(tmp_path, "m.npz")
        config, _ = make_bundle(path)
        restored = TimeKDForecaster.from_artifact(path)
        raw = np.random.default_rng(4).normal(
            2.0, 3.0, size=(config.history_length, config.num_variables))
        with ForecastService(str(tmp_path)) as service:
            served = service.predict(raw, raw_values=True)
        np.testing.assert_array_equal(
            served, restored.predict(raw, raw_values=True))


class TestThreadedDrain:
    """serve_threads > 1: concurrency across models, FIFO within one."""

    def _multi_bundle_windows(self, tmp_path, datasets=("A", "B", "C")):
        config = None
        for name in datasets:
            config, _ = make_bundle(
                os.path.join(tmp_path, f"{name.lower()}.npz"), dataset=name)
        rng = np.random.default_rng(7)
        return config, {
            name: rng.normal(size=(12, config.history_length,
                                   config.num_variables)).astype(np.float32)
            for name in datasets}

    def test_threaded_drain_matches_single_threaded_bitwise(self, tmp_path):
        config, windows = self._multi_bundle_windows(tmp_path)
        reference = {}
        with ForecastService(str(tmp_path), engine="compiled") as service:
            for name, batch in windows.items():
                reference[name] = [service.predict(w, dataset=name)
                                   for w in batch]
        with ForecastService(str(tmp_path), engine="compiled",
                             serve_threads=4) as service:
            service.pause()  # queue all three models' requests, then drain
            futures = {name: [service.submit(w, dataset=name)
                              for w in batch]
                       for name, batch in windows.items()}
            service.resume()
            for name, per_model in futures.items():
                for future, expected in zip(per_model, reference[name]):
                    np.testing.assert_array_equal(future.result(), expected)

    def test_threaded_drain_preserves_per_model_fifo(self, tmp_path):
        config, windows = self._multi_bundle_windows(tmp_path,
                                                     datasets=("A", "B"))
        with ForecastService(str(tmp_path), serve_threads=2,
                             max_batch=4) as service:
            service.pause()
            futures = [service.submit(w, dataset="A")
                       for w in windows["A"]]
            service.resume()
            results = [f.result() for f in futures]
        # max_batch=4 splits 12 requests into 3 rounds; FIFO order means
        # result i is the forecast of window i, not of a reordered one.
        restored = TimeKDForecaster.from_artifact(
            os.path.join(tmp_path, "a.npz"))
        for window, result in zip(windows["A"], results):
            np.testing.assert_array_equal(result,
                                          restored.predict(window))

    def test_snapshot_aggregates_plan_cache_counters(self, tmp_path):
        config, _ = make_bundle(os.path.join(tmp_path, "m.npz"))
        rng = np.random.default_rng(5)
        with ForecastService(str(tmp_path), engine="compiled",
                             max_batch=8) as service:
            for batch in (1, 3, 1, 3, 8, 1):
                ws = rng.normal(size=(batch, config.history_length,
                                      config.num_variables)).astype(
                                          np.float32)
                service.pause()
                futures = [service.submit(w) for w in ws]
                service.resume()
                for f in futures:
                    f.result()
            stats = service.snapshot().as_dict()
        # One load-time compile, never a request-path rebuild; repeated
        # batch sizes come back as plan-cache hits.
        assert stats["plan_rebuilds"] == 1
        assert stats["plan_misses"] == 3  # batch sizes {1, 3, 8}
        assert stats["plan_hits"] == 3
        assert stats["plan_evictions"] == 0

    def test_module_engine_reports_zero_plan_activity(self, tmp_path):
        config, _ = make_bundle(os.path.join(tmp_path, "m.npz"))
        with ForecastService(str(tmp_path), engine="module") as service:
            service.predict(np.zeros((config.history_length,
                                      config.num_variables), np.float32))
            stats = service.snapshot().as_dict()
        assert stats["plan_rebuilds"] == 0
        assert stats["plan_misses"] == 0

    def test_int8_service_stays_within_budget_of_float32(self, tmp_path):
        from repro.infer import ErrorBudget

        config, _ = make_bundle(os.path.join(tmp_path, "m.npz"))
        window = np.random.default_rng(9).normal(
            size=(config.history_length,
                  config.num_variables)).astype(np.float32)
        with ForecastService(str(tmp_path), engine="compiled") as service:
            exact = service.predict(window).astype(np.float64)
        with ForecastService(str(tmp_path), engine="compiled",
                             precision="int8") as service:
            assert service.precision == "int8"
            served = service.predict(window).astype(np.float64)
        budget = ErrorBudget()
        scale = np.abs(exact).max()
        assert np.abs(served - exact).max() <= 2 * (
            budget.max_abs + budget.max_rel * scale)

    def test_invalid_engine_precision_combinations_fail_fast(self, tmp_path):
        make_bundle(os.path.join(tmp_path, "m.npz"))
        with pytest.raises(ValueError, match="unknown engine precision"):
            ForecastService(str(tmp_path), precision="fp16")
        with pytest.raises(ValueError, match="requires engine='compiled'"):
            ForecastService(str(tmp_path), engine="module",
                            precision="int8")
        with pytest.raises(ValueError, match="serve_threads"):
            ForecastService(str(tmp_path), serve_threads=0)


class TestPressureGauges:
    """Live queue-depth / in-flight gauges the admission layer reads."""

    def _drained(self, service, deadline_s: float = 5.0) -> tuple:
        import time

        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            pressure = service.pressure()
            if pressure == (0, 0):
                return pressure
            time.sleep(0.005)
        return service.pressure()

    def test_gauges_track_queue_then_settle_to_zero(self, tmp_path):
        config, _ = make_bundle(os.path.join(tmp_path, "m.npz"),
                                tiny_student_config())
        window = np.zeros((config.history_length, config.num_variables),
                          dtype=np.float32)
        with ForecastService(str(tmp_path)) as service:
            assert service.pressure() == (0, 0)
            service.pause()
            futures = [service.submit(window) for _ in range(5)]
            assert service.queue_depth() == 5
            assert service.in_flight() == 0
            snapshot = service.snapshot()
            assert snapshot.queue_depth == 5
            assert snapshot.in_flight == 0
            assert snapshot.as_dict()["queue_depth"] == 5
            service.resume()
            for future in futures:
                future.result()
            # the futures resolve inside the batch's guarded run; the
            # gauges settle the moment its finally block exits
            assert self._drained(service) == (0, 0)

    def test_counters_restore_ignores_gauges(self, tmp_path):
        from repro.serve.service import ServiceStats

        stats = ServiceStats.from_dict(
            {"requests": 7, "queue_depth": 3, "in_flight": 2})
        assert stats.requests == 7
        # gauges are instantaneous facts about a live queue; restoring
        # them from a snapshot would fabricate phantom load
        assert stats.queue_depth == 0
        assert stats.in_flight == 0

    def test_merge_sums_gauges_across_shards(self):
        from repro.serve.service import ServiceStats

        merged = ServiceStats.merge([
            ServiceStats(queue_depth=2, in_flight=1),
            ServiceStats(queue_depth=4, in_flight=3),
        ])
        assert merged.queue_depth == 6
        assert merged.in_flight == 4

    def test_router_sums_worker_pressure(self, tmp_path):
        from repro.shard import ShardRouter

        config, _ = make_bundle(os.path.join(tmp_path, "m.npz"),
                                tiny_student_config())
        window = np.zeros((config.history_length, config.num_variables),
                          dtype=np.float32)
        with ShardRouter(str(tmp_path), workers=2) as router:
            router.pause()
            futures = [router.submit(window) for _ in range(4)]
            assert router.queue_depth() == 4
            assert router.pressure()[0] == 4
            router.resume()
            for future in futures:
                future.result()
            assert self._drained(router) == (0, 0)
