"""Tests for the contiguous embedding store and the fast CLM pipeline.

Covers the paper's "Embeddings Storage" contract end to end:
precompute-vs-lazy numerical equivalence, disk round-trips with
fingerprint rejection, batch-gather semantics against the old dict
behaviour, in-batch prompt deduplication, and cache reuse across fits.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import (
    EmbeddingStore,
    StoreFingerprintMismatch,
    TimeKDConfig,
    embedding_fingerprint,
)
from repro.core.trainer import TimeKDTrainer
from repro.data import load_dataset, make_forecasting_data
from repro.llm import PromptTokenizer


@pytest.fixture(scope="module")
def tiny_data():
    series = load_dataset("ETTm1", length=420)
    return make_forecasting_data(series, history_length=96, horizon=12)


def pipeline_config(**overrides) -> TimeKDConfig:
    base = TimeKDConfig(
        history_length=96, horizon=12, d_model=16, num_heads=2,
        num_layers=1, ffn_dim=32, teacher_epochs=1, student_epochs=1,
        batch_size=8, llm_pretrain_steps=25, prompt_value_stride=8,
    )
    return base.with_updates(**overrides) if overrides else base


class TestContiguousStore:
    def test_batch_gather_matches_dict_semantics(self):
        """The fancy-index gather returns exactly what put() stored."""
        rng = np.random.default_rng(0)
        reference_gt = {i: rng.normal(size=(3, 4)).astype(np.float32)
                        for i in range(10)}
        reference_hd = {i: rng.normal(size=(3, 4)).astype(np.float32)
                        for i in range(10)}
        store = EmbeddingStore(capacity=10)
        for i in range(10):
            store.put(i, reference_gt[i], reference_hd[i])
        order = np.array([7, 2, 2, 9, 0])
        gt, hd = store.get_batch(order)
        np.testing.assert_array_equal(gt, np.stack([reference_gt[int(i)]
                                                    for i in order]))
        np.testing.assert_array_equal(hd, np.stack([reference_hd[int(i)]
                                                    for i in order]))

    def test_missing_indices_computed_in_order_with_duplicates(self):
        store = EmbeddingStore()
        calls = []

        def compute(missing):
            calls.append(list(missing))
            n = len(missing)
            return np.ones((n, 2, 4)), np.zeros((n, 2, 4))

        store.get_batch(np.array([3, 0]), compute)
        store.get_batch(np.array([0, 5, 3]), compute)
        assert calls == [[3, 0], [5]]

    def test_mixed_gt_state_raises(self):
        store = EmbeddingStore()
        store.put(0, np.ones((2, 4)), np.zeros((2, 4)))
        store.put(1, None, np.zeros((2, 4)))
        with pytest.raises(RuntimeError, match="inconsistent"):
            store.get_batch(np.array([0, 1]))

    def test_missing_without_compute_raises(self):
        store = EmbeddingStore(capacity=4)
        with pytest.raises(KeyError):
            store.get_batch(np.array([0]))

    def test_grows_past_initial_capacity(self):
        store = EmbeddingStore(capacity=2)
        for i in range(7):
            store.put(i, None, np.full((1, 2), float(i), np.float32))
        assert len(store) == 7
        _, hd = store.get_batch(np.arange(7))
        np.testing.assert_array_equal(hd[:, 0, 0], np.arange(7.0))

    def test_shape_mismatch_rejected(self):
        store = EmbeddingStore()
        store.put(0, None, np.zeros((2, 4)))
        with pytest.raises(ValueError):
            store.put(1, None, np.zeros((3, 4)))

    def test_negative_indices_rejected(self):
        store = EmbeddingStore(capacity=4)
        store.put(3, None, np.zeros((1, 2)))
        with pytest.raises(IndexError):
            store.get_batch(np.array([-1]))
        with pytest.raises(IndexError):
            store.put(-1, None, np.zeros((1, 2)))


class TestDiskRoundTrip:
    def test_save_load_preserves_contents(self, tmp_path):
        store = EmbeddingStore(capacity=4, fingerprint="fp-1")
        rng = np.random.default_rng(1)
        for i in (0, 2):
            store.put(i, rng.normal(size=(2, 3)), rng.normal(size=(2, 3)))
        path = os.path.join(tmp_path, "cache.npz")
        store.save(path)

        loaded = EmbeddingStore.load(path, expected_fingerprint="fp-1")
        assert loaded.fingerprint == "fp-1"
        assert len(loaded) == 2 and loaded.has(2) and not loaded.has(1)
        for i in (0, 2):
            gt_a, hd_a = store.get(i)
            gt_b, hd_b = loaded.get(i)
            np.testing.assert_array_equal(gt_a, gt_b)
            np.testing.assert_array_equal(hd_a, hd_b)

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        store = EmbeddingStore(capacity=1, fingerprint="fp-old")
        store.put(0, None, np.zeros((1, 2)))
        path = os.path.join(tmp_path, "cache.npz")
        store.save(path)
        with pytest.raises(StoreFingerprintMismatch):
            EmbeddingStore.load(path, expected_fingerprint="fp-new")

    def test_gt_free_store_round_trips(self, tmp_path):
        store = EmbeddingStore(capacity=2, fingerprint="fp")
        store.put(0, None, np.ones((1, 2)))
        path = os.path.join(tmp_path, "cache.npz")
        store.save(path)
        loaded = EmbeddingStore.load(path)
        gt, hd = loaded.get_batch(np.array([0]))
        assert gt is None and hd.shape == (1, 1, 2)

    def test_empty_store_save_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            EmbeddingStore().save(os.path.join(tmp_path, "x.npz"))

    def test_dirty_tracks_save_load_cycle(self, tmp_path):
        store = EmbeddingStore(fingerprint="fp")
        assert not store.dirty
        store.put(0, None, np.zeros((1, 2)))
        assert store.dirty
        path = os.path.join(tmp_path, "cache.npz")
        store.save(path)
        assert not store.dirty
        loaded = EmbeddingStore.load(path)
        assert not loaded.dirty
        loaded.put(1, None, np.zeros((1, 2)))
        assert loaded.dirty

    def test_corrupt_cache_recomputed_not_fatal(self, tiny_data, tiny_clm,
                                                tmp_path):
        config = pipeline_config(
            precompute_embeddings=True,
            embedding_cache_dir=str(tmp_path),
            max_batches_per_epoch=1,
        )
        trainer = TimeKDTrainer(config, tiny_data, clm=tiny_clm)
        trainer.prepare_embeddings()
        trainer.save_embeddings()
        path = trainer._embedding_cache_path()
        with open(path, "wb") as fh:
            fh.write(b"not an npz file")
        fresh = TimeKDTrainer(config, tiny_data, clm=tiny_clm)
        fresh.prepare_embeddings()  # must fall back to re-encoding
        assert len(fresh.store) == len(tiny_data.train)


class TestFingerprint:
    def test_sensitive_to_every_field(self):
        base = dict(dataset="ETTm1", delta=1.0, steps=60)
        fp = embedding_fingerprint(**base)
        assert fp == embedding_fingerprint(**base)
        assert fp != embedding_fingerprint(**{**base, "delta": 2.0})
        assert fp != embedding_fingerprint(**{**base, "dataset": "ETTm2"})


class TestPipelineEquivalence:
    def test_precompute_matches_lazy_bitwise(self, tiny_data, tiny_clm):
        lazy = TimeKDTrainer(
            pipeline_config(precompute_embeddings=False), tiny_data,
            clm=tiny_clm)
        pre = TimeKDTrainer(
            pipeline_config(precompute_embeddings=True,
                            precompute_chunk_size=32), tiny_data,
            clm=tiny_clm)
        pre.prepare_embeddings()
        assert len(pre.store) == len(tiny_data.train)

        indices = np.arange(len(tiny_data.train))
        rng = np.random.default_rng(0)
        rng.shuffle(indices)
        for batch in np.array_split(indices, 5):
            gt_lazy, hd_lazy = lazy._teacher_inputs(
                tiny_data.train, batch, None, None, cache=True)
            gt_pre, hd_pre = pre.store.get_batch(batch)
            np.testing.assert_array_equal(hd_lazy, hd_pre)
            np.testing.assert_array_equal(gt_lazy, gt_pre)

    def test_prompt_dedup_is_exact(self, tiny_clm, vocab):
        """A batch with repeated windows encodes each prompt once, and
        the scattered result is bitwise identical to the full batch."""
        tok = PromptTokenizer(vocab=vocab, value_stride=4)
        rng = np.random.default_rng(3)
        window = rng.normal(size=(32, 2))
        prompt = tok.batch_historical(window, horizon=8)
        repeated_ids = np.concatenate(
            [prompt.token_ids, prompt.token_ids, prompt.token_ids[:1]])
        repeated_mod = np.concatenate(
            [prompt.modality, prompt.modality, prompt.modality[:1]])

        before = tiny_clm.num_sequences
        from repro.llm.tokenizer import TokenizedPrompt

        out = tiny_clm(TokenizedPrompt(repeated_ids, repeated_mod))
        assert tiny_clm.num_sequences - before == 2  # 2 unique rows
        reference = tiny_clm(prompt)
        np.testing.assert_array_equal(out.data[:2], reference.data)
        np.testing.assert_array_equal(out.data[2:4], reference.data)
        np.testing.assert_array_equal(out.data[4], reference.data[0])


class TestDiskBackedFit:
    def test_second_fit_reuses_cache_without_clm_forwards(
            self, tiny_data, tiny_clm, tmp_path):
        config = pipeline_config(
            precompute_embeddings=True,
            embedding_cache_dir=str(tmp_path),
            max_batches_per_epoch=1,
        )
        TimeKDTrainer(config, tiny_data, clm=tiny_clm).fit()
        assert any(name.endswith(".npz") for name in os.listdir(tmp_path))

        before = tiny_clm.num_forwards
        trainer = TimeKDTrainer(config, tiny_data, clm=tiny_clm)
        trainer.fit()
        assert tiny_clm.num_forwards == before
        assert len(trainer.store) == len(tiny_data.train)

    def test_changed_delta_invalidates_cache(self, tiny_data, tiny_clm,
                                             tmp_path):
        config = pipeline_config(
            precompute_embeddings=True,
            embedding_cache_dir=str(tmp_path),
            max_batches_per_epoch=1,
        )
        TimeKDTrainer(config, tiny_data, clm=tiny_clm).fit()
        before = tiny_clm.num_forwards
        changed = config.with_updates(calibration_delta=0.5)
        TimeKDTrainer(changed, tiny_data, clm=tiny_clm).fit()
        assert tiny_clm.num_forwards > before
        # both caches now coexist under distinct fingerprints
        assert len([n for n in os.listdir(tmp_path)
                    if n.endswith(".npz")]) == 2
        tiny_clm.delta = 1.0  # restore the session fixture

    def test_lazy_fit_persists_partial_cache(self, tiny_data, tiny_clm,
                                             tmp_path):
        config = pipeline_config(
            precompute_embeddings=False,
            embedding_cache_dir=str(tmp_path),
            max_batches_per_epoch=2,
        )
        trainer = TimeKDTrainer(config, tiny_data, clm=tiny_clm)
        trainer.fit()
        cached = len(trainer.store)
        assert 0 < cached < len(tiny_data.train)

        restored = TimeKDTrainer(config, tiny_data, clm=tiny_clm)
        restored.prepare_embeddings()
        assert len(restored.store) == cached


class TestCompactReclaimsCLM:
    def test_clm_unreachable_after_compact(self, tiny_backbone, tiny_data):
        import gc
        import weakref

        from repro.core import TimeKDForecaster
        from repro.llm import CalibratedLanguageModel

        clm = CalibratedLanguageModel(tiny_backbone, delta=1.0)
        model = TimeKDForecaster(
            pipeline_config(max_batches_per_epoch=1), clm=clm)
        model.fit(tiny_data)
        ref = weakref.ref(clm)
        del clm
        model.compact()
        gc.collect()
        assert ref() is None, "compact() must drop every CLM reference"
        history, _ = tiny_data.test[0]
        assert model.predict(history).shape == (12, 7)
        # refitting would silently substitute a default CLM — refuse
        with pytest.raises(RuntimeError, match="compact"):
            model.fit(tiny_data)
