"""Tests for the TimeKD framework components (repro.core)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EmbeddingStore,
    PlainSubtraction,
    RevIN,
    StudentModel,
    SubtractiveCrossAttention,
    TimeKDConfig,
    correlation_distillation_loss,
    feature_distillation_loss,
    pkd_loss,
)
from repro.core.teacher import CrossModalityTeacher
from repro.nn import Tensor


def tiny_config(**overrides) -> TimeKDConfig:
    base = TimeKDConfig(
        history_length=32, horizon=8, num_variables=3,
        d_model=16, num_heads=2, num_layers=1, ffn_dim=32,
        teacher_epochs=1, student_epochs=1, batch_size=4,
        max_batches_per_epoch=2, llm_pretrain_steps=10,
        prompt_value_stride=4,
    )
    return base.with_updates(**overrides) if overrides else base


class TestConfig:
    def test_ablation_switches(self):
        cfg = tiny_config()
        assert not cfg.ablation("w/o PI").use_privileged_info
        assert cfg.ablation("CA").calibration_delta == 0.0
        assert not cfg.ablation("clm").use_clm
        assert not cfg.ablation("w/o SCA").use_sca
        assert not cfg.ablation("cd").use_correlation_distillation
        assert not cfg.ablation("fd").use_feature_distillation

    def test_unknown_ablation_raises(self):
        with pytest.raises(KeyError):
            tiny_config().ablation("w/o XYZ")

    def test_with_updates_is_functional(self):
        cfg = tiny_config()
        other = cfg.with_updates(horizon=99)
        assert cfg.horizon == 8 and other.horizon == 99


class TestRevIN:
    def test_normalize_zero_mean_unit_var(self):
        revin = RevIN(num_variables=3, affine=False)
        x = Tensor(np.random.default_rng(0).normal(
            5.0, 3.0, size=(2, 20, 3)).astype(np.float32))
        out = revin.normalize(x).data
        np.testing.assert_allclose(out.mean(axis=1), np.zeros((2, 3)), atol=1e-4)
        np.testing.assert_allclose(out.std(axis=1), np.ones((2, 3)), atol=1e-2)

    def test_denormalize_inverts(self):
        revin = RevIN(num_variables=2)
        x = Tensor(np.random.default_rng(1).normal(
            -2.0, 4.0, size=(3, 16, 2)).astype(np.float32))
        recovered = revin.denormalize(revin.normalize(x)).data
        np.testing.assert_allclose(recovered, x.data, atol=1e-3)

    def test_denormalize_before_normalize_raises(self):
        revin = RevIN(2)
        with pytest.raises(RuntimeError):
            revin.denormalize(Tensor(np.zeros((1, 4, 2), np.float32)))

    def test_forward_mode_dispatch(self):
        revin = RevIN(2)
        x = Tensor(np.random.default_rng(2).normal(size=(1, 8, 2)).astype(np.float32))
        revin(x, mode="norm")
        revin(x, mode="denorm")
        with pytest.raises(ValueError):
            revin(x, mode="bogus")

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_roundtrip_property(self, seed):
        revin = RevIN(3, affine=True)
        rng = np.random.default_rng(seed)
        x = Tensor((rng.normal(size=(2, 12, 3)) * rng.uniform(0.5, 5)
                    + rng.normal()).astype(np.float32))
        recovered = revin.denormalize(revin.normalize(x)).data
        np.testing.assert_allclose(recovered, x.data, atol=1e-2)


class TestSCA:
    def test_output_shape(self):
        sca = SubtractiveCrossAttention(dim=16)
        gt = Tensor(np.random.default_rng(0).normal(size=(2, 5, 16)).astype(np.float32))
        hd = Tensor(np.random.default_rng(1).normal(size=(2, 5, 16)).astype(np.float32))
        out = sca(gt, hd)
        assert out.shape == (2, 5, 16)
        assert sca.last_similarity.shape == (2, 16, 16)

    def test_similarity_rows_are_distributions(self):
        sca = SubtractiveCrossAttention(dim=8)
        gt = Tensor(np.random.default_rng(2).normal(size=(1, 4, 8)).astype(np.float32))
        hd = Tensor(np.random.default_rng(3).normal(size=(1, 4, 8)).astype(np.float32))
        sca(gt, hd)
        np.testing.assert_allclose(
            sca.last_similarity.sum(axis=-1), np.ones((1, 8)), atol=1e-5)

    def test_gradients_flow_to_both_inputs(self):
        sca = SubtractiveCrossAttention(dim=8)
        gt = Tensor(np.random.default_rng(4).normal(size=(1, 3, 8)).astype(np.float32),
                    requires_grad=True)
        hd = Tensor(np.random.default_rng(5).normal(size=(1, 3, 8)).astype(np.float32),
                    requires_grad=True)
        sca(gt, hd).sum().backward()
        assert gt.grad is not None and hd.grad is not None

    def test_plain_subtraction_ablation(self):
        plain = PlainSubtraction(dim=8)
        gt = Tensor(np.ones((1, 3, 8), np.float32))
        hd = Tensor(np.ones((1, 3, 8), np.float32))
        out = plain(gt, hd).data
        # identical inputs subtract to zero, LayerNorm keeps it bounded
        assert np.abs(out).max() < 10.0


class TestDistillationLosses:
    def test_zero_when_identical(self):
        attn = np.random.default_rng(0).dirichlet(np.ones(4), size=(2, 4))
        student = Tensor(attn.astype(np.float32), requires_grad=True)
        loss = correlation_distillation_loss(attn, student)
        assert loss.item() == 0.0

    def test_student_receives_gradient(self):
        teacher = np.zeros((1, 3, 3), np.float32)
        student = Tensor(np.ones((1, 3, 3), np.float32), requires_grad=True)
        correlation_distillation_loss(teacher, student).backward()
        assert student.grad is not None and np.abs(student.grad).sum() > 0

    def test_feature_distillation_symmetric_in_magnitude(self):
        t = np.zeros((2, 3, 4), np.float32)
        s_pos = Tensor(np.full((2, 3, 4), 0.5, np.float32))
        s_neg = Tensor(np.full((2, 3, 4), -0.5, np.float32))
        assert feature_distillation_loss(t, s_pos).item() == pytest.approx(
            feature_distillation_loss(t, s_neg).item())

    def test_pkd_respects_ablation_switches(self):
        cfg = tiny_config(use_correlation_distillation=False,
                          use_feature_distillation=False)
        loss = pkd_loss(cfg, np.ones((1, 2, 2)), np.ones((1, 2, 4)),
                        Tensor(np.zeros((1, 2, 2), np.float32)),
                        Tensor(np.zeros((1, 2, 4), np.float32)))
        assert loss.item() == 0.0

    def test_pkd_weights_scale_loss(self):
        cfg1 = tiny_config(lambda_correlation=1.0, lambda_feature=0.0)
        cfg2 = tiny_config(lambda_correlation=2.0, lambda_feature=0.0)
        args = (np.ones((1, 2, 2)), np.ones((1, 2, 4)),
                Tensor(np.zeros((1, 2, 2), np.float32)),
                Tensor(np.zeros((1, 2, 4), np.float32)))
        assert pkd_loss(cfg2, *args).item() == pytest.approx(
            2 * pkd_loss(cfg1, *args).item())

    def test_joint_mode_gradient_reaches_teacher(self):
        teacher = Tensor(np.ones((1, 2, 2), np.float32), requires_grad=True)
        student = Tensor(np.zeros((1, 2, 2), np.float32), requires_grad=True)
        correlation_distillation_loss(
            teacher, student, detach_teacher=False).backward()
        assert teacher.grad is not None


class TestEmbeddingStore:
    def test_put_get(self):
        store = EmbeddingStore()
        store.put(3, np.ones((2, 4)), np.zeros((2, 4)))
        gt, hd = store.get(3)
        assert gt.shape == (2, 4) and hd.shape == (2, 4)

    def test_get_batch_computes_missing_once(self):
        store = EmbeddingStore()
        calls = []

        def compute(missing):
            calls.append(list(missing))
            n = len(missing)
            return np.ones((n, 2, 4)), np.zeros((n, 2, 4))

        store.get_batch(np.array([0, 1]), compute)
        store.get_batch(np.array([1, 2]), compute)
        assert calls == [[0, 1], [2]]

    def test_none_gt_supported(self):
        store = EmbeddingStore()

        def compute(missing):
            return None, np.zeros((len(missing), 2, 4))

        gt, hd = store.get_batch(np.array([0]), compute)
        assert gt is None and hd.shape == (1, 2, 4)

    def test_clear(self):
        store = EmbeddingStore()
        store.put(0, None, np.zeros((1, 1)))
        store.clear()
        assert len(store) == 0


class TestStudentModel:
    def test_forward_shapes(self):
        cfg = tiny_config()
        student = StudentModel(cfg)
        out = student(np.random.default_rng(0).normal(
            size=(2, 32, 3)).astype(np.float32))
        assert out.prediction.shape == (2, 8, 3)
        assert out.features.shape == (2, 3, cfg.d_model)
        assert out.attention.shape == (2, 3, 3)

    def test_accepts_single_window(self):
        student = StudentModel(tiny_config())
        out = student(np.zeros((32, 3), np.float32))
        assert out.prediction.shape == (1, 8, 3)

    def test_predict_is_nograd_numpy(self):
        student = StudentModel(tiny_config())
        pred = student.predict(np.zeros((1, 32, 3), np.float32))
        assert isinstance(pred, np.ndarray)


class TestTeacher:
    def test_clm_required_when_enabled(self):
        with pytest.raises(ValueError):
            CrossModalityTeacher(tiny_config(), clm=None)

    def test_value_path_shapes(self):
        cfg = tiny_config(use_clm=False)
        teacher = CrossModalityTeacher(cfg)
        history = np.zeros((2, 32, 3), np.float32)
        future = np.zeros((2, 8, 3), np.float32)
        gt, hd = teacher.embed_values(history, future)
        out = teacher(gt, hd)
        assert out.reconstruction.shape == (2, 8, 3)
        assert out.embeddings.shape == (2, 3, cfg.d_model)
        assert out.attention.shape == (2, 3, 3)

    def test_without_privileged_info_ignores_gt(self):
        cfg = tiny_config(use_clm=False, use_privileged_info=False)
        teacher = CrossModalityTeacher(cfg)
        history = np.random.default_rng(0).normal(size=(1, 32, 3)).astype(np.float32)
        future = np.random.default_rng(1).normal(size=(1, 8, 3)).astype(np.float32)
        gt, hd = teacher.embed_values(history, future)
        a = teacher(gt, hd).reconstruction.data
        b = teacher(None, hd).reconstruction.data
        np.testing.assert_allclose(a, b, atol=1e-6)

    def test_clm_teacher_with_backbone(self, tiny_clm):
        cfg = tiny_config()
        teacher = CrossModalityTeacher(cfg, clm=tiny_clm)
        from repro.data.prompts import PromptFactory
        from repro.llm import Vocabulary

        factory = PromptFactory(Vocabulary(), value_stride=4)
        history = np.random.default_rng(2).normal(size=(32, 3))
        future = np.random.default_rng(3).normal(size=(8, 3))
        gt_p = factory.ground_truth(history, future)
        hd_p = factory.historical(history, 8)
        gt, hd = teacher.encode_prompts(gt_p, hd_p, num_variables=3)
        assert gt.shape == (1, 3, tiny_clm.dim)
        out = teacher(gt, hd)
        assert out.reconstruction.shape == (1, 8, 3)
