"""Tests for metrics, efficiency probes and result formatting."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    best_by,
    forecast_metrics,
    format_table,
    mae,
    mape,
    measure_efficiency,
    mse,
    relative_improvement,
    rmse,
    save_csv,
    smape,
)


class TestMetrics:
    def test_zero_error(self):
        x = np.random.default_rng(0).normal(size=(4, 5))
        assert mse(x, x) == 0.0
        assert mae(x, x) == 0.0
        assert rmse(x, x) == 0.0

    def test_known_values(self):
        p = np.array([1.0, 2.0])
        t = np.array([0.0, 0.0])
        assert mse(p, t) == pytest.approx(2.5)
        assert mae(p, t) == pytest.approx(1.5)
        assert rmse(p, t) == pytest.approx(np.sqrt(2.5))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))

    def test_mape_guards_zero_targets(self):
        assert np.isfinite(mape(np.ones(3), np.zeros(3)))

    def test_smape_bounded(self):
        rng = np.random.default_rng(1)
        value = smape(rng.normal(size=100), rng.normal(size=100))
        assert 0.0 <= value <= 2.0

    def test_forecast_metrics_keys(self):
        out = forecast_metrics(np.ones(4), np.zeros(4))
        assert set(out) == {"mse", "mae", "rmse", "mape", "smape"}

    def test_forecast_metrics_values_match_functions(self):
        rng = np.random.default_rng(7)
        p = rng.normal(size=(6, 3))
        t = rng.normal(size=(6, 3))
        out = forecast_metrics(p, t)
        assert out["mape"] == pytest.approx(mape(p, t))
        assert out["smape"] == pytest.approx(smape(p, t))
        assert out["rmse"] == pytest.approx(rmse(p, t))

    def test_forecast_metrics_mape_zero_target_guarded(self):
        # the dict path must keep mape's zero-target guard: all-zero
        # targets still produce a finite value, not inf/nan
        out = forecast_metrics(np.ones(4), np.zeros(4))
        assert np.isfinite(out["mape"])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_rmse_is_sqrt_mse(self, seed):
        rng = np.random.default_rng(seed)
        p, t = rng.normal(size=10), rng.normal(size=10)
        assert rmse(p, t) == pytest.approx(np.sqrt(mse(p, t)))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_mae_le_rmse(self, seed):
        """Jensen: MAE <= RMSE always."""
        rng = np.random.default_rng(seed)
        p, t = rng.normal(size=20), rng.normal(size=20)
        assert mae(p, t) <= rmse(p, t) + 1e-12


class TestEfficiency:
    def test_measures_all_fields(self):
        report = measure_efficiency(
            "toy", trainable_params=1_500_000,
            train_epoch=lambda: np.zeros((256, 256)).sum(),
            infer_once=lambda: None, inference_repeats=2)
        row = report.as_row()
        assert row["model"] == "toy"
        assert row["trainable_params_M"] == 1.5
        assert row["train_s_per_epoch"] >= 0
        assert row["memory_MiB"] >= 0
        assert row["inference_s_per_iter"] >= 0

    def test_memory_scales_with_allocation(self):
        small = measure_efficiency(
            "s", 0, lambda: np.zeros((64, 64)).sum(), lambda: None)
        big = measure_efficiency(
            "b", 0, lambda: np.zeros((2048, 2048)).sum(), lambda: None)
        assert big.peak_memory_mib > small.peak_memory_mib

    def test_preserves_outer_tracemalloc_trace(self):
        import tracemalloc

        assert not tracemalloc.is_tracing()
        tracemalloc.start()
        try:
            keep_alive = np.zeros((512, 512))
            before = tracemalloc.get_traced_memory()[0]
            measure_efficiency(
                "nested", 0, lambda: np.zeros((256, 256)).sum(),
                lambda: None, inference_repeats=1)
            # the outer trace must survive and still track allocations
            assert tracemalloc.is_tracing()
            after = tracemalloc.get_traced_memory()[0]
            assert after >= before - 1024  # keep_alive still accounted
            assert keep_alive is not None
        finally:
            tracemalloc.stop()


class TestResults:
    ROWS = [
        {"model": "A", "mse": 0.5, "dataset": "X"},
        {"model": "B", "mse": 0.3, "dataset": "X"},
        {"model": "A", "mse": 0.9, "dataset": "Y"},
        {"model": "B", "mse": 1.0, "dataset": "Y"},
    ]

    def test_format_table_contains_all_cells(self):
        table = format_table(self.ROWS, title="T")
        assert "T" in table and "model" in table
        assert "0.5000" in table and "1.0000" in table

    def test_format_empty(self):
        assert "empty" in format_table([], title="none")

    def test_save_csv_roundtrip(self, tmp_path):
        path = save_csv(self.ROWS, os.path.join(tmp_path, "out.csv"))
        with open(path) as fh:
            lines = fh.read().strip().splitlines()
        assert lines[0] == "model,mse,dataset"
        assert len(lines) == 5

    def test_save_csv_empty_raises(self, tmp_path):
        with pytest.raises(ValueError):
            save_csv([], os.path.join(tmp_path, "x.csv"))

    def test_best_by_global(self):
        assert best_by(self.ROWS, "mse")["model"] == "B"

    def test_best_by_grouped(self):
        winners = best_by(self.ROWS, "mse", group="dataset")
        assert winners["X"]["model"] == "B"
        assert winners["Y"]["model"] == "A"

    def test_relative_improvement(self):
        assert relative_improvement(0.9, 1.0) == pytest.approx(0.1)
        assert relative_improvement(1.0, 0.0) == 0.0
