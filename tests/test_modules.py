"""Tests for the module system and core layers (repro.nn)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    Parameter,
    PositionalEncoding,
    RMSNorm,
    Sequential,
    SinusoidalPositionalEncoding,
    Tensor,
)


class _Toy(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8)
        self.fc2 = Linear(8, 2)
        self.scale = Parameter(np.ones(1, np.float32))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


class TestModuleSystem:
    def test_named_parameters_paths(self):
        names = dict(_Toy().named_parameters())
        assert "fc1.weight" in names and "fc2.bias" in names
        assert "scale" in names

    def test_num_parameters(self):
        toy = _Toy()
        assert toy.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2 + 1

    def test_freeze_unfreeze(self):
        toy = _Toy()
        toy.freeze()
        assert toy.num_parameters(trainable_only=True) == 0
        toy.unfreeze()
        assert toy.num_parameters(trainable_only=True) == toy.num_parameters()

    def test_train_eval_propagates(self):
        seq = Sequential(Linear(2, 2), Dropout(0.5))
        seq.eval()
        assert all(not m.training for m in seq.modules())

    def test_state_dict_roundtrip(self):
        a, b = _Toy(), _Toy()
        b.load_state_dict(a.state_dict())
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)).astype(np.float32))
        np.testing.assert_allclose(a(x).data, b(x).data, atol=1e-6)

    def test_state_dict_mismatch_raises(self):
        state = _Toy().state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            _Toy().load_state_dict(state)

    def test_state_dict_shape_mismatch_raises(self):
        state = _Toy().state_dict()
        state["scale"] = np.ones(5)
        with pytest.raises(ValueError):
            _Toy().load_state_dict(state)

    def test_module_list_traversal(self):
        class Holder(Module):
            def __init__(self):
                super().__init__()
                self.layers = ModuleList([Linear(2, 2), Linear(2, 2)])

            def forward(self, x):
                for l in self.layers:
                    x = l(x)
                return x

        holder = Holder()
        assert holder.num_parameters() == 2 * (2 * 2 + 2)

    def test_zero_grad(self):
        toy = _Toy()
        x = Tensor(np.ones((1, 4), np.float32))
        toy(x).sum().backward()
        assert any(p.grad is not None for p in toy.parameters())
        toy.zero_grad()
        assert all(p.grad is None for p in toy.parameters())


class TestLinear:
    def test_shapes(self):
        layer = Linear(5, 3)
        out = layer(Tensor(np.zeros((2, 7, 5), np.float32)))
        assert out.shape == (2, 7, 3)

    def test_no_bias(self):
        layer = Linear(4, 2, bias=False)
        assert layer.bias is None
        assert layer.num_parameters() == 8


class TestNorms:
    def test_layernorm_zero_mean_unit_var(self):
        layer = LayerNorm(16)
        x = Tensor(np.random.default_rng(0).normal(
            2.0, 5.0, size=(4, 16)).astype(np.float32))
        out = layer(x).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)

    def test_layernorm_grad_flows_to_gamma_beta(self):
        layer = LayerNorm(8)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 8)).astype(np.float32))
        layer(x).sum().backward()
        assert layer.gamma.grad is not None
        assert layer.beta.grad is not None

    def test_rmsnorm_unit_rms(self):
        layer = RMSNorm(16)
        x = Tensor(np.random.default_rng(2).normal(
            0.0, 3.0, size=(4, 16)).astype(np.float32))
        out = layer(x).data
        rms = np.sqrt((out ** 2).mean(axis=-1))
        np.testing.assert_allclose(rms, np.ones(4), atol=1e-2)


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)
        np.testing.assert_allclose(out.data[0, 0], emb.weight.data[1])

    def test_out_of_range_raises(self):
        emb = Embedding(5, 2)
        with pytest.raises(IndexError):
            emb(np.array([7]))

    def test_gradient_reaches_rows(self):
        emb = Embedding(6, 3)
        emb(np.array([0, 0, 5])).sum().backward()
        grads = emb.weight.grad
        assert grads[0].sum() == 6.0  # two lookups x 3 dims
        assert grads[1].sum() == 0.0


class TestPositional:
    def test_learned_additive(self):
        pe = PositionalEncoding(10, 4)
        x = Tensor(np.zeros((2, 5, 4), np.float32))
        np.testing.assert_allclose(pe(x).data[0], pe.weight.data[:5])

    def test_learned_too_long_raises(self):
        pe = PositionalEncoding(4, 2)
        with pytest.raises(ValueError):
            pe(Tensor(np.zeros((1, 9, 2), np.float32)))

    def test_sinusoidal_bounded(self):
        pe = SinusoidalPositionalEncoding(50, 8)
        x = Tensor(np.zeros((1, 50, 8), np.float32))
        out = pe(x).data
        assert np.abs(out).max() <= 1.0 + 1e-6


class TestDropout:
    def test_eval_is_identity(self):
        drop = Dropout(0.5)
        drop.eval()
        x = Tensor(np.ones((3, 3), np.float32))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_train_preserves_expectation(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((200, 200), np.float32))
        out = drop(x).data
        np.testing.assert_allclose(out.mean(), 1.0, atol=0.05)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
