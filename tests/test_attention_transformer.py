"""Tests for attention and the Pre-LN transformer encoder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import MultiHeadAttention, Tensor, TransformerEncoder, causal_mask
from repro.nn.attention import NEG_INF
from repro.nn.transformer import FeedForward, PreLNEncoderLayer


class TestCausalMask:
    def test_structure(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4)
        assert (mask[np.tril_indices(4)] == 0).all()
        assert (mask[np.triu_indices(4, k=1)] == NEG_INF).all()


class TestMultiHeadAttention:
    def test_self_attention_shape(self):
        mha = MultiHeadAttention(dim=16, num_heads=4)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 16)).astype(np.float32))
        assert mha(x).shape == (2, 5, 16)

    def test_indivisible_heads_raises(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(dim=10, num_heads=3)

    def test_weights_are_distribution_and_differentiable(self):
        mha = MultiHeadAttention(dim=8, num_heads=2)
        x = Tensor(np.random.default_rng(1).normal(size=(1, 4, 8)).astype(np.float32),
                   requires_grad=True)
        out, weights = mha(x, return_weights=True)
        np.testing.assert_allclose(weights.data.sum(axis=-1),
                                   np.ones((1, 4)), atol=1e-5)
        weights.sum().backward()  # must be differentiable (CD loss path)
        assert x.grad is not None

    def test_causal_bias_blocks_future(self):
        mha = MultiHeadAttention(dim=8, num_heads=2)
        x = Tensor(np.random.default_rng(2).normal(size=(1, 5, 8)).astype(np.float32))
        _, weights = mha(x, attn_bias=causal_mask(5), return_weights=True)
        upper = np.triu(weights.data[0], k=1)
        np.testing.assert_allclose(upper, np.zeros_like(upper), atol=1e-6)

    def test_cross_attention_shapes(self):
        mha = MultiHeadAttention(dim=8, num_heads=2)
        q = Tensor(np.zeros((2, 3, 8), np.float32))
        kv = Tensor(np.zeros((2, 7, 8), np.float32))
        assert mha(q, kv, kv).shape == (2, 3, 8)

    def test_additive_bias_shifts_attention(self):
        mha = MultiHeadAttention(dim=8, num_heads=1)
        x = Tensor(np.random.default_rng(3).normal(size=(1, 3, 8)).astype(np.float32))
        bias = np.zeros((3, 3), np.float32)
        bias[:, 0] = 50.0  # force everyone to attend to token 0
        _, weights = mha(x, attn_bias=bias, return_weights=True)
        np.testing.assert_allclose(weights.data[0, :, 0],
                                   np.ones(3), atol=1e-3)

    def test_permutation_equivariance_without_positions(self):
        """Self-attention (no positional encoding) is permutation-equivariant."""
        mha = MultiHeadAttention(dim=8, num_heads=2)
        rng = np.random.default_rng(4)
        x = rng.normal(size=(1, 5, 8)).astype(np.float32)
        perm = rng.permutation(5)
        out = mha(Tensor(x)).data
        out_perm = mha(Tensor(x[:, perm])).data
        np.testing.assert_allclose(out[:, perm], out_perm, atol=1e-5)


class TestTransformerEncoder:
    def test_forward_shape_and_attention(self):
        enc = TransformerEncoder(dim=16, num_heads=2, num_layers=3)
        x = Tensor(np.random.default_rng(5).normal(size=(2, 6, 16)).astype(np.float32))
        out, attn = enc(x, return_attention=True)
        assert out.shape == (2, 6, 16)
        assert attn.shape == (2, 6, 6)

    def test_gradients_reach_all_parameters(self):
        enc = TransformerEncoder(dim=8, num_heads=2, num_layers=2)
        x = Tensor(np.random.default_rng(6).normal(size=(1, 4, 8)).astype(np.float32))
        enc(x).sum().backward()
        missing = [n for n, p in enc.named_parameters() if p.grad is None]
        assert not missing, f"no grad for {missing}"

    def test_feedforward_activations(self):
        for act in ("relu", "gelu"):
            ffn = FeedForward(8, 16, activation=act)
            out = ffn(Tensor(np.random.default_rng(7).normal(
                size=(2, 8)).astype(np.float32)))
            assert out.shape == (2, 8)
        with pytest.raises(ValueError):
            FeedForward(8, 16, activation="tanh")

    def test_residual_path_identity_at_zero_weights(self):
        """Zeroing attention/FFN output weights leaves residual stream."""
        layer = PreLNEncoderLayer(8, 2, 16)
        layer.attention.out_proj.weight.data[:] = 0
        layer.attention.out_proj.bias.data[:] = 0
        layer.ffn.fc2.weight.data[:] = 0
        layer.ffn.fc2.bias.data[:] = 0
        x = Tensor(np.random.default_rng(8).normal(size=(1, 3, 8)).astype(np.float32))
        np.testing.assert_allclose(layer(x).data, x.data, atol=1e-6)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(1, 3), st.integers(2, 8))
    def test_output_finite_for_random_inputs(self, seed, layers, seq):
        enc = TransformerEncoder(dim=8, num_heads=2, num_layers=layers)
        x = Tensor(np.random.default_rng(seed).normal(
            scale=5.0, size=(1, seq, 8)).astype(np.float32))
        assert np.isfinite(enc(x).data).all()
