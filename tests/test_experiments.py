"""Smoke tests for the experiment harness (micro scale).

Each paper artefact's code path must run end-to-end and produce rows of
the right shape.  A micro :class:`ExperimentScale` keeps this fast; the
benchmarks exercise the quick scale and ``REPRO_FULL=1`` the paper grid.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.experiments.common import ExperimentScale, prepare_data, run_model

MICRO = ExperimentScale(
    data_length=500, d_model=16, num_heads=2, num_layers=1, ffn_dim=32,
    epochs=1, teacher_epochs=1, batch_size=8, max_batches=2,
    llm_pretrain_steps=10, prompt_value_stride=8,
)


class TestCommon:
    def test_prepare_data_shapes(self):
        data = prepare_data("ETTm1", 24, MICRO)
        history, future = data.train[0]
        assert history.shape == (96, 7)
        assert future.shape == (24, 7)

    @pytest.mark.parametrize("name", ["TimeKD", "iTransformer", "PatchTST"])
    def test_run_model_row_schema(self, name):
        data = prepare_data("ETTm1", 24, MICRO)
        row = run_model(name, data, MICRO)
        assert row["model"] == name
        assert np.isfinite(row["mse"]) and np.isfinite(row["mae"])


class TestTables:
    def test_table1_grid(self):
        rows = table1.run(scale=MICRO, datasets=["ETTm1"], horizons=[24],
                          models=["TimeKD", "iTransformer"])
        assert len(rows) == 2
        assert {r["model"] for r in rows} == {"TimeKD", "iTransformer"}
        assert all(r["dataset"] == "ETTm1" and r["horizon"] == 24
                   for r in rows)

    def test_table2_pems(self):
        rows = table2.run(scale=MICRO, datasets=["PEMS08"],
                          models=["TimeKD", "iTransformer"])
        assert len(rows) == 2
        assert all(r["horizon"] == 12 for r in rows)

    def test_table3_backbones(self):
        rows = table3.run(scale=MICRO, backbones=["bert-tiny", "gpt2-tiny"])
        assert len(rows) == 2
        sizes = [r["model_size_M"] for r in rows]
        assert sizes[0] < sizes[1]  # bert < gpt2

    def test_table4_efficiency(self):
        rows = table4.run(scale=MICRO, models=["TimeKD", "iTransformer"])
        assert len(rows) == 2
        for row in rows:
            assert row["trainable_params_M"] > 0
            assert row["inference_s_per_iter"] > 0

    def test_table5_fewshot(self):
        rows = table5.run(scale=MICRO, datasets=["ETTm1"],
                          models=["TimeKD", "iTransformer"])
        assert all(r["train_fraction"] == 0.1 for r in rows)

    def test_table6_zeroshot(self):
        rows = table6.run(scale=MICRO,
                          transfers=[("ETTm1", "ETTm2")],
                          models=["TimeKD", "iTransformer"])
        assert len(rows) == 2
        assert all(r["transfer"] == "ETTm1->ETTm2" for r in rows)
        assert all(np.isfinite(r["mse"]) for r in rows)


class TestFigures:
    def test_figure6_variants(self):
        rows = figure6.run(scale=MICRO, datasets=["ETTm1"],
                           variants=["TimeKD", "w/o FD"])
        assert {r["model"] for r in rows} == {"TimeKD", "w/o FD"}

    def test_figure7_fractions(self):
        rows = figure7.run(scale=MICRO, datasets=["ETTm1"],
                           fractions=[0.5, 1.0])
        fractions = [r["train_fraction"] for r in rows]
        assert fractions == [0.5, 1.0]

    def test_figure8_attention_maps(self):
        maps = figure8.run(scale=MICRO)
        assert maps["privileged"].shape == (7, 7)
        assert maps["student"].shape == (7, 7)
        np.testing.assert_allclose(maps["student"].sum(axis=-1),
                                   np.ones(7), atol=1e-4)

    def test_figure8_heatmap_rendering(self):
        matrix = np.random.default_rng(0).random((3, 3))
        art = figure8.render_heatmap(matrix, ["a", "b", "c"])
        assert art.count("\n") == 2

    def test_figure9_feature_maps(self):
        maps = figure9.run(scale=MICRO)
        for key in ("privileged", "student"):
            matrix = maps[key]
            assert matrix.shape == (7, 7)
            np.testing.assert_allclose(matrix, matrix.T, atol=1e-4)

    def test_figure10_series(self):
        out = figure10.run(scale=MICRO)
        assert out["prediction"].shape == out["ground_truth"].shape
        assert out["prediction"].shape[1] == len(figure10.VARIABLES)
        assert set(out["correlations"]) == set(figure10.VARIABLES)
