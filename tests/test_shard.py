"""Sharded runtime: hash ring, router, replay parity, durability.

The headline invariant mirrors the repo's replay-parity guarantee one
level up: routing ticks across N shared-nothing workers must be
**bitwise invisible** — an N-worker replay produces exactly the bytes
of the 1-worker (and the unsharded) run, and recovery across a worker
-count change (resharding) lands on the same bytes too.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.durable import (
    RecoveryError,
    RecoveryStages,
    ShardedRecoverer,
    ShardedSnapshotter,
    StatefulRecoverer,
    StreamSnapshotter,
    flip_digest_byte,
    inject,
    latest_snapshot,
    snapshot_shards,
    wal_shards,
)
from repro.serve import ForecastService
from repro.shard import (
    DEFAULT_VNODES,
    HashRing,
    ShardRouter,
    ShardWorker,
    ShardedStreamingForecaster,
)
from repro.stream import StreamingForecaster, replay, verify_parity

from test_durable import M, N, make_bundle

KEYS = [("tenant", f"s{index}") for index in range(40)]


@pytest.fixture()
def bundle_dir(tmp_path):
    directory = str(tmp_path / "artifacts")
    os.makedirs(directory)
    make_bundle(directory)
    return directory


@pytest.fixture()
def walk(rng) -> np.ndarray:
    return np.cumsum(rng.normal(size=(150, N)), axis=0)


def make_sharded(bundle_dir, workers, engine="module", vnodes=DEFAULT_VNODES,
                 **overrides):
    router = ShardRouter(bundle_dir, workers=workers, vnodes=vnodes,
                         engine=engine)
    options = dict(cadence=5, raw_values=True)
    options.update(overrides)
    return router, ShardedStreamingForecaster(router, "ETTm1", M, **options)


def make_single(bundle_dir, engine="module", **overrides):
    service = ForecastService(bundle_dir, engine=engine)
    options = dict(cadence=5, raw_values=True)
    options.update(overrides)
    return service, StreamingForecaster(service, "ETTm1", M, **options)


def replay_keys(forecaster, walk, keys, ticks, first_tick=0):
    return [replay(forecaster, walk, key=key, max_ticks=ticks,
                   first_tick=first_tick) for key in keys]


def feed(forecaster, walk, keys, ticks, first_tick=0):
    """Deterministic ingest: resolve every forecast before the next tick.

    ``replay()`` lets appends race the drain thread — fine for
    throughput, but drift scoring skips forecasts whose future has not
    resolved yet, so the monitor trajectory depends on timing.  Waiting
    on each future pins that trajectory, making cross-run state
    comparisons exact.
    """
    interval = forecaster.interval
    for key in keys:
        for index in range(first_tick, min(ticks, len(walk))):
            future = forecaster.append(key, index * interval, walk[index])
            if future is not None:
                future.result()


def assert_same_universe(a, b, *, monitors=True, seq=True) -> None:
    """Per-key streaming state of ``a`` and ``b`` is bitwise identical.

    Works across the sharded/unsharded divide: only the per-key surface
    (buffers, scaler moments, drift monitors) and cluster totals are
    compared — never where a key happened to live.

    ``seq=False`` skips the cluster tick counter: after an ``N → M``
    reshard every target restarts at the highest source seq (chain
    monotonicity), so the summed counter legitimately differs.
    ``monitors=False`` skips drift monitors for runs that append after
    a recovery: in-flight forecast futures are not persisted, so rows
    they covered are scored in the uninterrupted run but (correctly)
    skipped in the recovered one.
    """
    assert sorted(map(str, a.keys())) == sorted(map(str, b.keys()))
    for key in b.keys():
        sa, sb = a.state(key), b.state(key)
        assert sa.count == sb.count
        # Compare the valid region only — bytes past ``count`` are
        # uninitialized allocator garbage, not state.
        held = min(sa.count, sa.capacity)
        assert sa.tail(held).tobytes() == sb.tail(held).tobytes()
        assert sa.mean.tobytes() == sb.mean.tobytes()
        assert sa._m2.tobytes() == sb._m2.tobytes()
        if monitors:
            assert a.monitor(key).as_dict() == b.monitor(key).as_dict()
    if seq:
        assert a.seq == b.seq


def merged_stream_counters(forecaster) -> dict:
    stream = dict(forecaster.snapshot()["stream"])
    stream.pop("workers", None)
    return stream


# ----------------------------------------------------------------------
# the hash ring
# ----------------------------------------------------------------------
class TestHashRing:
    def test_assignment_is_deterministic_across_instances(self):
        first, second = HashRing(4), HashRing(4)
        for key in KEYS:
            assert first.shard_for(key) == second.shard_for(key)

    def test_assignment_is_process_stable(self):
        # Pinned against blake2b: a changed constant here means every
        # persisted shard label on disk just silently moved.
        ring = HashRing(4, vnodes=64)
        assert [ring.shard_for(("tenant", f"s{i}")) for i in range(8)] == \
            [ring.shard_for(("tenant", f"s{i}")) for i in range(8)]
        assert ring.shard_for("pinned-key") == HashRing(4).shard_for(
            "pinned-key")

    def test_partition_agrees_with_shard_for(self):
        ring = HashRing(3)
        groups = ring.partition(KEYS)
        assert sorted(key for group in groups.values() for key in group) \
            == sorted(KEYS)
        for shard, group in groups.items():
            assert all(ring.shard_for(key) == shard for key in group)

    def test_growing_moves_keys_only_to_the_new_shard(self):
        ring = HashRing(4)
        before = {key: ring.shard_for(key) for key in KEYS}
        ring.add_shard(4)
        for key in KEYS:
            after = ring.shard_for(key)
            assert after == before[key] or after == 4

    def test_removal_moves_only_the_removed_shards_keys(self):
        ring = HashRing(4)
        before = {key: ring.shard_for(key) for key in KEYS}
        ring.remove_shard(2)
        for key in KEYS:
            if before[key] != 2:
                assert ring.shard_for(key) == before[key]
            else:
                assert ring.shard_for(key) != 2

    def test_balance_stays_near_fair_share(self):
        ring = HashRing(4)
        keys = [("tenant", f"series-{index}") for index in range(2000)]
        sizes = [len(group) for group in ring.partition(keys).values()]
        assert len(sizes) == 4
        assert max(sizes) <= 2 * (len(keys) / 4)
        assert min(sizes) >= (len(keys) / 4) / 2

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)
        ring = HashRing(2)
        with pytest.raises(ValueError):
            ring.add_shard(1)  # already placed
        with pytest.raises(ValueError):
            ring.remove_shard(7)  # never placed
        ring.remove_shard(1)
        with pytest.raises(ValueError):
            ring.remove_shard(0)  # refuse an empty ring
        assert ring.shards == [0] and len(ring) == 1 and 0 in ring


# ----------------------------------------------------------------------
# the router
# ----------------------------------------------------------------------
class TestShardRouter:
    def test_routed_predict_matches_direct_service(self, bundle_dir, rng):
        window = rng.normal(size=(32, N))
        with ForecastService(bundle_dir) as service:
            direct = service.predict(window, "ETTm1", M)
        with ShardRouter(bundle_dir, workers=3) as router:
            routed = router.predict(window, "ETTm1", M)
        assert routed.tobytes() == direct.tobytes()

    def test_model_traffic_lands_on_one_worker(self, bundle_dir, rng):
        with ShardRouter(bundle_dir, workers=3) as router:
            futures = [router.submit(rng.normal(size=(32, N)),
                                     "ETTm1", M) for _ in range(6)]
            for future in futures:
                future.result()
            owner = router.worker_for_model(("ETTm1", M)).shard
            per_shard = {shard: stats.requests
                         for shard, stats in router.shard_snapshots().items()}
            assert per_shard[owner] == 6
            assert sum(per_shard.values()) == 6
            merged = router.snapshot()
            assert merged.requests == 6 and merged.served == 6

    def test_registry_surface_matches_service(self, bundle_dir):
        with ShardRouter(bundle_dir, workers=2) as router:
            assert router.keys() == [("ETTm1", M)]
            assert router.resolve_key() == ("ETTm1", M)
            assert router.path_for(("ETTm1", M)).endswith("m.npz")
            assert router.config_for(("ETTm1", M)).horizon == M
            with pytest.raises(KeyError):
                router.path_for(("Nope", 1))

    def test_single_worker_ring_is_valid(self, bundle_dir, rng):
        with ShardRouter(bundle_dir, workers=1) as router:
            assert router.predict(rng.normal(size=(32, N)),
                                  "ETTm1", M).shape == (M, N)

    def test_worker_shape_validation(self, bundle_dir):
        with pytest.raises(ValueError):
            ShardRouter(bundle_dir, workers=0)


# ----------------------------------------------------------------------
# sharded streaming parity
# ----------------------------------------------------------------------
class TestShardedReplayParity:
    @pytest.mark.parametrize("engine", ["module", "compiled"])
    def test_sharded_replay_is_bitwise_identical(self, bundle_dir, walk,
                                                 engine):
        keys = KEYS[:6]
        service, single = make_single(bundle_dir, engine=engine)
        feed(single, walk, keys, ticks=60)

        for workers in (2, 4):
            router, sharded = make_sharded(bundle_dir, workers,
                                           engine=engine)
            assert len({sharded.shard_for(key) for key in keys}) > 1
            feed(sharded, walk, keys, ticks=60)
            assert_same_universe(sharded, single)
            assert merged_stream_counters(sharded) == \
                merged_stream_counters(single)
            router.close()
        service.close()

    def test_verify_parity_through_the_sharded_front_end(self, bundle_dir,
                                                         walk):
        router, sharded = make_sharded(bundle_dir, workers=2)
        reports = replay_keys(sharded, walk, KEYS[:4], ticks=55)
        compared = sum(verify_parity(report, sharded, walk)
                       for report in reports)
        assert compared == sum(len(report.forecasts) for report in reports)
        assert compared > 0
        router.close()

    def test_cluster_snapshot_reads_like_one_service(self, bundle_dir,
                                                     walk):
        router, sharded = make_sharded(bundle_dir, workers=2)
        replay_keys(sharded, walk, KEYS[:4], ticks=40)
        snapshot = sharded.snapshot()
        assert snapshot["stream"]["workers"] == 2
        assert snapshot["stream"]["series"] == 4
        per_shard = sharded.shard_snapshots()
        assert sorted(per_shard) == [0, 1]
        assert sum(part["stream"]["ticks"] for part in per_shard.values()) \
            == snapshot["stream"]["ticks"]
        router.close()


# ----------------------------------------------------------------------
# per-shard durability + resharding
# ----------------------------------------------------------------------
def sharded_run_with_snapshots(bundle_dir, walk, snapdir, *, workers=2,
                               keys=KEYS[:4], ticks=50, every=0):
    router, sharded = make_sharded(bundle_dir, workers)
    snapshotter = ShardedSnapshotter(sharded, snapdir, every=every)
    feed(sharded, walk, keys, ticks=ticks)
    paths = snapshotter.checkpoint()
    snapshotter.close()
    return router, sharded, paths


class TestShardedDurability:
    def test_chains_are_labeled_per_shard(self, bundle_dir, walk,
                                          tmp_path):
        snapdir = str(tmp_path / "snaps")
        router, _, paths = sharded_run_with_snapshots(
            bundle_dir, walk, snapdir, workers=2)
        assert len(paths) == 2
        names = sorted(os.listdir(snapdir))
        assert any(name.startswith("snapshot-0-") for name in names)
        assert any(name.startswith("snapshot-1-") for name in names)
        assert snapshot_shards(snapdir) == [0, 1]
        assert wal_shards(snapdir) == [0, 1]
        router.close()

    def test_faithful_recovery_restores_every_shard(self, bundle_dir,
                                                    walk, tmp_path):
        snapdir = str(tmp_path / "snaps")
        router, source, _ = sharded_run_with_snapshots(
            bundle_dir, walk, snapdir, workers=2)
        fresh_router, fresh = make_sharded(bundle_dir, workers=2)
        recoverer = ShardedRecoverer()
        state = recoverer.recover(snapdir, fresh)
        assert state.stage is RecoveryStages.SUCCEEDED
        assert state.detail["resharded"] is False
        assert state.detail["source_shards"] == 2
        assert recoverer.history == [
            RecoveryStages.INACTIVE, RecoveryStages.READING,
            RecoveryStages.VERIFYING, RecoveryStages.IMPORTING,
            RecoveryStages.SUCCEEDED]
        assert_same_universe(fresh, source)
        assert merged_stream_counters(fresh) == \
            merged_stream_counters(source)
        fresh_router.close()
        router.close()

    @pytest.mark.parametrize("target_workers", [4, 3])
    def test_resharding_recovery_lands_on_the_same_bytes(
            self, bundle_dir, walk, tmp_path, target_workers):
        snapdir = str(tmp_path / "snaps")
        router, source, _ = sharded_run_with_snapshots(
            bundle_dir, walk, snapdir, workers=2)
        fresh_router, fresh = make_sharded(bundle_dir, target_workers)
        state = fresh.restore_from(snapdir)
        assert state.detail["resharded"] is True
        assert state.detail["source_shards"] == 2
        assert state.detail["target_shards"] == target_workers
        assert_same_universe(fresh, source, seq=False)
        fresh_router.close()
        router.close()

    def test_recovered_reshard_continues_bitwise_identical(
            self, bundle_dir, walk, tmp_path):
        keys = KEYS[:4]
        snapdir = str(tmp_path / "snaps")

        # Uninterrupted reference: 2 workers straight through 100 ticks.
        ref_router, reference = make_sharded(bundle_dir, workers=2)
        feed(reference, walk, keys, ticks=100)

        # Checkpoint a 2-worker run at tick 60, reshard onto 4 workers,
        # finish the remaining 40 ticks there.
        router, _, _ = sharded_run_with_snapshots(
            bundle_dir, walk, snapdir, workers=2, keys=keys, ticks=60)
        router.close()
        grown_router, grown = make_sharded(bundle_dir, workers=4)
        grown.restore_from(snapdir)
        feed(grown, walk, keys, ticks=100, first_tick=60)

        assert_same_universe(grown, reference, monitors=False, seq=False)
        grown_router.close()
        ref_router.close()

    def test_legacy_unsharded_chain_reshards_onto_a_ring(
            self, bundle_dir, walk, tmp_path):
        snapdir = str(tmp_path / "snaps")
        service, single = make_single(bundle_dir)
        snapshotter = StreamSnapshotter(single, snapdir, every=0)
        feed(single, walk, KEYS[:4], ticks=50)
        snapshotter.checkpoint()
        snapshotter.close()

        router, sharded = make_sharded(bundle_dir, workers=2)
        state = sharded.restore_from(snapdir)
        assert state.detail["resharded"] is True
        assert_same_universe(sharded, single, seq=False)
        router.close()
        service.close()

    def test_wal_replay_covers_post_checkpoint_ticks(self, bundle_dir,
                                                     walk, tmp_path):
        keys = KEYS[:4]
        snapdir = str(tmp_path / "snaps")
        router, source = make_sharded(bundle_dir, workers=2)
        snapshotter = ShardedSnapshotter(source, snapdir, every=0)
        feed(source, walk, keys, ticks=40)
        snapshotter.checkpoint()
        # WAL-only tail: ticks appended after the last checkpoint live
        # only in the per-shard logs.
        feed(source, walk, keys, ticks=48, first_tick=40)
        snapshotter.close()

        fresh_router, fresh = make_sharded(bundle_dir, workers=2)
        state = fresh.restore_from(snapdir)
        assert state.detail["replayed"] == 4 * 8
        assert_same_universe(fresh, source, monitors=False)
        fresh_router.close()
        router.close()

    def test_prune_foreign_after_shrink_enables_clean_resume(
            self, bundle_dir, walk, tmp_path):
        keys = KEYS[:6]
        snapdir = str(tmp_path / "snaps")
        router, _, _ = sharded_run_with_snapshots(
            bundle_dir, walk, snapdir, workers=4, keys=keys, ticks=40)
        router.close()

        # Shrink 4 → 2 into the same directory, then re-anchor it:
        # checkpoint the new ring first, drop the orphaned labels after.
        small_router, small = make_sharded(bundle_dir, workers=2)
        state = small.restore_from(snapdir)
        assert state.detail["resharded"] is True
        snapshotter = ShardedSnapshotter(small, snapdir, every=0)
        snapshotter.checkpoint()
        pruned = snapshotter.prune_foreign()
        snapshotter.close()
        assert pruned  # shards 2 and 3 left chains behind
        assert snapshot_shards(snapdir) == [0, 1]
        assert wal_shards(snapdir) == [0, 1]

        # The next resume is faithful — no stale-label merge.
        fresh_router, fresh = make_sharded(bundle_dir, workers=2)
        second = fresh.restore_from(snapdir)
        assert second.detail["resharded"] is False
        assert_same_universe(fresh, small)
        fresh_router.close()
        small_router.close()

    def test_one_corrupt_shard_fails_the_whole_recovery(self, bundle_dir,
                                                        walk, tmp_path):
        snapdir = str(tmp_path / "snaps")
        router, _, paths = sharded_run_with_snapshots(
            bundle_dir, walk, snapdir, workers=2)
        router.close()
        flip_digest_byte(paths[1])

        fresh_router, fresh = make_sharded(bundle_dir, workers=2)
        recoverer = ShardedRecoverer()
        state = recoverer.recover(snapdir, fresh, replay_wal=False)
        assert state.stage is RecoveryStages.FAILED
        assert state.failure_reason.startswith("shard 1:")
        assert "digest mismatch" in state.failure_reason
        assert fresh.keys() == []  # nothing imported, not even shard 0
        with pytest.raises(RecoveryError):
            fresh.restore_from(snapdir, replay_wal=False)
        fresh_router.close()

    def test_mid_import_crash_clears_every_shard(self, bundle_dir, walk,
                                                 tmp_path):
        snapdir = str(tmp_path / "snaps")
        router, _, _ = sharded_run_with_snapshots(
            bundle_dir, walk, snapdir, workers=2)
        router.close()

        fresh_router, fresh = make_sharded(bundle_dir, workers=2)
        replay_keys(fresh, walk, KEYS[4:6], ticks=10)  # live state too
        recoverer = ShardedRecoverer()
        with inject("recover.import"):
            state = recoverer.recover(snapdir, fresh)
        assert state.stage is RecoveryStages.FAILED
        assert "import failed" in state.failure_reason
        assert "state cleared" in state.failure_reason
        assert fresh.keys() == [] and fresh.seq == 0
        assert recoverer.history[-2:] == [
            RecoveryStages.IMPORTING, RecoveryStages.FAILED]
        fresh_router.close()

    def test_empty_directory_fails_in_reading(self, bundle_dir, tmp_path):
        empty = str(tmp_path / "empty")
        os.makedirs(empty)
        router, fresh = make_sharded(bundle_dir, workers=2)
        recoverer = ShardedRecoverer()
        state = recoverer.recover(empty, fresh)
        assert state.stage is RecoveryStages.FAILED
        assert "no snapshot found" in state.failure_reason
        assert RecoveryStages.VERIFYING not in recoverer.history
        router.close()
