"""Property-based invariants: ring buffers and window arithmetic.

Profiles are registered in ``conftest.py`` (``REPRO_HYPOTHESIS_PROFILE``
selects ``default``/``ci``); the whole module skips when hypothesis is
not installed.
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.data import MultivariateTimeSeries, make_forecasting_data  # noqa: E402
from repro.data.windows import WindowDataset  # noqa: E402
from repro.stream import SeriesState  # noqa: E402


@st.composite
def ring_setups(draw):
    input_len = draw(st.integers(1, 12))
    capacity = draw(st.integers(input_len, 3 * input_len))
    num_variables = draw(st.integers(1, 4))
    total = draw(st.integers(0, 3 * capacity + 5))
    seed = draw(st.integers(0, 2**31 - 1))
    rows = np.random.default_rng(seed).normal(
        2.0, 3.0, size=(total, num_variables))
    # chunk the rows into a mix of single appends and bulk extends
    chunks, start = [], 0
    while start < total:
        size = draw(st.integers(1, max(1, total - start)))
        chunks.append(rows[start: start + size])
        start += size
    return input_len, capacity, num_variables, rows, chunks


class TestSeriesStateInvariants:
    @given(ring_setups())
    def test_window_is_exact_tail_of_everything_appended(self, setup):
        input_len, capacity, num_variables, rows, chunks = setup
        state = SeriesState(input_len, num_variables, capacity=capacity)
        for chunk in chunks:
            if len(chunk) == 1:
                state.append(chunk[0])
            else:
                state.extend(chunk)
        assert state.count == len(rows)
        assert state.ready == (len(rows) >= input_len)
        if state.ready:
            np.testing.assert_array_equal(state.window(), rows[-input_len:])
            tail_len = min(len(rows), capacity)
            np.testing.assert_array_equal(state.tail(tail_len),
                                          rows[-tail_len:])

    @given(ring_setups())
    def test_running_stats_match_full_history(self, setup):
        input_len, capacity, num_variables, rows, chunks = setup
        state = SeriesState(input_len, num_variables, capacity=capacity)
        for chunk in chunks:
            state.extend(chunk)
        if len(rows):
            np.testing.assert_allclose(state.mean, rows.mean(axis=0),
                                       rtol=1e-9, atol=1e-9)
            np.testing.assert_allclose(state.std, rows.std(axis=0),
                                       rtol=1e-7, atol=1e-9)

    @given(ring_setups())
    def test_window_view_never_copies(self, setup):
        input_len, capacity, num_variables, rows, chunks = setup
        state = SeriesState(input_len, num_variables, capacity=capacity)
        for chunk in chunks:
            state.extend(chunk)
        if state.ready:
            assert np.shares_memory(state.window(), state._buffer)


class TestSeriesStateRoundTrip:
    """``export_state`` → ``from_state`` is lossless, bitwise.

    The durable snapshot layer (:mod:`repro.durable`) rides entirely on
    this round trip: any drift here would silently break the
    kill/recover replay-parity guarantee.
    """

    @given(ring_setups())
    def test_export_import_preserves_everything(self, setup):
        input_len, capacity, num_variables, rows, chunks = setup
        state = SeriesState(input_len, num_variables, capacity=capacity)
        for chunk in chunks:
            if len(chunk) == 1:
                state.append(chunk[0])
            else:
                state.extend(chunk)
        restored = SeriesState.from_state(state.export_state())
        assert restored.count == state.count
        assert restored.ready == state.ready
        assert restored.capacity == state.capacity
        # Welford accumulators restore bitwise, not just approximately
        assert restored.mean.tobytes() == state.mean.tobytes()
        assert restored.std.tobytes() == state.std.tobytes()
        assert restored._buffer.tobytes() == state._buffer.tobytes()
        if state.ready:
            assert (restored.window().tobytes()
                    == state.window().tobytes())
            tail_len = min(state.count, capacity)
            assert (restored.tail(tail_len).tobytes()
                    == state.tail(tail_len).tobytes())

    @given(ring_setups())
    def test_restored_state_evolves_identically(self, setup):
        input_len, capacity, num_variables, rows, chunks = setup
        state = SeriesState(input_len, num_variables, capacity=capacity)
        for chunk in chunks:
            state.extend(chunk)
        restored = SeriesState.from_state(state.export_state())
        # feeding both the same future is indistinguishable from never
        # having serialized at all — bitwise, append by append
        future = np.random.default_rng(1234).normal(
            2.0, 3.0, size=(input_len + 3, num_variables))
        for row in future:
            state.append(row)
            restored.append(row)
            assert restored._buffer.tobytes() == state._buffer.tobytes()
            assert restored.mean.tobytes() == state.mean.tobytes()
            assert restored.std.tobytes() == state.std.tobytes()
        assert restored.count == state.count

    @given(ring_setups())
    def test_export_is_a_snapshot_not_a_view(self, setup):
        input_len, capacity, num_variables, rows, chunks = setup
        state = SeriesState(input_len, num_variables, capacity=capacity)
        for chunk in chunks:
            state.extend(chunk)
        exported = state.export_state()
        before = exported["buffer"].copy()
        state.append(np.full(num_variables, 1e9))
        np.testing.assert_array_equal(exported["buffer"], before)


@st.composite
def window_shapes(draw):
    history = draw(st.integers(2, 32))
    horizon = draw(st.integers(1, 16))
    extra = draw(st.integers(0, 50))
    return history, horizon, history + horizon + extra


class TestWindowArithmetic:
    @given(window_shapes())
    def test_window_count(self, shape):
        history, horizon, total = shape
        dataset = WindowDataset(np.zeros((total, 2)), history, horizon)
        # definitional: one window per valid start position
        assert len(dataset) == total - history - horizon + 1
        first_history, first_future = dataset[0]
        last_history, last_future = dataset[len(dataset) - 1]
        assert first_history.shape == (history, 2)
        assert last_future.shape == (horizon, 2)
        # negative indexing agrees with the count
        np.testing.assert_array_equal(dataset[-1][0], last_history)

    @settings(max_examples=25)
    @given(window_shapes(), st.floats(0.05, 1.0))
    def test_train_fraction_counts_windows_not_rows(self, shape, fraction):
        history, horizon, _ = shape
        window = history + horizon
        # total sized so every chronological split can hold >= 1 window
        total = max(12 * window, 60)
        series = MultivariateTimeSeries(
            np.random.default_rng(0).normal(size=(total, 2)))
        data = make_forecasting_data(
            series, history_length=history, horizon=horizon,
            train_fraction=fraction)
        train_end = int(total * 0.7)
        val_end = train_end + int(total * 0.1)
        full_windows = train_end - window + 1
        assert len(data.train) == max(1, int(round(full_windows * fraction)))
        # val/test window counts follow the lookback-extended segments
        assert len(data.val) == (val_end - train_end + history) - window + 1
        assert len(data.test) == (total - val_end + history) - window + 1
