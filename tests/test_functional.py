"""Tests for loss functions and activations (repro.nn.functional)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn.functional import (
    cross_entropy,
    gelu,
    mae_loss,
    mse_loss,
    silu,
    smooth_l1_loss,
)


class TestSmoothL1:
    def test_quadratic_region(self):
        p = Tensor(np.array([0.5], np.float32), requires_grad=True)
        t = Tensor(np.array([0.0], np.float32))
        loss = smooth_l1_loss(p, t)
        np.testing.assert_allclose(loss.item(), 0.5 * 0.25, atol=1e-6)

    def test_linear_region(self):
        p = Tensor(np.array([3.0], np.float32))
        t = Tensor(np.array([0.0], np.float32))
        np.testing.assert_allclose(
            smooth_l1_loss(p, t).item(), 3.0 - 0.5, atol=1e-6)

    def test_continuous_at_boundary(self):
        t = Tensor(np.array([0.0], np.float32))
        just_below = smooth_l1_loss(Tensor(np.array([0.999], np.float32)), t)
        just_above = smooth_l1_loss(Tensor(np.array([1.001], np.float32)), t)
        assert abs(just_below.item() - just_above.item()) < 1e-2

    def test_gradient_bounded_by_one(self):
        p = Tensor(np.array([10.0, -10.0, 0.3], np.float32),
                   requires_grad=True)
        t = Tensor(np.zeros(3, np.float32))
        smooth_l1_loss(p, t).backward()
        assert np.abs(p.grad).max() <= 1.0 / 3 + 1e-6  # mean over 3 elems

    def test_accepts_numpy_target(self):
        p = Tensor(np.ones(4, np.float32), requires_grad=True)
        loss = smooth_l1_loss(p, np.zeros(4, dtype=np.float32))
        assert loss.item() > 0

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_zero_iff_equal(self, seed):
        x = np.random.default_rng(seed).normal(size=(5,)).astype(np.float32)
        loss = smooth_l1_loss(Tensor(x), Tensor(x.copy()))
        assert loss.item() == 0.0

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_below_mae_and_mse_hybrid(self, seed):
        """SmoothL1 <= MSE/2 + MAE pointwise bound (loose sanity)."""
        rng = np.random.default_rng(seed)
        p = Tensor(rng.normal(size=(6,)).astype(np.float32))
        t = Tensor(rng.normal(size=(6,)).astype(np.float32))
        sl1 = smooth_l1_loss(p, t).item()
        assert sl1 <= mse_loss(p, t).item() / 2 + mae_loss(p, t).item() + 1e-6


class TestMetricsLosses:
    def test_mse_matches_numpy(self):
        rng = np.random.default_rng(0)
        p = rng.normal(size=(4, 5)).astype(np.float32)
        t = rng.normal(size=(4, 5)).astype(np.float32)
        np.testing.assert_allclose(
            mse_loss(Tensor(p), Tensor(t)).item(),
            ((p - t) ** 2).mean(), rtol=1e-5)

    def test_mae_matches_numpy(self):
        rng = np.random.default_rng(1)
        p = rng.normal(size=(4, 5)).astype(np.float32)
        t = rng.normal(size=(4, 5)).astype(np.float32)
        np.testing.assert_allclose(
            mae_loss(Tensor(p), Tensor(t)).item(),
            np.abs(p - t).mean(), rtol=1e-5)


class TestActivations:
    def test_gelu_fixed_points(self):
        x = Tensor(np.array([0.0], np.float32))
        np.testing.assert_allclose(gelu(x).data, [0.0], atol=1e-6)
        # gelu(x) ~ x for large positive x
        big = Tensor(np.array([10.0], np.float32))
        np.testing.assert_allclose(gelu(big).data, [10.0], atol=1e-3)

    def test_gelu_monotone_on_positives(self):
        x = np.linspace(0, 3, 20, dtype=np.float32)
        y = gelu(Tensor(x)).data
        assert (np.diff(y) > 0).all()

    def test_silu_fixed_points(self):
        np.testing.assert_allclose(
            silu(Tensor(np.array([0.0], np.float32))).data, [0.0], atol=1e-7)

    def test_gelu_grad_flows(self):
        t = Tensor(np.array([0.5, -0.5], np.float32), requires_grad=True)
        gelu(t).sum().backward()
        assert t.grad is not None and np.isfinite(t.grad).all()


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[[10.0, -10.0], [-10.0, 10.0]]], np.float32))
        targets = np.array([[0, 1]])
        assert cross_entropy(logits, targets).item() < 1e-3

    def test_uniform_prediction_log_vocab(self):
        vocab = 8
        logits = Tensor(np.zeros((1, 3, vocab), np.float32))
        targets = np.zeros((1, 3), dtype=np.int64)
        np.testing.assert_allclose(
            cross_entropy(logits, targets).item(), np.log(vocab), rtol=1e-4)

    def test_padding_ignored(self):
        logits = Tensor(np.random.default_rng(0).normal(
            size=(1, 4, 5)).astype(np.float32))
        t_full = np.array([[1, 2, -1, -1]])
        t_short = np.array([[1, 2]])
        short_logits = Tensor(logits.data[:, :2])
        np.testing.assert_allclose(
            cross_entropy(logits, t_full).item(),
            cross_entropy(short_logits, t_short).item(), rtol=1e-5)

    def test_gradient_shape(self):
        logits = Tensor(np.zeros((2, 3, 7), np.float32), requires_grad=True)
        targets = np.ones((2, 3), dtype=np.int64)
        cross_entropy(logits, targets).backward()
        assert logits.grad.shape == (2, 3, 7)
