"""Shared fixtures for the test suite.

Expensive objects (pretrained backbone, prepared datasets) are session-
scoped so each test stays fast on the 1-CPU substrate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset, make_forecasting_data
from repro.llm import CalibratedLanguageModel, Vocabulary, build_backbone, pretrain_backbone


def _configure_hypothesis() -> None:
    """Register hypothesis profiles and pick one from the environment.

    ``default`` keeps local runs fast on the 1-CPU substrate; ``ci``
    buys more coverage.  Select with ``REPRO_HYPOTHESIS_PROFILE=ci``.
    Guarded so the suite still collects when hypothesis is absent
    (property tests skip themselves via ``importorskip``).
    """
    import os

    try:
        from hypothesis import HealthCheck, settings
    except ImportError:  # pragma: no cover - optional dependency
        return

    base = dict(
        # CPU available to test runs varies wildly; "too slow" data
        # generation says nothing about the code under test.
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    settings.register_profile("default", max_examples=25, **base)
    settings.register_profile("ci", max_examples=100, **base)
    settings.load_profile(
        os.environ.get("REPRO_HYPOTHESIS_PROFILE", "default"))


_configure_hypothesis()


@pytest.fixture(scope="session")
def vocab() -> Vocabulary:
    return Vocabulary()


@pytest.fixture(scope="session")
def tiny_backbone(vocab):
    """A briefly pretrained gpt2-tiny backbone shared across tests."""
    model = build_backbone("gpt2-tiny", vocab=vocab)
    pretrain_backbone(model, vocab=vocab, steps=25, batch_size=4)
    return model


@pytest.fixture(scope="session")
def tiny_clm(tiny_backbone):
    return CalibratedLanguageModel(tiny_backbone, delta=1.0)


@pytest.fixture(scope="session")
def ett_data():
    """Small ETTm1 forecasting data: history 96, horizon 24."""
    series = load_dataset("ETTm1", length=700)
    return make_forecasting_data(series, history_length=96, horizon=24)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
