"""Tests for datasets, scaling, windowing and loading (repro.data)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DataLoader,
    MultivariateTimeSeries,
    StandardScaler,
    WindowDataset,
    dataset_names,
    generate_ett,
    generate_pems,
    load_dataset,
    make_forecasting_data,
)


class TestSeries:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            MultivariateTimeSeries(np.zeros(5))

    def test_default_columns(self):
        s = MultivariateTimeSeries(np.zeros((4, 3)))
        assert s.columns == ["var0", "var1", "var2"]

    def test_column_count_mismatch(self):
        with pytest.raises(ValueError):
            MultivariateTimeSeries(np.zeros((4, 3)), columns=["a"])

    def test_slice_and_head_fraction(self):
        s = MultivariateTimeSeries(np.arange(20.0).reshape(10, 2))
        assert s.slice(2, 5).length == 3
        assert s.head_fraction(0.5).length == 5
        with pytest.raises(ValueError):
            s.head_fraction(0.0)

    def test_non_finite_warns_by_default(self):
        values = np.zeros((4, 2))
        values[1, 0] = np.nan
        values[2, 1] = np.inf
        with pytest.warns(UserWarning, match="2 non-finite"):
            MultivariateTimeSeries(values, name="bad")

    def test_non_finite_strict_raises(self):
        values = np.zeros((4, 2))
        values[0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            MultivariateTimeSeries(values, validate_finite="strict")

    def test_non_finite_ignore_and_mode_propagates_to_slice(self):
        values = np.zeros((6, 2))
        values[3, 1] = np.nan
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            s = MultivariateTimeSeries(values, validate_finite="ignore")
            s.slice(0, 4)  # mode carried over: still silent

    def test_finite_values_never_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            MultivariateTimeSeries(np.zeros((4, 2)))

    def test_unknown_validate_mode_rejected(self):
        with pytest.raises(ValueError, match="validate_finite"):
            MultivariateTimeSeries(np.zeros((4, 2)), validate_finite="nope")


class TestGenerators:
    def test_registry_shapes(self):
        expected = {"ETTm1": 7, "ETTm2": 7, "ETTh1": 7, "ETTh2": 7,
                    "Weather": 21, "Exchange": 8, "PEMS04": 32, "PEMS08": 24}
        for name in dataset_names():
            s = load_dataset(name, length=300)
            assert s.num_variables == expected[name], name
            assert s.length == 300

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    def test_deterministic_by_seed(self):
        a = load_dataset("ETTm1", length=200)
        b = load_dataset("ETTm1", length=200)
        np.testing.assert_allclose(a.values, b.values)

    def test_seed_offset_changes_data(self):
        a = load_dataset("ETTm1", length=200)
        b = load_dataset("ETTm1", length=200, seed_offset=5)
        assert np.abs(a.values - b.values).max() > 1e-6

    def test_ett_columns_and_periodicity(self):
        s = generate_ett(length=960, frequency_minutes=15, seed=3)
        assert s.columns[-1] == "OT"
        hufl = s.values[:, 0]
        steps_per_day = 96
        # autocorrelation at one day lag should be clearly positive
        a = hufl[:-steps_per_day] - hufl[:-steps_per_day].mean()
        b = hufl[steps_per_day:] - hufl[steps_per_day:].mean()
        corr = (a * b).mean() / (a.std() * b.std())
        assert corr > 0.3

    def test_ett_oil_couples_to_loads(self):
        s = generate_ett(length=800, seed=1)
        loads = s.values[:, :6].mean(axis=1)
        oil = s.values[:, 6]
        a = loads - loads.mean()
        b = oil - oil.mean()
        corr = abs((a * b).mean() / (a.std() * b.std()))
        assert corr > 0.2

    def test_pems_nonnegative_flows_mostly(self):
        s = generate_pems(length=400, num_sensors=8, seed=4)
        assert (s.values > -0.5).mean() > 0.99

    def test_pems_neighbors_correlate(self):
        s = generate_pems(length=600, num_sensors=12, seed=5)
        flows = s.values - s.values.mean(axis=0)
        corr = (flows.T @ flows) / len(flows)
        std = np.sqrt(np.diag(corr))
        corr = corr / np.outer(std, std)
        off_diag = corr[~np.eye(12, dtype=bool)]
        assert off_diag.mean() > 0.1  # shared daily demand + diffusion


class TestScaler:
    def test_fit_transform_standardizes(self):
        rng = np.random.default_rng(0)
        x = rng.normal(3.0, 2.0, size=(500, 4))
        z = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(z.mean(axis=0), np.zeros(4), atol=1e-9)
        np.testing.assert_allclose(z.std(axis=0), np.ones(4), atol=1e-9)

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((3, 2)))

    def test_constant_column_guard(self):
        x = np.ones((10, 2))
        z = StandardScaler().fit_transform(x)
        assert np.isfinite(z).all()

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_inverse_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(50, 3)) * rng.uniform(0.5, 4.0)
        scaler = StandardScaler().fit(x)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(x)), x, atol=1e-9)


class TestWindows:
    def test_window_contents(self):
        values = np.arange(40.0).reshape(20, 2)
        ds = WindowDataset(values, history_length=5, horizon=3)
        history, future = ds[0]
        np.testing.assert_allclose(history, values[:5])
        np.testing.assert_allclose(future, values[5:8])

    def test_length_formula(self):
        ds = WindowDataset(np.zeros((20, 1)), 5, 3)
        assert len(ds) == 20 - 5 - 3 + 1

    def test_negative_index_and_bounds(self):
        ds = WindowDataset(np.zeros((12, 1)), 4, 2)
        ds[-1]
        with pytest.raises(IndexError):
            ds[len(ds)]

    def test_too_short_series_raises(self):
        with pytest.raises(ValueError):
            WindowDataset(np.zeros((5, 1)), 4, 4)

    def test_no_future_leakage_property(self):
        """History window always strictly precedes its future window."""
        values = np.arange(30.0).reshape(30, 1)
        ds = WindowDataset(values, 6, 4)
        for i in range(len(ds)):
            history, future = ds[i]
            assert history[-1, 0] < future[0, 0]

    def test_splits_are_chronological(self):
        series = load_dataset("ETTm1", length=500)
        data = make_forecasting_data(series, history_length=48, horizon=12)
        # first test window history may extend into val, but no further back
        assert len(data.train) > 0 and len(data.val) > 0 and len(data.test) > 0

    def test_scaler_fit_on_train_only(self):
        series = load_dataset("ETTm1", length=600)
        data = make_forecasting_data(series, history_length=48, horizon=12)
        train_end = int(600 * 0.7)
        expected_mean = series.values[:train_end].mean(axis=0)
        np.testing.assert_allclose(data.scaler.mean, expected_mean)

    def test_train_fraction_reduces_windows(self):
        series = load_dataset("ETTm1", length=900)
        full = make_forecasting_data(series, 96, 24)
        tiny = make_forecasting_data(series, 96, 24, train_fraction=0.2)
        assert len(tiny.train) < len(full.train)
        assert len(tiny.test) == len(full.test)

    def test_train_fraction_is_linear_in_windows(self):
        # The fraction applies to *windows*, not raw rows: for a short
        # series the H+M overhead must not skew the kept fraction
        # (paper Table V / Figure 7 few-shot fractions).
        series = load_dataset("ETTm1", length=700)
        full = make_forecasting_data(series, 96, 24)
        for fraction in (0.05, 0.1, 0.2, 0.5, 0.75):
            part = make_forecasting_data(series, 96, 24,
                                         train_fraction=fraction)
            expected = max(1, round(len(full.train) * fraction))
            assert len(part.train) == expected, (
                f"fraction {fraction}: {len(part.train)} windows, "
                f"expected {expected} of {len(full.train)}")

    def test_train_fraction_keeps_earliest_windows(self):
        series = load_dataset("ETTm1", length=900)
        full = make_forecasting_data(series, 96, 24)
        part = make_forecasting_data(series, 96, 24, train_fraction=0.3)
        history_full, future_full = full.train[0]
        history_part, future_part = part.train[0]
        np.testing.assert_array_equal(history_part, history_full)
        np.testing.assert_array_equal(future_part, future_full)

    def test_bad_splits_raise(self):
        series = load_dataset("ETTm1", length=400)
        with pytest.raises(ValueError):
            make_forecasting_data(series, 48, 12, splits=(0.5, 0.2, 0.2))


class TestLoader:
    def test_batches_cover_dataset(self):
        ds = WindowDataset(np.zeros((40, 2)), 6, 2)
        loader = DataLoader(ds, batch_size=8)
        seen = sum(h.shape[0] for h, _ in loader)
        assert seen == len(ds)

    def test_max_batches_caps(self):
        ds = WindowDataset(np.zeros((60, 2)), 6, 2)
        loader = DataLoader(ds, batch_size=4, max_batches=3)
        assert len(list(loader)) == 3
        assert len(loader) == 3

    def test_shuffle_is_seeded(self):
        ds = WindowDataset(np.arange(60.0).reshape(30, 2), 4, 2)
        a = [h.copy() for h, _ in DataLoader(ds, 4, shuffle=True, seed=1)]
        b = [h.copy() for h, _ in DataLoader(ds, 4, shuffle=True, seed=1)]
        for x, y in zip(a, b):
            np.testing.assert_allclose(x, y)
